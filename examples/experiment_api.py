#!/usr/bin/env python
"""The experiment API: registries and composable, serializable specs.

This example shows the registry-driven surface added in ``repro.api``:

1. every registered mechanism — PrivShape, the trie baseline, PatternLDP,
   PEM, and the PID ablation — runs through the *same* evaluation pipeline;
2. an ``ExperimentSpec`` round-trips through JSON, so an experiment can be
   stored, shipped, and replayed identically;
3. ``oracle="auto"`` picks the minimum-variance frequency oracle for a
   domain size analytically (the Theorem-4 trade-off);
4. registering a custom mechanism makes it reachable from the pipelines and
   the CLI without touching either.

Run with:  python examples/experiment_api.py
"""

from __future__ import annotations

from repro import (
    ExperimentSpec,
    PrivacySpec,
    available_mechanisms,
    oracle_variances,
    register_mechanism,
    run_clustering_task,
    select_frequency_oracle,
    symbols_like,
)
from repro.api import KIND_EXTRACTION, PEMExtractor


def main() -> None:
    dataset = symbols_like(n_instances=1500, rng=3)
    print(f"dataset: {len(dataset)} users, {dataset.n_classes} classes")

    # ----------------------------------------------- one pipeline, N mechanisms
    print(f"\nregistered mechanisms: {', '.join(available_mechanisms())}")
    for mechanism in ("privshape", "baseline", "pem", "patternldp", "pid"):
        result = run_clustering_task(
            dataset, mechanism=mechanism, epsilon=4.0, evaluation_size=200, rng=0
        )
        print(f"  {mechanism:<11} ARI = {result.ari:+.3f}")

    # --------------------------------------------------- spec JSON round-trip
    spec = ExperimentSpec(mechanism="privshape", privacy=PrivacySpec(epsilon=4.0))
    document = spec.to_json()
    replayed = ExperimentSpec.from_json(document)
    assert replayed == spec
    first = run_clustering_task(dataset, spec, evaluation_size=200, rng=1)
    second = run_clustering_task(dataset, replayed, evaluation_size=200, rng=1)
    assert first.shapes == second.shapes
    print(f"\nspec round-trips through JSON ({len(document)} bytes) "
          "and replays identically ✔")

    # ------------------------------------------------- analytic oracle choice
    print("\noracle='auto' picks the min-variance frequency oracle (ε = 1):")
    for domain_size in (4, 12, 64, 512):
        chosen = select_frequency_oracle(1.0, domain_size)
        variances = oracle_variances(1.0, domain_size, n=1000)
        pretty = ", ".join(f"{k}={v:,.0f}" for k, v in variances.items())
        print(f"  d = {domain_size:>4}: {chosen:<4} ({pretty})")

    # ------------------------------------------------------ custom mechanism
    @register_mechanism("pem-wide", KIND_EXTRACTION,
                        "PEM extending two symbols per round")
    def build_wide_pem(spec: ExperimentSpec):
        wide = ExperimentSpec.from_dict(
            {**spec.to_dict(), "options": {"symbols_per_round": 2}}
        )
        return PEMExtractor.from_spec(wide)

    result = run_clustering_task(
        dataset, mechanism="pem-wide", epsilon=4.0, evaluation_size=200, rng=2
    )
    print(f"\ncustom registered mechanism 'pem-wide': ARI = {result.ari:+.3f}")

    # --------------------------------------------- unified execution artifact
    # Every task result converts to the structured RunResult artifact, and
    # spec.run() is the one-liner execution path (see
    # examples/unified_execution.py for the full backend tour).
    artifact = result.to_run_result(seed=2)
    replayed_artifact = type(artifact).from_json(artifact.to_json())
    assert replayed_artifact.metrics["ari"] == artifact.metrics["ari"]
    print(f"RunResult artifact round-trips through JSON "
          f"({len(artifact.to_json())} bytes) ✔")


if __name__ == "__main__":
    main()
