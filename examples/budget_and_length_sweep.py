#!/usr/bin/env python
"""Sweep the privacy budget and the series length (the paper's Figs. 9, 11, 16).

Two questions a deployer asks before adopting PrivShape:

* "How small can ε be before utility collapses?"  — the budget sweep;
* "Does it still work when my users record much longer series?"  — the
  length sweep on the Trigonometric Wave dataset, where the essential shape
  stays the same while the raw series grows from 200 to 1000 points.

Run with:  python examples/budget_and_length_sweep.py [n_users]
"""

from __future__ import annotations

import sys

from repro import trace_like, trigonometric_waves
from repro.core.pipeline import run_classification_task


def budget_sweep(n_users: int) -> None:
    dataset = trace_like(n_instances=n_users, rng=17)
    print("privacy-budget sweep (classification accuracy on Trace-like data)")
    print(f"{'epsilon':>8} {'privshape':>10} {'patternldp':>11}")
    for epsilon in (0.5, 1.0, 2.0, 4.0, 8.0):
        privshape = run_classification_task(
            dataset, mechanism="privshape", epsilon=epsilon,
            alphabet_size=4, segment_length=10, evaluation_size=400, rng=1,
        )
        patternldp = run_classification_task(
            dataset, mechanism="patternldp", epsilon=epsilon,
            alphabet_size=4, segment_length=10, evaluation_size=300,
            patternldp_train_size=600, forest_size=10, rng=1,
        )
        print(f"{epsilon:>8.1f} {privshape.accuracy:>10.3f} {patternldp.accuracy:>11.3f}")
    print()


def length_sweep(n_users: int) -> None:
    print("series-length sweep (sine vs cosine classification, epsilon = 4)")
    print(f"{'length':>8} {'privshape':>10}")
    for length in (200, 400, 600, 800, 1000):
        dataset = trigonometric_waves(n_instances=n_users, length=length, rng=19)
        result = run_classification_task(
            dataset, mechanism="privshape", epsilon=4.0,
            alphabet_size=4, segment_length=10, evaluation_size=400, rng=2,
        )
        print(f"{length:>8d} {result.accuracy:>10.3f}")
    print(
        "\nCompressive SAX collapses repeated symbols, so the compressed shape —"
        "\nand therefore PrivShape's utility — barely changes with the raw length."
    )


def main(n_users: int = 8000) -> None:
    budget_sweep(n_users)
    length_sweep(n_users)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
