#!/usr/bin/env python
"""Quickstart: extract the top-k frequent shapes of a user population under LDP.

This walks through the full PrivShape pipeline on a small synthetic gesture
dataset:

1. every user's raw time series is compressed with Compressive SAX;
2. the PrivShape mechanism extracts the top-k frequent shapes under a single
   user-level privacy budget ε;
3. the extracted shapes are compared with the (non-private) ground truth.

Run with:  python examples/quickstart.py [epsilon]
"""

from __future__ import annotations

import sys
from collections import Counter

from repro import (
    CollectionSpec,
    CompressiveSAX,
    ExperimentSpec,
    PrivacySpec,
    PrivShape,
    SAXSpec,
    symbols_like,
)
from repro.sax.reconstruction import symbols_to_values


def main(epsilon: float = 4.0) -> None:
    # ------------------------------------------------------------------ data
    # 6,000 users, each holding one hand-motion-style time series from one of
    # six gesture classes (a stand-in for the UCR Symbols dataset).
    dataset = symbols_like(n_instances=6000, rng=7)
    print(f"dataset: {len(dataset)} users, {dataset.n_classes} gesture classes")

    # -------------------------------------------------------- transformation
    # Compressive SAX (t=6 symbols, w=25 points per segment) turns each long
    # series into a short symbolic "essential shape" such as 'abcdef'.
    transformer = CompressiveSAX(alphabet_size=6, segment_length=25)
    sequences = transformer.transform_dataset(dataset.series)
    true_counts = Counter("".join(s) for s in sequences)
    print("\nmost frequent true shapes (never revealed to the server):")
    for shape, count in true_counts.most_common(6):
        print(f"  {shape:<12} {count} users")

    # ------------------------------------------------------------ extraction
    # One composable spec describes the whole run; the same JSON-serializable
    # object drives the offline mechanisms, the pipelines, the CLI, and the
    # federated collection service.
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=epsilon),      # user-level privacy budget
        sax=SAXSpec(alphabet_size=6, segment_length=25),
        collection=CollectionSpec(
            top_k=6,              # number of shapes to extract
            metric="dtw",         # distance used in the private selection
            length_high=15,       # clip range for frequent-length estimation
        ),
    )
    mechanism = PrivShape(spec)
    result = mechanism.extract(sequences, rng=0)

    print(f"\nPrivShape output (epsilon = {epsilon}):")
    print(f"  estimated frequent length: {result.estimated_length}")
    for shape, frequency in zip(result.as_strings(), result.frequencies):
        values = symbols_to_values(tuple(shape), alphabet_size=6)
        sketch = " ".join(f"{v:+.1f}" for v in values)
        print(f"  shape {shape:<12} estimated count {frequency:8.1f}   values: {sketch}")

    # --------------------------------------------------------- privacy audit
    print("\nprivacy accounting:")
    print(result.accountant.summary())


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 4.0)
