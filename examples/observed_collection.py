#!/usr/bin/env python
"""A fully observed collection run: spans, phase profile, and a live scrape.

The telemetry layer (:mod:`repro.obs`) answers three operational questions
without perturbing a single RNG draw:

* "Where does the wall time go?"  — opt-in phase/kernel profiling attributes
  each round to encode / transport / aggregate / estimate;
* "What happened, when?"  — structured spans export as Chrome-trace JSON you
  can open in Perfetto (https://ui.perfetto.dev) or chrome://tracing;
* "Is the server healthy?"  — every gateway/worker port serves Prometheus
  text on ``GET /metrics``, validated here with the in-tree parser.

Run with:  python examples/observed_collection.py [n_users]
"""

from __future__ import annotations

import sys
import urllib.request

from repro.api import DataSpec, ExperimentSpec, PrivacySpec, SAXSpec
from repro.obs.promtext import parse_prometheus_text


def profiled_run(n_users: int) -> None:
    """One inline run with telemetry on: phase table + Perfetto trace."""
    spec = ExperimentSpec(
        privacy=PrivacySpec(epsilon=4.0), sax=SAXSpec(alphabet_size=4)
    )
    data = DataSpec(source="synthetic", n_users=n_users, seed=11)

    plain = spec.run(data, seed=7)
    observed = spec.run(data, seed=7, telemetry=True, trace="observed_run.json")
    # The safety contract: telemetry never moves an RNG draw.
    assert observed.fingerprint() == plain.fingerprint()

    telemetry = observed.telemetry
    print("per-phase wall time over the whole run:")
    for phase, seconds in sorted(telemetry["phases"].items()):
        print(f"  {phase:<10} {seconds:8.4f}s")
    print("hot kernels:")
    for name, stats in sorted(telemetry["kernels"].items()):
        print(f"  {name:<22} {stats['calls']:>4} calls  {stats['seconds']:8.4f}s")
    print(f"spans recorded: {telemetry['spans']['total']} "
          f"({', '.join(sorted(telemetry['spans']['by_name']))})")
    print("trace written to observed_run.json — open it in ui.perfetto.dev\n")


def scraped_gateway(n_users: int) -> None:
    """Boot a gateway, drive a run, and scrape GET /metrics like Prometheus."""
    from repro.server import CollectionGateway, run_loadgen, serve_in_thread
    from repro.service import SyntheticShapeStream, default_templates

    spec = ExperimentSpec(
        privacy=PrivacySpec(epsilon=4.0), sax=SAXSpec(alphabet_size=4)
    )
    resolved = spec.resolve(top_k=3, length_high=5)
    alphabet = tuple(resolved.sax.alphabet)
    population = SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(default_templates(alphabet, n_templates=4, length=5, rng=3)),
        seed=3,
    )
    gateway = CollectionGateway(resolved.to_privshape_config(), rng=7)
    with serve_in_thread(gateway) as handle:
        run_loadgen(handle.host, handle.port, population, batch_size=4096)
        url = f"http://{handle.host}:{handle.port}/metrics"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            families = parse_prometheus_text(response.read().decode())

    print(f"scraped {url}: {len(families)} metric families")
    reports = families["privshape_reports_total"].sample_values()[0]
    closed = sum(s.value for s in families["privshape_rounds_closed_total"].samples)
    stage = next(
        s.labels["stage"]
        for s in families["privshape_stage"].samples
        if s.value == 1
    )
    print(f"  privshape_reports_total        {reports:.0f}")
    print(f"  privshape_rounds_closed_total  {closed:.0f} (all kinds)")
    print(f"  privshape_stage                {stage}")


def main() -> None:
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    profiled_run(n_users)
    scraped_gateway(n_users)


if __name__ == "__main__":
    main()
