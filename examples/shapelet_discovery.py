#!/usr/bin/env python
"""The registered shapelet workload: ``spec.run(data, task="shapelet")``.

Where ``examples/private_shapelet_discovery.py`` assembles the pipeline by
hand from the extension classes, this walkthrough drives the same
extract → discover → transform → classify sequence through the unified
execution API: one spec, one ``RunResult`` artifact, any backend.

Run with:  python examples/shapelet_discovery.py [n_private_users]
"""

from __future__ import annotations

import sys

from repro import DataSpec, ExperimentSpec, PrivacySpec, SAXSpec, SweepSpec

SEED = 7


def main(n_private_users: int = 20000) -> None:
    # The sensitive population is described, not loaded — the executor
    # realizes it and only ever touches it through the LDP mechanism.
    data = DataSpec(source="trace", n_users=n_private_users, seed=41)
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=6.0),
        sax=SAXSpec(alphabet_size=4),
        # Discovery knobs travel inside the spec, so they serialize with it
        # and survive the subprocess/cluster hop.
        options={"n_shapelets": 5},
    )

    # ------------------------------------------------------------------
    # 1. One call runs the whole workload: private extraction, candidate
    #    enumeration from the reconstructed shapes, information-gain
    #    ranking, the vectorized shapelet transform, and a random-forest
    #    evaluation on a held-out split of the labelled reference set.
    # ------------------------------------------------------------------
    result = spec.run(data, task="shapelet", seed=SEED, evaluation_size=200)
    print(f"extracted {len(result.estimates)} shapes from "
          f"{n_private_users} private users (eps=6)")
    print("shapelets (information gain / split threshold):")
    for rank, shapelet in enumerate(result.details["shapelets"], start=1):
        print(f"  #{rank}: '{shapelet['symbols']}' from shape "
              f"'{shapelet['source_shape']}', gain {shapelet['gain']:.3f}, "
              f"threshold {shapelet['threshold']:.3f}")
    print(f"held-out accuracy: {result.metrics['accuracy']:.3f} "
          f"({result.details['n_train']} train / "
          f"{result.details['n_test']} test)\n")

    # ------------------------------------------------------------------
    # 2. The private phase runs on any backend; the deterministic stage
    #    seeds from the extraction, so fingerprints agree byte for byte.
    # ------------------------------------------------------------------
    sharded = spec.run(data, task="shapelet", seed=SEED,
                       evaluation_size=200, backend="sharded", shards=2)
    assert sharded.fingerprint() == result.fingerprint()
    print(f"sharded backend fingerprint matches inline "
          f"(accuracy {sharded.metrics['accuracy']:.3f})\n")

    # ------------------------------------------------------------------
    # 3. Sweeps expand shapelet axes like any other grid dimension.
    # ------------------------------------------------------------------
    sweep = SweepSpec(base=spec, task="shapelet",
                      epsilons=(1.0, 6.0), shapelet_counts=(3, 5))
    grid = sweep.run(data, seed=SEED, evaluation_size=120)
    print("accuracy grid (epsilon x shapelet count):")
    for point, run in zip(grid.points, grid.runs):
        print(f"  eps={point['epsilon']:<4g} k={point['shapelet_count']}: "
              f"accuracy {run.metrics['accuracy']:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20000)
