#!/usr/bin/env python
"""Continual collection: sliding windows, drift, and a mid-window crash.

A deployment rarely collects once.  This example runs the continual
subsystem end to end on a scripted-drift population:

1. a :class:`~repro.service.DriftingShapeStream` whose template mixture
   flips at a scripted breakpoint (user ids play the role of arrival time);
2. a windowed :class:`~repro.server.CollectionGateway` that renews the
   privacy budget every window, carries the trie survivors forward, probes
   later windows with cheap refine-only *refresh* rounds, and re-extracts in
   full only when the drift detector fires — which it does exactly at the
   window crossing the breakpoint;
3. a kill: mid-way through window 1 the gateway checkpoints and dies.  A
   fresh process restores it with ``CollectionGateway.from_checkpoint``, the
   interrupted round is replayed (checkpointed batches deduplicate), and the
   run finishes — byte-identical, window for window, to an uninterrupted
   inline :class:`~repro.continual.ContinualEngine` run on the same seed.

Run with:  python examples/continual_collection.py [n_users]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    ContinualEngine,
    DriftingShapeStream,
    WindowSpec,
)
from repro.continual.windows import WindowView
from repro.core.config import PrivShapeConfig
from repro.server import (
    CollectionGateway,
    GatewayClient,
    batch_id_for,
    run_window_loadgen,
    serve_in_thread,
)
from repro.service import default_templates
from repro.service.client import ClientReporter
from repro.service.plan import CollectionPlan, RoundSpec

SEED = 11


def build_population(n_users: int) -> DriftingShapeStream:
    """Three tumbling windows' worth of users; the mixture flips in the last."""
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=5, length=5, rng=0)
    base = tuple(1.0 / (rank + 1) for rank in range(len(templates)))
    return DriftingShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=base,
        seed=0,
        breakpoints=(2 * n_users // 3,),
        mixtures=(base, tuple(reversed(base))),
    )


def round_batches(reporter, population, current, batch_size=512):
    """The (batch, batch_id) pairs one round needs, over the window's view."""
    ticket = current["window"]
    view = WindowView(population, ticket["start"], ticket["stop"])
    plan = CollectionPlan.from_dict(current["plan"])
    spec = RoundSpec.from_dict(current["round"])
    batches = []
    for user_ids, batch_population in view.iter_range(0, view.n_users, batch_size):
        mask = plan.participant_mask(spec, user_ids)
        if not mask.any():
            continue
        participants = np.flatnonzero(mask)
        batches.append(
            (
                reporter.make_reports(
                    spec, batch_population.take(participants), user_ids[participants]
                ),
                batch_id_for(spec.index, user_ids[0], user_ids[-1] + 1),
            )
        )
    return batches


def main(n_users: int = 9_000) -> None:
    config = PrivShapeConfig(
        epsilon=6.0, top_k=3, alphabet_size=4, metric="sed",
        length_low=1, length_high=5,
    )
    windows = WindowSpec(
        length=n_users // 3,  # three tumbling windows
        refresh=True,  # cheap refine-only probes while the mixture holds
        drift_threshold=0.3,  # full re-extraction when L1 drift exceeds this
    )
    population = build_population(n_users)

    # ---- reference: the uninterrupted inline run --------------------------
    inline = ContinualEngine(
        config, windows, population, batch_size=2048, seed=SEED
    ).run()

    # ---- the same run on a gateway, with a crash inside window 1 ----------
    checkpoint_dir = "/tmp/privshape-continual-ckpt"
    gateway = CollectionGateway(
        config, rng=SEED, checkpoint_dir=checkpoint_dir,
        windows=windows, n_users=n_users,
    )
    handle = serve_in_thread(gateway)
    print(f"windowed gateway on {handle.host}:{handle.port}")

    reporter = ClientReporter()
    client = GatewayClient(handle.host, handle.port)
    while True:  # drive window 0, then stop partway through window 1
        current = client.round()
        if current["window"]["index"] == 1:
            break
        if current.get("window_done"):
            closed = client.request({"op": "window"})["closed"]
            print(f"  window 0 closed: {closed['shapes']}")
            continue
        for batch, batch_id in round_batches(reporter, population, current):
            client.report(batch, batch_id)
        client.close_round(current["round"]["index"])

    batches = round_batches(reporter, population, current)
    for batch, batch_id in batches[: len(batches) // 2]:
        client.report(batch, batch_id)
    client.checkpoint()
    client.close()
    handle.stop()
    print("  gateway killed mid-window-1 (half a round in flight)")

    # A fresh process restores the exact window schedule, ledger, and the
    # interrupted round's accepted batches from the checkpoint.
    recovered = CollectionGateway.from_checkpoint(checkpoint_dir)
    with serve_in_thread(recovered) as handle:
        print(f"  recovered gateway on {handle.host}:{handle.port}")
        with handle.client() as client:
            current = client.round()
            replayed = sum(
                not client.report(batch, batch_id)["accepted"]
                for batch, batch_id in batches  # same batch ids: exact dedup
            )
            print(f"  replayed window 1's round; {replayed} duplicates dropped")
            client.close_round(current["round"]["index"])
        stats = run_window_loadgen(handle.host, handle.port, population)

    served = stats.result
    for payload in served["windows"]:
        drift = payload["drift"] or {}
        print(
            f"  window {payload['window']} attempt {payload['attempt']} "
            f"({payload['mode']}, final={payload['final']}): "
            f"{payload['shapes']}"
            + (f"  drift l1={drift['l1']:.3f} fired={drift['fired']}" if drift else "")
        )
    accounting = served["accounting"]
    print(
        f"per-window budget renewal: {accounting['window_epsilons']} "
        f"(user horizon {accounting['user_horizon']}, user-level epsilon "
        f"{accounting['user_level_epsilon_horizon']:.1f})"
    )

    # ---- the defining guarantee ------------------------------------------
    assert served["windows"] == inline.windows
    assert served["accounting"] == inline.accounting
    fired = [p["window"] for p in served["windows"] if (p["drift"] or {}).get("fired")]
    assert fired == [2], "drift should fire exactly at the breakpoint window"
    print("crash-recovered gateway run is byte-identical to the inline run ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 9_000)
