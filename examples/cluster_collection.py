#!/usr/bin/env python
"""Cluster collection: a supervised coordinator/worker run with a live crash.

This example boots the whole multi-process collection cluster and then makes
its life difficult:

1. a :class:`~repro.cluster.Coordinator` (protocol engine, round control,
   exact merge) serves on an ephemeral TCP port, with two crash-supervised
   :class:`~repro.cluster.ShardWorker` OS processes each aggregating one
   contiguous user-id slice and checkpointing as they go;
2. the cluster load generator streams a synthetic population straight to the
   workers, round by round, with deterministic idempotent batch ids — and a
   :class:`~repro.cluster.ChaosKill` that fires one ``SIGKILL`` at worker 0
   in the middle of round 1;
3. the :class:`~repro.cluster.Supervisor` respawns the dead worker from its
   last checkpoint, the load generator replays the lost slice (checkpointed
   batches deduplicate, lost ones re-accumulate), the round closes — and the
   final result is byte-identical to the offline ``PrivShape.extract()`` on
   the same users, with every user counted exactly once.

Run with:  python examples/cluster_collection.py [n_users]
"""

from __future__ import annotations

import sys

from repro import (
    CollectionSpec,
    ExperimentSpec,
    PrivacySpec,
    PrivShape,
    SAXSpec,
    launch_cluster,
    run_cluster_loadgen,
)
from repro.cluster import ChaosKill
from repro.service import SyntheticShapeStream, default_templates


def main(n_users: int = 50_000) -> None:
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    population = SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=0,
        length_jitter=0.2,
    )
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=4.0),
        sax=SAXSpec(alphabet_size=4),
        collection=CollectionSpec(top_k=3, metric="sed", length_low=1, length_high=5),
    )

    # One SIGKILL at shard worker 0, after its first accepted batch of round 1.
    chaos = ChaosKill(round_index=1, worker_index=0, after_batches=1)

    with launch_cluster(
        spec, n_users=n_users, n_workers=2, rng=0, checkpoint_every=8
    ) as cluster:
        print(f"coordinator listening on {cluster.host}:{cluster.port}")
        for worker in cluster.supervisor.cluster_spec():
            print(f"  shard worker {worker.index}: port {worker.port}, pid {worker.pid}")

        stats = run_cluster_loadgen(
            cluster.host, cluster.port, population, batch_size=4096, chaos=chaos
        )
        restarts = list(cluster.supervisor.restarts)

    assert chaos.fired, "the chaos kill never fired (population too small?)"
    print(
        f"worker 0 was SIGKILLed mid-round-1; supervisor restarts per worker: "
        f"{restarts}; loadgen slice replays: {stats.retries}"
    )

    result = stats.result
    assert result is not None
    print(
        f"collected {stats.total_reports} reports in {stats.total_seconds:.2f}s "
        f"({stats.reports_per_second:,.0f} reports/sec across the cluster)"
    )
    for shape, frequency in zip(result["shapes"], result["frequencies"]):
        print(f"  {shape:<12} estimated count {frequency:12.1f}")

    # ---- the defining guarantee: clustered == offline, kill included ----
    sequences = []
    for _, batch in population.iter_batches(16384):
        sequences.extend(batch.decode_row(row) for row in batch.codes)
    offline = PrivShape(spec).extract(sequences, rng=0)
    assert [tuple(s) for s in result["shape_tuples"]] == offline.shapes
    assert result["frequencies"] == offline.frequencies
    assert stats.total_reports == n_users, "a user was lost or double counted"
    print("cluster result is byte-identical to the offline extraction ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50_000)
