#!/usr/bin/env python
"""Streaming collection: run PrivShape as a round-based client/server protocol.

This example shows the collection-service view of PrivShape, the way a real
deployment would run it:

1. the server publishes one round at a time (a ``RoundSpec``: the round kind,
   its PRF key, and the perturbation domain);
2. stateless clients encode compact LDP reports for the rounds they belong
   to — here simulated batch by batch from a constant-memory population
   stream, pushed through the serialized wire format;
3. a sharded aggregator folds the reports into integer counts, and the
   server closes the round and moves on.

It then runs the *offline* ``PrivShape.extract()`` on the same users with the
same seed and verifies the two paths agree bit for bit — the service's
defining equivalence property.

Run with:  python examples/streaming_collection.py [n_users]
"""

from __future__ import annotations

import sys

from repro import CollectionSpec, ExperimentSpec, PrivacySpec, PrivShape, ProtocolDriver, SAXSpec
from repro.service import SyntheticShapeStream, default_templates


def main(n_users: int = 200_000) -> None:
    # ------------------------------------------------------------ population
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=5, length=5, rng=1)
    population = SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=(8.0, 4.0, 2.0, 1.0, 1.0),
        seed=1,
        length_jitter=0.15,
    )
    print(f"population: {n_users} streamed users")
    print(f"template shapes: {', '.join(''.join(t) for t in templates)}")

    # -------------------------------------------------------------- protocol
    # The driver consumes the same composable ExperimentSpec as the offline
    # pipelines and the CLI — one description of the run, three consumers.
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=4.0),
        sax=SAXSpec(alphabet_size=4),
        collection=CollectionSpec(top_k=3, metric="sed", length_low=1, length_high=5),
    )
    driver = ProtocolDriver(
        spec,
        population,
        batch_size=32_768,
        n_shards=4,
        serialize=True,  # every batch crosses the wire format
        rng=2024,
    )
    result = driver.run()

    print("\nrounds:")
    for stats in driver.stats.rounds:
        level = f" level {stats.level}" if stats.kind == "expand" else ""
        print(
            f"  {stats.kind}{level}: {stats.participants} reports, "
            f"{stats.reports_per_second:,.0f} reports/sec"
        )
    print(
        f"total: {driver.stats.total_reports} reports at "
        f"{driver.stats.reports_per_second:,.0f} reports/sec"
    )
    print(f"extracted shapes: {', '.join(result.as_strings())}")

    # ----------------------------------------------------------- equivalence
    # Materialize the same users in memory and run the offline path with the
    # same seed; PRF-keyed client randomness makes the results identical.
    sequences = []
    for _, batch in population.iter_batches(32_768):
        sequences.extend(
            batch.decode_row(batch.codes[i]) for i in range(len(batch))
        )
    offline = PrivShape(spec).extract(sequences, rng=2024)
    assert offline.shapes == result.shapes
    assert offline.frequencies == result.frequencies
    print("offline PrivShape.extract() agrees bit for bit ✔")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
