#!/usr/bin/env python
"""Served collection: drive PrivShape through the network gateway.

This example runs the full server stack in one process:

1. a :class:`~repro.server.gateway.CollectionGateway` serves the protocol on
   an ephemeral TCP port (newline-delimited JSON + HTTP ``/status``), with
   durable checkpoints in a temporary directory;
2. the load generator streams a synthetic population through the socket,
   round by round, with deterministic idempotent batch ids;
3. mid-run we snatch the checkpoint, "crash" the server, resume a second
   gateway from the checkpoint, replay — and verify the final result is
   byte-identical to the offline ``PrivShape.extract()`` on the same users.

Run with:  python examples/served_collection.py [n_users]
"""

from __future__ import annotations

import sys
import tempfile

from repro import (
    CollectionGateway,
    CollectionSpec,
    ExperimentSpec,
    GatewayClient,
    PrivacySpec,
    PrivShape,
    SAXSpec,
    run_loadgen,
    serve_in_thread,
)
from repro.service import SyntheticShapeStream, default_templates


def main(n_users: int = 100_000) -> None:
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    population = SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=0,
        length_jitter=0.2,
    )
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=4.0),
        sax=SAXSpec(alphabet_size=4),
        collection=CollectionSpec(top_k=3, metric="sed", length_low=1, length_high=5),
    )

    with tempfile.TemporaryDirectory() as checkpoint_dir:
        # ---- serve, drive one round, then crash -------------------------
        gateway = CollectionGateway(
            spec, rng=0, n_shards=4, checkpoint_dir=checkpoint_dir
        )
        handle = serve_in_thread(gateway)
        print(f"gateway listening on {handle.host}:{handle.port}")
        with GatewayClient(handle.host, handle.port) as client:
            current = client.round()
            print(f"open round: {current['round']['kind']}")
        handle.stop()
        print("gateway 'crashed'; resuming from the checkpoint ...")

        # ---- resume from the checkpoint and finish the run --------------
        recovered = CollectionGateway.from_checkpoint(checkpoint_dir)
        with serve_in_thread(recovered) as handle:
            stats = run_loadgen(handle.host, handle.port, population, batch_size=16384)

    result = stats.result
    assert result is not None
    print(
        f"served {stats.total_reports} reports in {stats.total_seconds:.2f}s "
        f"({stats.reports_per_second:,.0f} reports/sec over the socket)"
    )
    for shape, frequency in zip(result["shapes"], result["frequencies"]):
        print(f"  {shape:<12} estimated count {frequency:12.1f}")

    # ---- the defining guarantee: served == offline ----------------------
    sequences = []
    for _, batch in population.iter_batches(16384):
        sequences.extend(batch.decode_row(row) for row in batch.codes)
    offline = PrivShape(spec).extract(sequences, rng=0)
    assert [tuple(s) for s in result["shape_tuples"]] == offline.shapes
    assert result["frequencies"] == offline.frequencies
    print("served result is byte-identical to the offline extraction ✓")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
