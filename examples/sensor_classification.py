#!/usr/bin/env python
"""Industrial-sensor classification under user-level LDP (the paper's Trace scenario).

A plant operator collects transient signatures from monitoring devices and
wants per-fault-class reference shapes without seeing any raw signal.  The
classification variant of PrivShape reports each device's (closest shape,
fault label) pair through Optimized Unary Encoding; the per-class top shapes
then act as a nearest-shape classifier (the private analogue of Fig. 11 /
Table IV).

Run with:  python examples/sensor_classification.py [n_users] [epsilon]
"""

from __future__ import annotations

import sys

from repro import trace_like
from repro.core.pipeline import run_classification_task


def main(n_users: int = 12000, epsilon: float = 4.0) -> None:
    dataset = trace_like(n_instances=n_users, rng=5)
    print(
        f"population: {n_users} monitoring devices, {dataset.n_classes} transient classes, "
        f"epsilon={epsilon}\n"
    )

    print(f"{'mechanism':<12} {'accuracy':>9} {'DTW':>8} {'SED':>8}  per-class shapes")
    for mechanism in ("privshape", "baseline", "patternldp"):
        result = run_classification_task(
            dataset,
            mechanism=mechanism,
            epsilon=epsilon,
            alphabet_size=4,
            segment_length=10,
            metric="sed",
            evaluation_size=500,
            rng=13,
        )
        class_shapes = "; ".join(
            f"{label}:{shapes[0] if shapes else '-'}"
            for label, shapes in sorted(result.shapes_by_class.items())
        )
        print(
            f"{mechanism:<12} {result.accuracy:>9.3f} "
            f"{result.shape_measures['dtw']:>8.2f} "
            f"{result.shape_measures['sed']:>8.2f}  {class_shapes}"
        )
    print("\nground-truth class shapes:", ", ".join(result.ground_truth_shapes))
    print(
        "\nPrivShape's per-class shapes classify held-out clean signals by nearest"
        "\nedit distance; PatternLDP must train a random forest on heavily perturbed"
        "\nvalues, which works only at much larger budgets."
    )


if __name__ == "__main__":
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 12000
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    main(n_users, epsilon)
