#!/usr/bin/env python
"""Plan a PrivShape deployment before collecting any data.

Before rolling PrivShape out, an operator wants to know (a) which frequency
oracle to use for each stage, (b) how concentrated the Exponential-Mechanism
selections will be, and (c) how many users are needed for the decisive counts
to be trustworthy at the chosen privacy budget.  The `repro.analysis` module
answers all three from closed-form expressions — no data required.

Run with:  python examples/deployment_planning.py [epsilon]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    baseline_domain_bound,
    em_selection_probability,
    grr_variance,
    oue_variance,
    plan_population,
    privshape_domain_bound,
    recommend_frequency_oracle,
    utility_improvement_bound,
)


def main(epsilon: float = 4.0) -> None:
    alphabet_size, expected_length, top_k, candidate_factor = 4, 6, 3, 3
    subshape_domain = alphabet_size * (alphabet_size - 1)

    print(f"planning a PrivShape deployment at user-level epsilon = {epsilon}\n")

    # (a) Which oracle per stage?
    print("frequency-oracle choice (variance per 10,000 reports):")
    for stage, domain in (("length estimation", 10), ("sub-shape estimation", subshape_domain)):
        grr = grr_variance(epsilon, domain, 10_000)
        oue = oue_variance(epsilon, 10_000)
        choice = recommend_frequency_oracle(epsilon, domain)
        print(f"  {stage:<22} domain {domain:>3}: GRR {grr:10.1f}  OUE {oue:10.1f}  -> use {choice.upper()}")

    # (b) How concentrated are the EM selections at each trie level?
    print("\nExponential-Mechanism success probability (top candidate selected):")
    for level in (2, 4, 6):
        privshape_domain = privshape_domain_bound(candidate_factor, top_k, alphabet_size)
        baseline_domain = baseline_domain_bound(alphabet_size, level)
        print(
            f"  level {level}: PrivShape domain {privshape_domain:>4} -> "
            f"P(best) = {em_selection_probability(epsilon, privshape_domain):.3f};   "
            f"baseline domain {baseline_domain:>5} -> "
            f"P(best) = {em_selection_probability(epsilon, baseline_domain):.3f};   "
            f"Theorem-4 factor = {utility_improvement_bound(alphabet_size, level, candidate_factor, top_k):.1f}"
        )

    # (c) How many users are needed?
    print("\npopulation sizing (resolve shapes held by >=20% of users within 5%):")
    plan = plan_population(
        epsilon=epsilon,
        alphabet_size=alphabet_size,
        expected_length=expected_length,
        top_k=top_k,
        candidate_factor=candidate_factor,
        relative_error=0.05,
        minimum_shape_frequency=0.2,
    )
    print(plan.summary())

    print("\nfor comparison, the paper's evaluation uses 40,000 users per dataset.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 4.0)
