#!/usr/bin/env python
"""Unified execution: one spec, every backend, one structured artifact.

This example shows the execution API added on top of ``repro.api``:

1. ``ExperimentSpec.run(data, backend=...)`` is the single way to launch
   work — the ``inline`` (streaming driver), ``sharded`` (multiprocess),
   ``gateway`` (real TCP sockets), and ``subprocess`` (child CLI) backends
   all collect with the same engine and PRF-keyed client randomness, so
   under one master seed their estimates are byte-identical;
2. every run returns a :class:`~repro.api.results.RunResult` — estimates,
   per-round accounting, timings, backend metadata, and the full spec echo —
   with a loss-free JSON round-trip;
3. a :class:`~repro.api.sweep.SweepSpec` expands an experiment grid
   (epsilons x SAX parameters here) and returns one artifact per point,
   comparable across backends via :meth:`SweepResult.fingerprint`.

Run with:  python examples/unified_execution.py
"""

from __future__ import annotations

from repro import DataSpec, ExperimentSpec, PrivacySpec, RunResult, SweepSpec

SEED = 7


def main() -> None:
    spec = ExperimentSpec(mechanism="privshape", privacy=PrivacySpec(epsilon=4.0))
    data = DataSpec(source="synthetic", n_users=30_000, seed=SEED)
    print(f"spec: {spec.mechanism}, eps={spec.privacy.epsilon}  "
          f"data: {data.source}, {data.n_users} users")

    # ------------------------------------------- one spec on three backends
    results: dict[str, RunResult] = {}
    for backend, options in [
        ("inline", {"batch_size": 8192}),
        ("sharded", {"shards": 2}),
        ("gateway", {"shards": 2}),
    ]:
        result = spec.run(data, backend=backend, seed=SEED, **options)
        results[backend] = result
        rate = result.timings.get("reports_per_second", 0.0)
        print(f"  {backend:<8} {result.shapes}  "
              f"{result.timings['total_reports']} reports "
              f"({rate:,.0f}/sec)")

    assert all(
        r.fingerprint() == results["inline"].fingerprint()
        for r in results.values()
    )
    print("all backends byte-identical under the same master seed ✔")

    # ------------------------------------------------- the artifact itself
    artifact = results["inline"]
    document = artifact.to_json()
    assert RunResult.from_json(document).fingerprint() == artifact.fingerprint()
    print(f"\nRunResult round-trips through JSON ({len(document)} bytes):")
    print(f"  estimates: {artifact.estimates[:2]} ...")
    print(f"  rounds:    {len(artifact.rounds)} "
          f"({', '.join(r['kind'] for r in artifact.rounds[:4])}, ...)")
    print(f"  accounting: user-level epsilon "
          f"{artifact.accounting['user_level_epsilon']:g}, "
          f"within budget: {artifact.accounting['within_budget']}")

    # ------------------------------------------------------------- a sweep
    sweep = SweepSpec(base=spec, task="extract",
                      epsilons=(1.0, 4.0), alphabet_sizes=(3, 4))
    outcome = sweep.run(data, backend="inline", seed=SEED)
    print(f"\nsweep: {len(outcome.runs)} grid points "
          f"(epsilons x alphabet sizes):")
    for point, run in zip(outcome.points, outcome.runs):
        print(f"  t={point['alphabet_size']} eps={point['epsilon']:<4} "
              f"-> {run.shapes}")


if __name__ == "__main__":
    main()
