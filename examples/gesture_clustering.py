#!/usr/bin/env python
"""Gesture clustering under user-level LDP (the paper's Symbols scenario).

A motion-sensing service wants to discover the common gesture shapes of its
users without ever collecting raw trajectories.  This example runs the full
clustering-task evaluation for PrivShape, the baseline mechanism, and the
PatternLDP competitor, and reports the Adjusted Rand Index each achieves
against the true gesture classes (the private analogue of Fig. 9 / Table III).

Run with:  python examples/gesture_clustering.py [n_users] [epsilon]
"""

from __future__ import annotations

import sys

from repro import symbols_like
from repro.core.pipeline import run_clustering_task


def main(n_users: int = 12000, epsilon: float = 4.0) -> None:
    dataset = symbols_like(n_instances=n_users, rng=3)
    print(f"population: {n_users} users, {dataset.n_classes} gesture classes, epsilon={epsilon}\n")

    print(f"{'mechanism':<12} {'ARI':>6} {'DTW':>8} {'SED':>8} {'Euclid':>8}  extracted shapes")
    for mechanism in ("privshape", "baseline", "patternldp"):
        result = run_clustering_task(
            dataset,
            mechanism=mechanism,
            epsilon=epsilon,
            alphabet_size=6,
            segment_length=25,
            metric="dtw",
            evaluation_size=600,
            rng=11,
        )
        shapes = ", ".join(result.shapes[:4]) + ("..." if len(result.shapes) > 4 else "")
        print(
            f"{mechanism:<12} {result.ari:>6.3f} "
            f"{result.shape_measures['dtw']:>8.2f} "
            f"{result.shape_measures['sed']:>8.2f} "
            f"{result.shape_measures['euclidean']:>8.2f}  {shapes}"
        )
    print("\nground-truth class shapes:", ", ".join(result.ground_truth_shapes))
    print(
        "\nA higher ARI means the privately extracted shapes partition users into"
        "\ntheir true gesture classes; PatternLDP's value perturbation destroys the"
        "\nshape information at user-level budgets, so its ARI stays near zero."
    )


if __name__ == "__main__":
    n_users = int(sys.argv[1]) if len(sys.argv) > 1 else 12000
    epsilon = float(sys.argv[2]) if len(sys.argv) > 2 else 4.0
    main(n_users, epsilon)
