#!/usr/bin/env python
"""Private shapelet discovery (the paper's stated future-work direction).

A hospital network wants discriminative sub-patterns ("shapelets") of patient
monitoring curves without collecting the raw curves.  PrivShape extracts the
per-class frequent shapes under user-level LDP; windows of those shapes become
shapelet candidates; a small public reference set ranks them by information
gain; and a shapelet-transform classifier built on the winners classifies new
curves.

Run with:  python examples/private_shapelet_discovery.py [n_private_users]
"""

from __future__ import annotations

import sys

from repro import trace_like
from repro.extensions import PrivateShapeletDiscovery, ShapeletTransformClassifier
from repro.mining.metrics import accuracy_score


def main(n_private_users: int = 8000) -> None:
    # The sensitive population (accessed only through the LDP mechanism) and a
    # small public labelled reference set.
    private_population = trace_like(n_instances=n_private_users, rng=41)
    public_reference = trace_like(n_instances=200, rng=42)

    discovery = PrivateShapeletDiscovery(
        epsilon=4.0,
        alphabet_size=4,
        segment_length=10,
        top_k_shapes=3,
        n_shapelets=5,
    )
    shapelets = discovery.discover(private_population, public_reference, rng=0)

    print(f"discovered {len(shapelets)} shapelets from {n_private_users} private users (eps=4):")
    for rank, shapelet in enumerate(shapelets, start=1):
        source = "".join(shapelet.source_shape)
        print(
            f"  #{rank}: length {shapelet.length:3d} points, information gain {shapelet.gain:.3f}, "
            f"from class-{shapelet.source_class} shape '{source}'"
        )

    # Use the shapelets to classify new, unseen curves.
    train, test = public_reference.train_test_split(test_fraction=0.4, rng=1)
    classifier = ShapeletTransformClassifier(shapelets=shapelets, n_estimators=20, rng=2)
    classifier.fit(train.series, train.labels)
    accuracy = accuracy_score(test.labels, classifier.predict(test.series))
    print(f"\nshapelet-transform classifier accuracy on held-out curves: {accuracy:.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8000)
