"""Setuptools shim for environments without the ``wheel`` package.

All project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` (or ``python setup.py develop``) works offline with
older setuptools tool-chains that cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
