"""Drift detection over per-window shape-frequency estimates.

A continual run in refresh mode keeps re-estimating the carried candidate
frequencies with cheap refine-only windows; this module decides when those
estimates say the *dominant shape mixture* has shifted enough to pay for a
full re-extraction.  Two complementary signals:

* :func:`l1_drift` — total-variation distance between the normalized
  baseline and current mixtures (sensitive to mass moving between shapes);
* :func:`topk_churn` — the fraction of the baseline top-k that fell out of
  the current top-k (sensitive to rank changes even when mass moves little).

:class:`DriftDetector` wraps both with hysteresis: a re-extraction fires
only after ``hysteresis`` *consecutive* drifted windows, so one noisy
estimate can't trigger a full (and budget-hungry) protocol run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.trie import Shape

Frequencies = Mapping[Shape, float]


def _normalize(frequencies: Frequencies) -> dict[Shape, float]:
    clipped = {shape: max(float(count), 0.0) for shape, count in frequencies.items()}
    total = sum(clipped.values())
    if total <= 0.0:
        return {}
    return {shape: count / total for shape, count in clipped.items()}


def l1_drift(baseline: Frequencies, current: Frequencies) -> float:
    """Total-variation distance between two shape mixtures, in ``[0, 1]``.

    Both inputs are normalized to probability mixtures first (negative
    estimates clip to zero), so the score compares *shapes of the
    distribution*, not population sizes.  An empty mixture against a
    non-empty one scores 1.0; two empty mixtures score 0.0.
    """
    a, b = _normalize(baseline), _normalize(current)
    if not a and not b:
        return 0.0
    if not a or not b:
        return 1.0
    support = set(a) | set(b)
    return sum(abs(a.get(s, 0.0) - b.get(s, 0.0)) for s in support) / 2.0


def _top_shapes(frequencies: Frequencies, k: int) -> list[Shape]:
    ranked = sorted(frequencies.items(), key=lambda item: (-item[1], item[0]))
    return [shape for shape, _ in ranked[:k]]


def topk_churn(baseline: Frequencies, current: Frequencies, k: int) -> float:
    """Fraction of the baseline top-``k`` absent from the current top-``k``.

    0.0 means the leading shapes are unchanged (whatever their exact
    counts); 1.0 means a complete turnover.  Empty-vs-non-empty scores 1.0.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if not baseline and not current:
        return 0.0
    if not baseline or not current:
        return 1.0
    top_a = _top_shapes(baseline, k)
    top_b = set(_top_shapes(current, k))
    missing = sum(1 for shape in top_a if shape not in top_b)
    return missing / len(top_a)


@dataclass(frozen=True)
class DriftDecision:
    """One refresh window's drift verdict (scores + whether the trigger fired)."""

    l1: float
    churn: float
    drifted: bool
    fired: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "l1": self.l1,
            "churn": self.churn,
            "drifted": self.drifted,
            "fired": self.fired,
        }


@dataclass
class DriftDetector:
    """Hysteresis-debounced mixture-shift detector.

    ``update`` scores the current estimates against the baseline set by the
    last full extraction; a window counts as *drifted* when the L1 score
    exceeds ``l1_threshold`` or (when enabled) the churn score exceeds
    ``churn_threshold``.  The trigger *fires* after ``hysteresis``
    consecutive drifted windows, and the streak resets on any calm window
    and on every new baseline.
    """

    l1_threshold: float = 0.25
    churn_threshold: float | None = None
    top_k: int = 3
    hysteresis: int = 1
    baseline: dict[Shape, float] | None = None
    _streak: int = field(default=0, repr=False)

    def set_baseline(self, frequencies: Frequencies) -> None:
        """Adopt a full extraction's estimates as the new reference mixture."""
        self.baseline = {tuple(s): float(c) for s, c in frequencies.items()}
        self._streak = 0

    def update(self, frequencies: Frequencies) -> DriftDecision:
        """Score one refresh window and advance the hysteresis streak."""
        if self.baseline is None:
            raise ValueError("set_baseline must be called before update")
        l1 = l1_drift(self.baseline, frequencies)
        churn = topk_churn(self.baseline, frequencies, self.top_k)
        drifted = l1 > self.l1_threshold or (
            self.churn_threshold is not None and churn > self.churn_threshold
        )
        self._streak = self._streak + 1 if drifted else 0
        fired = self._streak >= self.hysteresis
        if fired:
            self._streak = 0
        return DriftDecision(l1=l1, churn=churn, drifted=drifted, fired=fired)

    # ------------------------------------------------------------- snapshot

    def to_state(self) -> dict[str, Any]:
        return {
            "l1_threshold": self.l1_threshold,
            "churn_threshold": self.churn_threshold,
            "top_k": self.top_k,
            "hysteresis": self.hysteresis,
            "baseline": None
            if self.baseline is None
            else [[list(shape), count] for shape, count in sorted(self.baseline.items())],
            "streak": self._streak,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "DriftDetector":
        detector = cls(
            l1_threshold=float(state["l1_threshold"]),
            churn_threshold=None
            if state["churn_threshold"] is None
            else float(state["churn_threshold"]),
            top_k=int(state["top_k"]),
            hysteresis=int(state["hysteresis"]),
        )
        if state["baseline"] is not None:
            detector.baseline = {
                tuple(shape): float(count) for shape, count in state["baseline"]
            }
        detector._streak = int(state["streak"])
        return detector


def detector_for(spec: Any) -> DriftDetector:
    """Build a detector from a :class:`~repro.continual.windows.WindowSpec`."""
    return DriftDetector(
        l1_threshold=float(spec.drift_threshold),
        churn_threshold=spec.churn_threshold,
        top_k=int(spec.drift_top_k),
        hysteresis=int(spec.hysteresis),
    )
