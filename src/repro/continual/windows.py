"""Window geometry and seeds for continual (sliding-window) collection.

A continual run re-opens collection over a sliding horizon of user reports:
window ``w`` covers the user-id slice ``[w * stride, w * stride + length)``
and runs the full round-based protocol (or a cheap refine-only refresh) over
just those users.  This module holds the pure geometry — :class:`WindowSpec`
(the user-facing knobs), :class:`WindowPlan` (the frozen per-run schedule),
:class:`WindowTicket` (one scheduled window execution), :class:`WindowView`
(a population slice re-based to local user ids), and :func:`window_seed`
(the per-(window, attempt) PRF seed derivation).

Deliberately free of any service/server/api imports: ``repro.api.spec``
embeds :class:`WindowSpec` and the import order in ``repro/__init__`` puts
the api package before the service package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.prf import derive_key

#: Budget-renewal policies.
RENEW_PER_WINDOW = "per_window"
RENEW_GLOBAL = "global"
RENEWAL_POLICIES = (RENEW_PER_WINDOW, RENEW_GLOBAL)

#: Window execution modes.
MODE_FULL = "full"
MODE_REFRESH = "refresh"


def window_seed(base_seed: int, index: int, attempt: int = 0) -> int:
    """Deterministic PRF seed for one (window, attempt) execution.

    Derived with two rounds of the SplitMix64 mixer so distinct windows —
    and distinct attempts at the same window after a drift re-trigger — get
    statistically independent master seeds from one base seed.  The result
    fits in a uint64 and seeds ``numpy.random.default_rng`` directly, which
    is what makes a window byte-identical standalone vs continual: a
    standalone run handed ``window_seed(base, w, a)`` draws the exact PRF
    key sequence the continual engine used for that window.
    """
    return derive_key(derive_key(int(base_seed), 1 + int(index)), int(attempt))


@dataclass(frozen=True)
class WindowSpec:
    """User-facing knobs of a continual collection run.

    Parameters
    ----------
    length:
        Users per window.
    stride:
        User-id distance between consecutive window starts; ``None`` means
        tumbling windows (``stride == length``).  Overlapping windows
        (``stride < length``) re-observe users, which is exactly the
        event-level vs user-level accounting distinction —
        ``PrivacyAccountant.user_level_epsilon(horizon=...)`` quantifies it.
    n_windows:
        Cap on the number of windows; ``None`` runs as many full-stride
        windows as the population allows.
    budget_renewal:
        ``"per_window"`` renews the full ε every window (event-level
        budgeting); ``"global"`` divides ε across the resolved window count
        so the whole stream stays within one user-level budget even if a
        user appears in every window.
    carry_over:
        Seed each window's trie from the previous window's survivors
        (decayed by ``decay``).  Disabling it makes every window
        byte-identical to a standalone run over its users.
    decay:
        Multiplier applied to carried frequencies, in ``(0, 1]``.
    refresh:
        Use cheap refine-only windows (only the Pd population reports
        against the carried candidates) while no drift is detected; a full
        re-extraction is triggered only when the detector fires.  Requires
        ``carry_over``.
    refresh_fraction:
        Fraction of a window's ε a refresh probe spends; a drift-triggered
        re-extraction of the same window runs at the remaining
        ``1 - refresh_fraction``, so probe + re-run together never exceed
        the window's renewed budget.
    drift_threshold:
        Total-variation distance between the carried baseline mixture and a
        refresh window's estimates above which the window counts as drifted.
    churn_threshold:
        Optional top-k churn fraction (how much of the baseline top-k left
        the current top-k) that also counts as drifted; ``None`` disables
        the churn signal.
    drift_top_k:
        ``k`` for the churn signal.
    hysteresis:
        Consecutive drifted refresh windows required before a full
        re-extraction fires (debounces noisy estimates).
    """

    length: int
    stride: int | None = None
    n_windows: int | None = None
    budget_renewal: str = RENEW_PER_WINDOW
    carry_over: bool = True
    decay: float = 0.5
    refresh: bool = False
    refresh_fraction: float = 0.5
    drift_threshold: float = 0.25
    churn_threshold: float | None = None
    drift_top_k: int = 3
    hysteresis: int = 1

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise ConfigurationError(f"window length must be positive, got {self.length}")
        if self.stride is not None and self.stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {self.stride}")
        if self.n_windows is not None and self.n_windows <= 0:
            raise ConfigurationError(f"n_windows must be positive, got {self.n_windows}")
        if self.budget_renewal not in RENEWAL_POLICIES:
            raise ConfigurationError(
                f"budget_renewal must be one of {RENEWAL_POLICIES}, "
                f"got {self.budget_renewal!r}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ConfigurationError(f"decay must be in (0, 1], got {self.decay}")
        if self.refresh and not self.carry_over:
            raise ConfigurationError(
                "refresh windows re-estimate carried candidates; "
                "they require carry_over=True"
            )
        if not 0.0 < self.refresh_fraction < 1.0:
            raise ConfigurationError(
                f"refresh_fraction must be in (0, 1), got {self.refresh_fraction}"
            )
        if self.drift_threshold < 0:
            raise ConfigurationError(
                f"drift_threshold must be >= 0, got {self.drift_threshold}"
            )
        if self.churn_threshold is not None and not 0.0 <= self.churn_threshold <= 1.0:
            raise ConfigurationError(
                f"churn_threshold must be in [0, 1], got {self.churn_threshold}"
            )
        if self.drift_top_k <= 0:
            raise ConfigurationError(
                f"drift_top_k must be positive, got {self.drift_top_k}"
            )
        if self.hysteresis <= 0:
            raise ConfigurationError(
                f"hysteresis must be positive, got {self.hysteresis}"
            )

    @property
    def effective_stride(self) -> int:
        """The stride actually used (tumbling windows when unset)."""
        return self.length if self.stride is None else self.stride

    def to_dict(self) -> dict[str, Any]:
        return {
            "length": self.length,
            "stride": self.stride,
            "n_windows": self.n_windows,
            "budget_renewal": self.budget_renewal,
            "carry_over": self.carry_over,
            "decay": self.decay,
            "refresh": self.refresh,
            "refresh_fraction": self.refresh_fraction,
            "drift_threshold": self.drift_threshold,
            "churn_threshold": self.churn_threshold,
            "drift_top_k": self.drift_top_k,
            "hysteresis": self.hysteresis,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowSpec":
        return cls(
            length=int(data["length"]),
            stride=None if data.get("stride") is None else int(data["stride"]),
            n_windows=None if data.get("n_windows") is None else int(data["n_windows"]),
            budget_renewal=str(data.get("budget_renewal", RENEW_PER_WINDOW)),
            carry_over=bool(data.get("carry_over", True)),
            decay=float(data.get("decay", 0.5)),
            refresh=bool(data.get("refresh", False)),
            refresh_fraction=float(data.get("refresh_fraction", 0.5)),
            drift_threshold=float(data.get("drift_threshold", 0.25)),
            churn_threshold=None
            if data.get("churn_threshold") is None
            else float(data["churn_threshold"]),
            drift_top_k=int(data.get("drift_top_k", 3)),
            hysteresis=int(data.get("hysteresis", 1)),
        )


@dataclass(frozen=True)
class WindowPlan:
    """The frozen schedule of one continual run: bounds and per-window ε.

    Freezing resolves everything that depends on the population size — the
    window count, each window's ``[start, stop)`` user-id slice, and the
    per-window privacy budget under the renewal policy — so every execution
    path (inline, gateway, cluster) schedules the identical windows.
    """

    spec: WindowSpec
    n_users: int
    bounds: tuple[tuple[int, int], ...]
    window_epsilon: float

    @classmethod
    def freeze(cls, spec: WindowSpec, n_users: int, epsilon: float) -> "WindowPlan":
        if n_users <= 0:
            raise ConfigurationError(f"n_users must be positive, got {n_users}")
        stride = spec.effective_stride
        bounds: list[tuple[int, int]] = []
        start = 0
        while start < n_users:
            stop = min(start + spec.length, n_users)
            bounds.append((start, stop))
            if spec.n_windows is not None and len(bounds) >= spec.n_windows:
                break
            start += stride
        if spec.n_windows is not None and len(bounds) < spec.n_windows:
            raise ConfigurationError(
                f"{n_users} users cover only {len(bounds)} windows of "
                f"length {spec.length} / stride {stride}; "
                f"n_windows={spec.n_windows} was requested"
            )
        if spec.budget_renewal == RENEW_GLOBAL:
            window_epsilon = float(epsilon) / len(bounds)
        else:
            window_epsilon = float(epsilon)
        return cls(
            spec=spec,
            n_users=int(n_users),
            bounds=tuple(bounds),
            window_epsilon=window_epsilon,
        )

    @property
    def n_windows(self) -> int:
        return len(self.bounds)

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "n_users": self.n_users,
            "bounds": [list(b) for b in self.bounds],
            "window_epsilon": self.window_epsilon,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowPlan":
        return cls(
            spec=WindowSpec.from_dict(data["spec"]),
            n_users=int(data["n_users"]),
            bounds=tuple((int(b[0]), int(b[1])) for b in data["bounds"]),
            window_epsilon=float(data["window_epsilon"]),
        )


@dataclass(frozen=True)
class WindowTicket:
    """One scheduled window execution (a window may run twice after drift).

    ``attempt`` 0 is the scheduled pass (full or refresh); a drift-triggered
    full re-extraction of the same window runs as ``attempt`` 1 with its own
    derived seed.  ``seed`` is the complete randomness of the execution —
    handing it to a standalone run over the same users reproduces the window
    byte for byte.
    """

    index: int
    attempt: int
    mode: str
    start: int
    stop: int
    seed: int
    epsilon: float

    @property
    def n_users(self) -> int:
        return self.stop - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "attempt": self.attempt,
            "mode": self.mode,
            "start": self.start,
            "stop": self.stop,
            "seed": self.seed,
            "epsilon": self.epsilon,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WindowTicket":
        return cls(
            index=int(data["index"]),
            attempt=int(data["attempt"]),
            mode=str(data["mode"]),
            start=int(data["start"]),
            stop=int(data["stop"]),
            seed=int(data["seed"]),
            epsilon=float(data["epsilon"]),
        )


class WindowView:
    """A population slice re-based to local user ids ``0..n_window_users``.

    Client randomness is a PRF of the user id, so a window must present its
    users with *local* ids for the continual path to be byte-identical to a
    standalone run over those users (whose ids naturally start at 0).  The
    view implements the population-source protocol (``n_users`` /
    ``iter_batches`` / ``iter_range``) by translating local ranges to the
    underlying absolute slice.
    """

    def __init__(self, population: Any, start: int, stop: int) -> None:
        n = int(getattr(population, "n_users"))
        start, stop = int(start), int(stop)
        if not 0 <= start < stop <= n:
            raise ConfigurationError(
                f"window [{start}, {stop}) does not fit a population of {n} users"
            )
        self.population = population
        self.start = start
        self.stop = stop

    @property
    def n_users(self) -> int:
        return self.stop - self.start

    def iter_batches(self, batch_size: int) -> Iterator[tuple[np.ndarray, Any]]:
        yield from self.iter_range(0, self.n_users, batch_size)

    def iter_range(
        self, start: int, stop: int, batch_size: int
    ) -> Iterator[tuple[np.ndarray, Any]]:
        start = max(int(start), 0)
        stop = min(int(stop), self.n_users)
        for user_ids, batch in self.population.iter_range(
            self.start + start, self.start + stop, batch_size
        ):
            yield user_ids - self.start, batch
