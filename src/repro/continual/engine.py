"""The continual collection engine: windows scheduled over one population.

:class:`WindowController` is the pure state machine every execution backend
shares: it schedules :class:`~repro.continual.windows.WindowTicket`\\ s,
builds the per-window :class:`~repro.service.protocol.PrivShapeEngine`
(carry-over-seeded full runs, refine-only refresh probes, drift-triggered
re-extractions), folds each closed window into the master window-tagged
privacy ledger, and emits one plain JSON payload per window attempt.  The
inline :class:`ContinualEngine` drives the controller directly over a
population source; the gateway and cluster coordinator host the *same*
controller behind their sockets, which is what makes per-window results
backend-equivalent by construction.

Determinism contract: window ``(index, attempt)`` runs from
``window_seed(base_seed, index, attempt)`` over a
:class:`~repro.continual.windows.WindowView` that presents the window's
users with local ids — so any window with an empty carry-over is
byte-identical to a standalone run handed the same seed and users.  Round
indexes are offset so they increase globally across windows (cluster shard
workers reject stale indexes); the index feeds nothing but round matching,
so the offset is invisible in estimates.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.continual.drift import DriftDetector, detector_for
from repro.continual.windows import (
    MODE_FULL,
    MODE_REFRESH,
    WindowPlan,
    WindowSpec,
    WindowTicket,
    WindowView,
    window_seed,
)
from repro.core.config import PrivShapeConfig
from repro.exceptions import ProtocolStateError
from repro.ldp.accounting import BudgetSpend, PrivacyAccountant
from repro.obs.tracing import trace_span
from repro.service.driver import ProtocolDriver
from repro.service.protocol import PrivShapeEngine
from repro.utils.prf import fresh_key
from repro.utils.rng import ensure_rng


class WindowController:
    """Backend-shared window scheduler, ledger, and drift policy.

    The controller never touches sockets or report batches; backends feed it
    finished window engines and it hands back tickets and payload dicts.
    Snapshots (:meth:`to_state` / :meth:`from_state`) are loss-free so a
    gateway checkpoint taken mid-window resumes the exact schedule.
    """

    def __init__(
        self,
        config: PrivShapeConfig,
        windows: WindowSpec,
        n_users: int,
        base_seed: int | None = None,
    ) -> None:
        if not isinstance(config, PrivShapeConfig) and hasattr(config, "to_privshape_config"):
            config = config.to_privshape_config()
        self.config = config
        self.windows = windows
        self.plan = WindowPlan.freeze(windows, n_users=n_users, epsilon=config.epsilon)
        self.base_seed = (
            int(base_seed) if base_seed is not None else fresh_key(ensure_rng(None))
        )
        # The master ledger records every window's spends tagged with the
        # window index; strict enforcement is per (population, window), which
        # is exactly the renewal semantics.
        self.master = PrivacyAccountant(target_epsilon=config.epsilon)
        self.detector: DriftDetector = detector_for(windows)
        self.carryover: list[tuple[tuple[str, ...], float]] = []
        self.carried_length: int | None = None
        self.results: list[dict[str, Any]] = []
        self._next_index = 0
        self._pending_full = False
        self._round_offset = 0

    # ------------------------------------------------------------ scheduling

    @property
    def done(self) -> bool:
        """True once every window (and any pending re-extraction) closed."""
        return self._next_index >= self.plan.n_windows

    @property
    def user_horizon(self) -> int:
        """Max windows one user can appear in (ceil(length / stride))."""
        stride = self.windows.effective_stride
        return max(1, -(-self.windows.length // stride))

    def next_ticket(self) -> Optional[WindowTicket]:
        """The next window execution to run, or ``None`` when done."""
        if self.done:
            return None
        index = self._next_index
        start, stop = self.plan.bounds[index]
        attempt = 1 if self._pending_full else 0
        leaf_level = max(self.carried_length or 1, 1)
        can_refresh = (
            self.windows.refresh
            and attempt == 0
            and index > 0
            and self.carried_length is not None
            and any(len(shape) == leaf_level for shape, _ in self.carryover)
        )
        mode = MODE_REFRESH if can_refresh else MODE_FULL
        epsilon = self.plan.window_epsilon
        if mode == MODE_REFRESH:
            epsilon *= self.windows.refresh_fraction
        elif attempt > 0:
            # A drift-triggered re-extraction: the refresh probe already
            # spent its fraction of this window's budget.
            epsilon *= 1.0 - self.windows.refresh_fraction
        return WindowTicket(
            index=index,
            attempt=attempt,
            mode=mode,
            start=start,
            stop=stop,
            seed=window_seed(self.base_seed, index, attempt),
            epsilon=epsilon,
        )

    def build_engine(self, ticket: WindowTicket) -> PrivShapeEngine:
        """Construct the protocol engine for one ticket."""
        with trace_span(
            "window.build_engine", window=ticket.index, mode=ticket.mode,
        ):
            return self._build_engine(ticket)

    def _build_engine(self, ticket: WindowTicket) -> PrivShapeEngine:
        config = dataclasses.replace(self.config, epsilon=ticket.epsilon)
        if ticket.mode == MODE_REFRESH:
            return PrivShapeEngine.for_refresh(
                config,
                rng=ticket.seed,
                carryover=self.carryover,
                estimated_length=self.carried_length,
                first_round_index=self._round_offset,
            )
        return PrivShapeEngine(
            config,
            rng=ticket.seed,
            carryover=self.carryover,
            first_round_index=self._round_offset,
        )

    # --------------------------------------------------------------- closing

    def close_window(
        self, ticket: WindowTicket, engine: PrivShapeEngine
    ) -> dict[str, Any]:
        """Fold one finished window engine into the run and emit its payload.

        Returns the plain JSON payload recorded for this window attempt; the
        same dict is produced by every backend, which is what makes the
        per-window result sequence fingerprint-identical across them.
        """
        if not engine.is_done:
            raise ProtocolStateError(
                f"window {ticket.index} engine is still in stage {engine.stage!r}"
            )
        with trace_span(
            "window.close", window=ticket.index, attempt=ticket.attempt,
            mode=ticket.mode,
        ):
            return self._close_window(ticket, engine)

    def _close_window(
        self, ticket: WindowTicket, engine: PrivShapeEngine
    ) -> dict[str, Any]:
        result = engine.finalize()
        for spend in engine.accountant.spends:
            self.master.spend(
                spend.population,
                spend.epsilon,
                mechanism=spend.mechanism,
                window=ticket.index,
            )
        frequencies = dict(zip(result.shapes, result.frequencies))
        drift: dict[str, Any] | None = None
        final = True
        if ticket.mode == MODE_REFRESH:
            decision = self.detector.update(frequencies)
            drift = decision.to_dict()
            if decision.fired:
                # The mixture shifted: re-run this window as a full
                # extraction (attempt 1) before moving on.
                final = False
        else:
            self.detector.set_baseline(frequencies)
        payload = {
            "window": ticket.index,
            "attempt": ticket.attempt,
            "mode": ticket.mode,
            "start": ticket.start,
            "stop": ticket.stop,
            "seed": ticket.seed,
            "epsilon": ticket.epsilon,
            "final": final,
            "shapes": ["".join(shape) for shape in result.shapes],
            "shape_tuples": [list(shape) for shape in result.shapes],
            "frequencies": [float(count) for count in result.frequencies],
            "estimated_length": result.estimated_length,
            "accounting": {
                "per_population": engine.accountant.per_population(),
                "user_level_epsilon": engine.accountant.user_level_epsilon(),
                "within_budget": engine.accountant.is_valid(),
            },
            "drift": drift,
        }
        if final and self.windows.carry_over:
            self.carryover = engine.trie.export_carryover(self.windows.decay)
            self.carried_length = engine.estimated_length
        self._pending_full = not final
        if final:
            self._next_index += 1
        self._round_offset = engine.round_index
        self.results.append(payload)
        return payload

    def master_accounting(self) -> dict[str, Any]:
        """The run-level ledger: per-window renewal plus user-level views."""
        horizon = self.user_horizon
        return {
            "target_epsilon": self.master.target_epsilon,
            "budget_renewal": self.windows.budget_renewal,
            "per_population": self.master.per_population(),
            "window_epsilons": {
                str(window): epsilon
                for window, epsilon in self.master.window_epsilons().items()
            },
            "user_level_epsilon": self.master.user_level_epsilon(),
            "user_horizon": horizon,
            "user_level_epsilon_horizon": self.master.user_level_epsilon(
                horizon=horizon
            ),
            "within_budget": self.master.is_valid(),
        }

    # -------------------------------------------------------------- snapshot

    def to_state(self) -> dict[str, Any]:
        """Loss-free plain-data snapshot (window schedule + ledger + drift)."""
        return {
            "config": dataclasses.asdict(self.config),
            "windows": self.windows.to_dict(),
            "n_users": self.plan.n_users,
            "base_seed": self.base_seed,
            "master_spends": [
                {
                    "population": s.population,
                    "epsilon": s.epsilon,
                    "mechanism": s.mechanism,
                    "window": s.window,
                }
                for s in self.master.spends
            ],
            "detector": self.detector.to_state(),
            "carryover": [[list(shape), count] for shape, count in self.carryover],
            "carried_length": self.carried_length,
            "results": self.results,
            "next_index": self._next_index,
            "pending_full": self._pending_full,
            "round_offset": self._round_offset,
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "WindowController":
        """Rebuild the exact controller serialized by :meth:`to_state`."""
        config_data = dict(state["config"])
        config_data["population_fractions"] = tuple(
            config_data["population_fractions"]
        )
        controller = cls(
            PrivShapeConfig(**config_data),
            WindowSpec.from_dict(state["windows"]),
            n_users=int(state["n_users"]),
            base_seed=int(state["base_seed"]),
        )
        for spend in state["master_spends"]:
            controller.master.spends.append(
                BudgetSpend(
                    population=spend["population"],
                    epsilon=float(spend["epsilon"]),
                    mechanism=spend.get("mechanism", ""),
                    window=spend.get("window"),
                )
            )
        controller.detector = DriftDetector.from_state(state["detector"])
        controller.carryover = [
            (tuple(shape), float(count)) for shape, count in state["carryover"]
        ]
        controller.carried_length = state["carried_length"]
        controller.results = list(state["results"])
        controller._next_index = int(state["next_index"])
        controller._pending_full = bool(state["pending_full"])
        controller._round_offset = int(state["round_offset"])
        return controller


@dataclass
class ContinualResult:
    """Everything one continual run produced.

    ``windows`` holds one payload per window *attempt* in execution order
    (a drift-probing refresh that fired and its full re-extraction both
    appear; ``payload["final"]`` marks the authoritative record for each
    window index).  ``timings`` is the parallel list of driver stats — kept
    out of the payloads so they stay backend-comparable.
    """

    windows: list[dict[str, Any]]
    accounting: dict[str, Any]
    base_seed: int
    timings: list[dict[str, Any]] = field(default_factory=list)

    def final_windows(self) -> list[dict[str, Any]]:
        """The authoritative payload for each window index, in order."""
        return [payload for payload in self.windows if payload["final"]]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro.continual_result/v1",
            "windows": self.windows,
            "accounting": self.accounting,
            "base_seed": self.base_seed,
            "timings": self.timings,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ContinualResult":
        return cls(
            windows=list(data["windows"]),
            accounting=dict(data["accounting"]),
            base_seed=int(data["base_seed"]),
            timings=list(data.get("timings", [])),
        )


class ContinualEngine:
    """Inline window-by-window execution of a continual run.

    Each window builds its engine through the shared controller and streams
    its :class:`~repro.continual.windows.WindowView` through the standard
    :class:`~repro.service.driver.ProtocolDriver` round loop — the same loop
    one-shot runs use, so per-window results inherit the service layer's
    batching/sharding equivalence for free.
    """

    def __init__(
        self,
        config: PrivShapeConfig,
        windows: WindowSpec,
        population: Any,
        *,
        batch_size: int = 8192,
        n_shards: int = 1,
        seed: int | None = None,
    ) -> None:
        self.controller = WindowController(
            config, windows, n_users=int(population.n_users), base_seed=seed
        )
        self.population = population
        self.batch_size = int(batch_size)
        self.n_shards = int(n_shards)

    def run(self) -> ContinualResult:
        """Run every window (including drift re-extractions) to completion."""
        timings: list[dict[str, Any]] = []
        while (ticket := self.controller.next_ticket()) is not None:
            engine = self.controller.build_engine(ticket)
            view = WindowView(self.population, ticket.start, ticket.stop)
            driver = ProtocolDriver(
                engine.config,
                view,
                batch_size=self.batch_size,
                n_shards=self.n_shards,
            )
            driver.run(engine=engine)
            self.controller.close_window(ticket, engine)
            timings.append(driver.stats.to_dict())
        return ContinualResult(
            windows=list(self.controller.results),
            accounting=self.controller.master_accounting(),
            base_seed=self.controller.base_seed,
            timings=timings,
        )
