"""Continual (sliding-window) collection over a drifting user stream.

Layers a windowed lifecycle on top of the one-shot round protocol: window
geometry and seeds (:mod:`~repro.continual.windows`), drift detection
(:mod:`~repro.continual.drift`), and the backend-shared window controller
plus the inline runner (:mod:`~repro.continual.engine`).  The gateway and
cluster coordinator host the same :class:`WindowController` behind their
sockets; ``repro.api.continual`` converts its payloads into per-window
:class:`~repro.api.results.RunResult` sequences.
"""

from repro.continual.drift import (
    DriftDecision,
    DriftDetector,
    l1_drift,
    topk_churn,
)
from repro.continual.engine import (
    ContinualEngine,
    ContinualResult,
    WindowController,
)
from repro.continual.windows import (
    MODE_FULL,
    MODE_REFRESH,
    RENEW_GLOBAL,
    RENEW_PER_WINDOW,
    WindowPlan,
    WindowSpec,
    WindowTicket,
    WindowView,
    window_seed,
)

__all__ = [
    "MODE_FULL",
    "MODE_REFRESH",
    "RENEW_GLOBAL",
    "RENEW_PER_WINDOW",
    "ContinualEngine",
    "ContinualResult",
    "DriftDecision",
    "DriftDetector",
    "WindowController",
    "WindowPlan",
    "WindowSpec",
    "WindowTicket",
    "WindowView",
    "l1_drift",
    "topk_churn",
    "window_seed",
]
