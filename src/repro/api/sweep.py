"""Grid sweeps: one spec template expanded over experiment axes.

The paper's evaluation is a grid — mechanisms × datasets × privacy budgets ×
SAX parameters (Tables IV/V, Figures 15–17) — and before this module each
cell of that grid was a hand-written loop somewhere (the CLI's epsilon sweep,
per-figure benchmark files, ad-hoc scripts).  A :class:`SweepSpec` makes the
grid itself a serializable object:

* a ``base`` :class:`~repro.api.spec.ExperimentSpec` provides every knob the
  grid does not vary;
* the axes (``epsilons``, ``mechanisms``, ``alphabet_sizes``,
  ``segment_lengths``, ``datasets``) expand as a cartesian product in a
  fixed, deterministic order;
* :meth:`SweepSpec.run` executes every point through the executor registry —
  any backend, optionally fanned out over a thread pool (``parallel=N``; the
  ``gateway`` and ``subprocess`` backends genuinely overlap) — and returns a
  :class:`SweepResult` holding one :class:`~repro.api.results.RunResult` per
  point.

Like the run artifact, a sweep artifact round-trips through JSON, and
:meth:`SweepResult.fingerprint` projects out the deterministic part so two
sweeps of the same grid on different backends can be diffed byte for byte
(the CI ``sweep-smoke`` job does exactly that for ``inline`` vs
``gateway``).
"""

from __future__ import annotations

import dataclasses
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.data import DataSpec
from repro.api.results import (
    SWEEP_RESULT_FORMAT,
    TASK_EXTRACT,
    TASKS,
    RunResult,
    package_version,
)
from repro.api.spec import ExperimentSpec, PrivacySpec
from repro.exceptions import ConfigurationError, DataShapeError

#: Axis expansion order (also the nesting order of the cartesian product):
#: datasets vary slowest, epsilons fastest.
AXIS_ORDER = ("dataset", "mechanism", "alphabet_size", "segment_length",
              "shapelet_count", "shapelet_length", "epsilon")


@dataclass(frozen=True)
class SweepSpec:
    """A serializable grid of experiment points over one base spec."""

    base: ExperimentSpec = field(default_factory=ExperimentSpec)
    task: str = TASK_EXTRACT
    epsilons: tuple[float, ...] = ()
    mechanisms: tuple[str, ...] = ()
    alphabet_sizes: tuple[int, ...] = ()
    segment_lengths: tuple[int, ...] = ()
    shapelet_counts: tuple[int, ...] = ()
    shapelet_lengths: tuple[int, ...] = ()
    datasets: tuple[DataSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise ConfigurationError(
                f"task must be one of {TASKS}, got {self.task!r}"
            )
        object.__setattr__(
            self, "epsilons", tuple(float(e) for e in self.epsilons)
        )
        object.__setattr__(
            self, "mechanisms", tuple(str(m).lower() for m in self.mechanisms)
        )
        object.__setattr__(
            self, "alphabet_sizes", tuple(int(t) for t in self.alphabet_sizes)
        )
        object.__setattr__(
            self, "segment_lengths", tuple(int(w) for w in self.segment_lengths)
        )
        object.__setattr__(
            self, "shapelet_counts", tuple(int(k) for k in self.shapelet_counts)
        )
        object.__setattr__(
            self, "shapelet_lengths", tuple(int(n) for n in self.shapelet_lengths)
        )
        if (self.shapelet_counts or self.shapelet_lengths) and \
                self.task != "shapelet":
            raise ConfigurationError(
                "shapelet_counts / shapelet_lengths axes only apply to "
                f"task 'shapelet', got task {self.task!r}"
            )
        datasets = tuple(
            d if isinstance(d, DataSpec) else DataSpec.from_dict(d)
            for d in self.datasets
        )
        object.__setattr__(self, "datasets", datasets)

    # -------------------------------------------------------------- expansion

    def axes(self) -> dict[str, tuple]:
        """The non-empty axes, keyed by their singular point name."""
        every = {
            "dataset": self.datasets,
            "mechanism": self.mechanisms,
            "alphabet_size": self.alphabet_sizes,
            "segment_length": self.segment_lengths,
            "shapelet_count": self.shapelet_counts,
            "shapelet_length": self.shapelet_lengths,
            "epsilon": self.epsilons,
        }
        return {name: values for name, values in every.items() if values}

    def points(self) -> list[dict[str, Any]]:
        """Every grid point as a dict of axis assignments (base run if empty)."""
        axes = self.axes()
        if not axes:
            return [{}]
        names = [name for name in AXIS_ORDER if name in axes]
        return [
            dict(zip(names, combination))
            for combination in itertools.product(*(axes[name] for name in names))
        ]

    def spec_for(self, point: Mapping[str, Any]) -> ExperimentSpec:
        """The concrete :class:`ExperimentSpec` of one grid point."""
        spec = self.base
        if "mechanism" in point:
            spec = dataclasses.replace(spec, mechanism=str(point["mechanism"]))
        if "epsilon" in point:
            spec = dataclasses.replace(
                spec, privacy=PrivacySpec(epsilon=float(point["epsilon"]))
            )
        sax_updates: dict[str, Any] = {}
        if "alphabet_size" in point:
            sax_updates["alphabet_size"] = int(point["alphabet_size"])
        if "segment_length" in point:
            sax_updates["segment_length"] = int(point["segment_length"])
        if sax_updates:
            spec = dataclasses.replace(
                spec, sax=dataclasses.replace(spec.sax, **sax_updates)
            )
        option_updates: dict[str, Any] = {}
        if "shapelet_count" in point:
            option_updates["n_shapelets"] = int(point["shapelet_count"])
        if "shapelet_length" in point:
            option_updates["shapelet_max_length"] = int(point["shapelet_length"])
        if option_updates:
            spec = dataclasses.replace(
                spec, options={**dict(spec.options), **option_updates}
            )
        return spec

    def __len__(self) -> int:
        return len(self.points())

    # -------------------------------------------------------------- execution

    def run(
        self,
        data=None,
        *,
        backend: str = "inline",
        seed: int | None = None,
        parallel: int = 1,
        **options: Any,
    ) -> "SweepResult":
        """Execute every grid point → :class:`SweepResult`.

        ``data`` is the population every point collects from, unless the
        sweep has a ``datasets`` axis (then each point brings its own).  The
        same master ``seed`` is used at every point, so two sweeps of one
        grid on different backends are comparable point by point.
        ``parallel`` fans points out over a thread pool; results keep grid
        order regardless.
        """
        from repro.api.executors import run_spec

        points = self.points()
        jobs = []
        for point in points:
            point_data = point.get("dataset", data)
            if point_data is None:
                raise ConfigurationError(
                    "sweep has no datasets axis and no data was passed to run()"
                )
            jobs.append((self.spec_for(point), point_data))

        # One realization cache for the whole sweep: grid points that share a
        # DataSpec + SAX parameters (e.g. an epsilon axis) generate and
        # encode the population once, not once per point.  Benign under
        # parallel fan-out: concurrent misses recompute the same value.
        realize_cache: dict = {}

        def run_one(job) -> RunResult:
            spec, point_data = job
            return run_spec(
                spec, point_data, backend=backend, task=self.task, seed=seed,
                cache=realize_cache, **options,
            )

        if parallel > 1:
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=int(parallel)) as pool:
                runs = list(pool.map(run_one, jobs))
        else:
            runs = [run_one(job) for job in jobs]
        return SweepResult(
            sweep=self, backend=backend, seed=seed, runs=runs,
            parallel=int(parallel),
        )

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """Loss-free plain-data form (JSON-serializable)."""
        return {
            "base": self.base.to_dict(),
            "task": self.task,
            "epsilons": list(self.epsilons),
            "mechanisms": list(self.mechanisms),
            "alphabet_sizes": list(self.alphabet_sizes),
            "segment_lengths": list(self.segment_lengths),
            "shapelet_counts": list(self.shapelet_counts),
            "shapelet_lengths": list(self.shapelet_lengths),
            "datasets": [d.to_dict() for d in self.datasets],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Rebuild a sweep spec from :meth:`to_dict` output.

        Unknown keys raise: a typo'd axis name (``epsilon`` for
        ``epsilons``) in a ``--sweep-spec`` file must not silently run a
        different grid.
        """
        data = dict(payload)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SweepSpec fields: {sorted(unknown)}"
            )
        return cls(
            base=ExperimentSpec.from_dict(data.get("base", {})),
            task=str(data.get("task", TASK_EXTRACT)),
            epsilons=tuple(data.get("epsilons", ())),
            mechanisms=tuple(data.get("mechanisms", ())),
            alphabet_sizes=tuple(data.get("alphabet_sizes", ())),
            segment_lengths=tuple(data.get("segment_lengths", ())),
            shapelet_counts=tuple(data.get("shapelet_counts", ())),
            shapelet_lengths=tuple(data.get("shapelet_lengths", ())),
            datasets=tuple(
                DataSpec.from_dict(d) for d in data.get("datasets", ())
            ),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The sweep spec as one JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "SweepSpec":
        """Rebuild a sweep spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))


def _point_payload(point: Mapping[str, Any]) -> dict[str, Any]:
    """One grid point in JSON-serializable form."""
    return {
        name: (value.to_dict() if isinstance(value, DataSpec) else value)
        for name, value in point.items()
    }


@dataclass
class SweepResult:
    """Every grid point's :class:`RunResult`, plus the sweep's provenance."""

    sweep: SweepSpec
    backend: str = "inline"
    seed: int | None = None
    runs: list[RunResult] = field(default_factory=list)
    parallel: int = 1
    repro_version: str = field(default_factory=package_version)

    @property
    def points(self) -> list[dict[str, Any]]:
        """The grid points, aligned with :attr:`runs`."""
        return self.sweep.points()

    def fingerprint(self) -> dict[str, Any]:
        """The deterministic projection of the whole sweep.

        Equal for two sweeps of the same grid under the same master seed, no
        matter which backend (or parallelism) executed them.
        """
        return {
            "sweep": self.sweep.to_dict(),
            "seed": self.seed,
            "runs": [run.fingerprint() for run in self.runs],
        }

    def table(self) -> tuple[list[str], list[list[Any]]]:
        """A printable (headers, rows) view: one row per grid point."""
        axis_names = [
            name for name in AXIS_ORDER if name in self.sweep.axes()
        ]
        metric_names = sorted(
            {name for run in self.runs for name in run.metrics}
        )
        headers = axis_names + ["shapes"] + metric_names
        rows: list[list[Any]] = []
        for point, run in zip(self.points, self.runs):
            cells: list[Any] = []
            for name in axis_names:
                value = point[name]
                cells.append(value.name if isinstance(value, DataSpec) else value)
            cells.append(",".join(run.shapes))
            cells.extend(run.metrics.get(name, float("nan")) for name in metric_names)
            rows.append(cells)
        return headers, rows

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """Loss-free plain-data form (JSON-serializable)."""
        return {
            "format": SWEEP_RESULT_FORMAT,
            "sweep": self.sweep.to_dict(),
            "backend": self.backend,
            "seed": self.seed,
            "parallel": self.parallel,
            "points": [_point_payload(point) for point in self.points],
            "runs": [run.to_dict() for run in self.runs],
            "repro_version": self.repro_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepResult":
        """Rebuild a sweep artifact from :meth:`to_dict` output."""
        data = dict(payload)
        declared = data.get("format", SWEEP_RESULT_FORMAT)
        if declared != SWEEP_RESULT_FORMAT:
            raise DataShapeError(
                f"expected a {SWEEP_RESULT_FORMAT} document, got {declared!r}"
            )
        return cls(
            sweep=SweepSpec.from_dict(data.get("sweep", {})),
            backend=str(data.get("backend", "inline")),
            seed=data.get("seed"),
            runs=[RunResult.from_dict(run) for run in data.get("runs", [])],
            parallel=int(data.get("parallel", 1)),
            repro_version=str(data.get("repro_version", "unknown")),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The sweep artifact as one JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "SweepResult":
        """Rebuild a sweep artifact from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
