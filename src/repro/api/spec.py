"""Composable experiment specifications.

The seed code configured every run through a ``MechanismConfig →
BaselineConfig → PrivShapeConfig`` inheritance chain, and each consumer (the
offline pipelines, the CLI, the federated service) re-assembled its own copy
of the same knobs.  This module splits the monolith into three orthogonal
pieces composed into one :class:`ExperimentSpec`:

* :class:`PrivacySpec` — the user-level budget;
* :class:`SAXSpec` — how raw series become symbolic sequences;
* :class:`CollectionSpec` — what the collection protocol estimates and how
  aggressively it prunes.

An :class:`ExperimentSpec` is plain frozen data with a loss-free
``to_dict``/``from_dict`` (and JSON) round-trip, so one spec can be stored,
shipped to a service, or replayed offline.  The legacy config classes remain
the *engine-facing* parameter objects; :meth:`ExperimentSpec.to_privshape_config`
and :func:`as_privshape_config` bridge the two so every execution path keeps
one source of truth.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from types import MappingProxyType

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.continual.windows import WindowSpec

from repro.core.config import BaselineConfig, MechanismConfig, PrivShapeConfig
from repro.exceptions import ConfigurationError
from repro.sax.breakpoints import symbol_alphabet
from repro.utils.validation import (
    check_epsilon,
    check_open_fraction,
    check_optional_threshold,
    check_population_fractions,
    check_positive_int,
)


@dataclass(frozen=True)
class PrivacySpec:
    """User-level differential-privacy budget of one collection run."""

    epsilon: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "epsilon", check_epsilon(self.epsilon))


@dataclass(frozen=True)
class SAXSpec:
    """How raw time series are symbolized before any mechanism runs."""

    alphabet_size: int = 4
    segment_length: int = 10
    compress: bool = True
    normalize: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "alphabet_size", check_positive_int(self.alphabet_size, "alphabet_size")
        )
        object.__setattr__(
            self,
            "segment_length",
            check_positive_int(self.segment_length, "segment_length"),
        )
        if self.alphabet_size < 2:
            raise ConfigurationError("alphabet_size must be at least 2")

    @property
    def alphabet(self) -> list[str]:
        """The SAX symbols corresponding to :attr:`alphabet_size`."""
        return symbol_alphabet(self.alphabet_size)

    def build_transformer(self):
        """The :class:`~repro.sax.compressive.CompressiveSAX` this spec describes."""
        from repro.sax.compressive import CompressiveSAX

        return CompressiveSAX(
            alphabet_size=self.alphabet_size,
            segment_length=self.segment_length,
            normalize=self.normalize,
            compress=self.compress,
        )


@dataclass(frozen=True)
class CollectionSpec:
    """What the collection protocol estimates and how aggressively it prunes.

    ``top_k=None`` and ``length_high=None`` mean "resolve from the dataset"
    (number of classes / 90th length percentile) — the pipelines fill them in
    via :meth:`ExperimentSpec.resolve` before any engine is built.
    ``oracle`` names the frequency oracle preference for mechanisms that can
    choose one (``"auto"`` picks the minimum-variance oracle analytically,
    see :mod:`repro.api.oracles`).
    """

    top_k: int | None = None
    metric: str = "dtw"
    length_low: int = 1
    length_high: int | None = None
    candidate_factor: int = 3
    population_fractions: tuple[float, float, float, float] = (0.02, 0.08, 0.7, 0.2)
    refinement: bool = True
    postprocess: bool = True
    prune_threshold: float | None = None
    length_population_fraction: float = 0.02
    max_candidates: int = 512
    oracle: str = "auto"

    def __post_init__(self) -> None:
        if self.top_k is not None:
            object.__setattr__(self, "top_k", check_positive_int(self.top_k, "top_k"))
        object.__setattr__(
            self, "length_low", check_positive_int(self.length_low, "length_low")
        )
        if self.length_high is not None:
            object.__setattr__(
                self, "length_high", check_positive_int(self.length_high, "length_high")
            )
            if self.length_low > self.length_high:
                raise ConfigurationError(
                    f"length_low ({self.length_low}) must not exceed "
                    f"length_high ({self.length_high})"
                )
        object.__setattr__(
            self,
            "candidate_factor",
            check_positive_int(self.candidate_factor, "candidate_factor"),
        )
        # Shared with the legacy config classes (repro.core.config) so the
        # two validation surfaces can never drift apart.
        object.__setattr__(
            self,
            "population_fractions",
            check_population_fractions(self.population_fractions),
        )
        object.__setattr__(
            self,
            "length_population_fraction",
            check_open_fraction(
                self.length_population_fraction, "length_population_fraction"
            ),
        )
        object.__setattr__(
            self, "max_candidates", check_positive_int(self.max_candidates, "max_candidates")
        )
        object.__setattr__(
            self,
            "prune_threshold",
            check_optional_threshold(self.prune_threshold, "prune_threshold"),
        )


def _freeze_value(value: Any):
    """A hashable, order-insensitive stand-in for a JSON-like value."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), _freeze_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(v) for v in value)
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, serializable description of an experiment run.

    ``mechanism`` names an entry of the mechanism registry
    (:mod:`repro.api.mechanisms`); ``options`` carries mechanism-specific
    extras (e.g. PatternLDP's ``sample_fraction``) without widening the shared
    surface.
    """

    mechanism: str = "privshape"
    privacy: PrivacySpec = field(default_factory=PrivacySpec)
    sax: SAXSpec = field(default_factory=SAXSpec)
    collection: CollectionSpec = field(default_factory=CollectionSpec)
    options: Mapping[str, Any] = field(default_factory=dict)
    rng_seed: int | None = None
    #: Optional continual-collection schedule: when set, ``run()`` executes the
    #: spec window by window and returns a per-window RunResult sequence.
    windows: "WindowSpec | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "mechanism", str(self.mechanism).lower())
        # A read-only view keeps the frozen promise honest: mutating
        # spec.options[...] raises instead of silently changing a spec that
        # may already have been serialized or used as a cache key.
        object.__setattr__(self, "options", MappingProxyType(dict(self.options)))
        if self.windows is not None and isinstance(self.windows, Mapping):
            # Imported lazily: repro.continual pulls the service stack, which
            # must not load while the core <-> api import cycle resolves.
            from repro.continual.windows import WindowSpec

            object.__setattr__(self, "windows", WindowSpec.from_dict(self.windows))

    def __hash__(self) -> int:
        # MappingProxyType is unhashable, so the generated frozen-dataclass
        # hash would raise; hash a canonical frozen form of the options
        # instead (lists/dicts from a JSON round-trip included).
        return hash(
            (
                self.mechanism,
                self.privacy,
                self.sax,
                self.collection,
                _freeze_value(dict(self.options)),
                self.rng_seed,
                self.windows,
            )
        )

    # -------------------------------------------------- CollectionPlan facade
    # The federated service's CollectionPlan.freeze() reads these four names
    # off a PrivShapeConfig; exposing them here lets a spec be consumed in the
    # exact same way (see repro.service.plan).

    @property
    def epsilon(self) -> float:
        return self.privacy.epsilon

    @property
    def metric(self) -> str:
        return self.collection.metric

    @property
    def alphabet(self) -> list[str]:
        return self.sax.alphabet

    @property
    def population_fractions(self) -> tuple[float, float, float, float]:
        return self.collection.population_fractions

    # ------------------------------------------------------------- resolution

    def resolve(
        self,
        top_k: int | None = None,
        length_high: int | None = None,
        alphabet_size: int | None = None,
    ) -> "ExperimentSpec":
        """A copy with dataset-derived values filled in.

        Values already set on the spec win; the arguments only fill the
        ``None`` slots (and ``alphabet_size`` follows the effective
        transformer when an ablation swaps SAX out).
        """
        collection = self.collection
        updates: dict[str, Any] = {}
        if collection.top_k is None and top_k is not None:
            updates["top_k"] = int(top_k)
        if collection.length_high is None and length_high is not None:
            updates["length_high"] = int(length_high)
        if updates:
            collection = dataclasses.replace(collection, **updates)
        sax = self.sax
        if alphabet_size is not None and alphabet_size != sax.alphabet_size:
            sax = dataclasses.replace(sax, alphabet_size=int(alphabet_size))
        if collection is self.collection and sax is self.sax:
            return self
        return dataclasses.replace(self, collection=collection, sax=sax)

    def _require_concrete(self) -> None:
        if self.collection.top_k is None or self.collection.length_high is None:
            raise ConfigurationError(
                "spec still has unresolved fields (top_k / length_high); call "
                "resolve() with dataset-derived defaults first"
            )

    # --------------------------------------------------------------- execution

    def run(
        self,
        data,
        *,
        backend: str = "inline",
        task: str = "extract",
        seed: int | None = None,
        **options: Any,
    ):
        """Execute this spec on ``data`` with a registered backend.

        The single way to launch work: ``data`` is a
        :class:`~repro.api.data.DataSpec`, a labelled dataset, a population
        source, or a plain sequence list; ``backend`` names an entry of
        :data:`~repro.api.executors.executor_registry` (``inline``,
        ``sharded``, ``gateway``, ``subprocess``, or anything registered).
        Returns a :class:`~repro.api.results.RunResult`; under one master
        ``seed`` every backend returns byte-identical estimates.

        >>> from repro.api import DataSpec, ExperimentSpec
        >>> spec = ExperimentSpec(mechanism="privshape")
        >>> result = spec.run(DataSpec(source="synthetic", n_users=2000), seed=7)
        >>> result.backend
        'inline'
        """
        # Imported lazily: executors pull the service/server stacks, which
        # must not load during the core <-> api import cycle.
        from repro.api.executors import run_spec

        return run_spec(
            self, data, backend=backend, task=task, seed=seed, **options
        )

    def to_privshape_config(self) -> PrivShapeConfig:
        """The engine-facing :class:`PrivShapeConfig` this spec describes."""
        self._require_concrete()
        return PrivShapeConfig(
            epsilon=self.privacy.epsilon,
            top_k=self.collection.top_k,
            alphabet_size=self.sax.alphabet_size,
            metric=self.collection.metric,
            length_low=self.collection.length_low,
            length_high=self.collection.length_high,
            rng_seed=self.rng_seed,
            candidate_factor=self.collection.candidate_factor,
            population_fractions=self.collection.population_fractions,
            refinement=self.collection.refinement,
            postprocess=self.collection.postprocess,
        )

    def to_baseline_config(self) -> BaselineConfig:
        """The engine-facing :class:`BaselineConfig` this spec describes."""
        self._require_concrete()
        return BaselineConfig(
            epsilon=self.privacy.epsilon,
            top_k=self.collection.top_k,
            alphabet_size=self.sax.alphabet_size,
            metric=self.collection.metric,
            length_low=self.collection.length_low,
            length_high=self.collection.length_high,
            rng_seed=self.rng_seed,
            prune_threshold=self.collection.prune_threshold,
            length_population_fraction=self.collection.length_population_fraction,
            max_candidates=self.collection.max_candidates,
        )

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """Loss-free plain-data form (JSON-serializable)."""
        payload = {
            "mechanism": self.mechanism,
            "privacy": dataclasses.asdict(self.privacy),
            "sax": dataclasses.asdict(self.sax),
            "collection": {
                **dataclasses.asdict(self.collection),
                "population_fractions": list(self.collection.population_fractions),
            },
            "options": dict(self.options),
            "rng_seed": self.rng_seed,
        }
        # Emitted only when set: one-shot specs keep their historical document
        # form (and fingerprints) byte for byte.
        if self.windows is not None:
            payload["windows"] = self.windows.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output (missing sections default)."""
        data = dict(payload)
        collection = dict(data.get("collection", {}))
        if "population_fractions" in collection:
            collection["population_fractions"] = tuple(collection["population_fractions"])
        return cls(
            mechanism=data.get("mechanism", "privshape"),
            privacy=PrivacySpec(**data.get("privacy", {})),
            sax=SAXSpec(**data.get("sax", {})),
            collection=CollectionSpec(**collection),
            options=dict(data.get("options", {})),
            rng_seed=data.get("rng_seed"),
            windows=data.get("windows"),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The spec as one JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))

    @classmethod
    def from_config(cls, config: MechanismConfig, mechanism: str | None = None) -> "ExperimentSpec":
        """Lift a legacy config object into the composable spec form."""
        if mechanism is None:
            mechanism = "privshape" if isinstance(config, PrivShapeConfig) else "baseline"
        collection: dict[str, Any] = dict(
            top_k=config.top_k,
            metric=config.metric,
            length_low=config.length_low,
            length_high=config.length_high,
        )
        if isinstance(config, PrivShapeConfig):
            collection.update(
                candidate_factor=config.candidate_factor,
                population_fractions=config.population_fractions,
                refinement=config.refinement,
                postprocess=config.postprocess,
            )
        elif isinstance(config, BaselineConfig):
            collection.update(
                prune_threshold=config.prune_threshold,
                length_population_fraction=config.length_population_fraction,
                max_candidates=config.max_candidates,
            )
        return cls(
            mechanism=mechanism,
            privacy=PrivacySpec(epsilon=config.epsilon),
            sax=SAXSpec(alphabet_size=config.alphabet_size),
            collection=CollectionSpec(**collection),
            rng_seed=config.rng_seed,
        )


def as_privshape_config(obj) -> PrivShapeConfig:
    """Coerce a spec or legacy config into the engine's ``PrivShapeConfig``.

    The protocol engine and the streaming driver accept either form; legacy
    configs pass through untouched so seeded runs stay byte-identical.
    """
    if isinstance(obj, PrivShapeConfig):
        return obj
    if isinstance(obj, ExperimentSpec):
        return obj.to_privshape_config()
    raise ConfigurationError(
        f"expected an ExperimentSpec or PrivShapeConfig, got {type(obj).__name__}"
    )


def as_baseline_config(obj) -> BaselineConfig:
    """Coerce a spec or legacy config into the engine's ``BaselineConfig``."""
    if isinstance(obj, BaselineConfig):
        return obj
    if isinstance(obj, ExperimentSpec):
        return obj.to_baseline_config()
    raise ConfigurationError(
        f"expected an ExperimentSpec or BaselineConfig, got {type(obj).__name__}"
    )
