"""Mechanism registry: one extensible dispatch surface for every mechanism.

The paper's evaluation compares a growing family of mechanisms; the seed code
hard-coded three of them in an ``if/elif`` ladder duplicated across the
pipelines and the CLI, leaving the implemented PEM and PID baselines
unreachable.  This module mirrors the proven distance-registry pattern:
every mechanism registers a :class:`MechanismEntry` naming its *family* and a
factory from a resolved :class:`~repro.api.spec.ExperimentSpec`:

* ``extraction`` mechanisms implement the :class:`ShapeMechanism` protocol —
  they consume symbolized sequences and return
  :class:`~repro.core.results.ShapeExtractionResult` /
  :class:`~repro.core.results.LabeledShapeExtractionResult`;
* ``perturbation`` mechanisms implement :class:`SeriesPerturber` — they
  privatize raw series that downstream models (KMeans, random forest)
  consume.

``run_clustering_task`` / ``run_classification_task``, ``repro.cli``, and the
federated service driver all dispatch through :data:`mechanism_registry`, so
registering a new mechanism here makes it reachable everywhere at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, runtime_checkable

from repro.api.registry import Registry
from repro.api.spec import ExperimentSpec
from repro.baselines.patternldp import PatternLDP, PIDPerturbation
from repro.baselines.pem import PrefixExtendingMiner
from repro.core.baseline import BaselineMechanism
from repro.core.length import estimate_frequent_length
from repro.core.privshape import PrivShape
from repro.core.refinement import assign_candidates_to_classes
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.selection import oue_labeled_refine_counts
from repro.core.trie import Shape, ShapeTrie
from repro.exceptions import EmptyDatasetError
from repro.ldp.accounting import PrivacyAccountant
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sequences import split_population

#: Mechanism families: what a mechanism consumes and produces.
KIND_EXTRACTION = "extraction"
KIND_PERTURBATION = "perturbation"


@runtime_checkable
class ShapeMechanism(Protocol):
    """An extraction mechanism: symbolized sequences in, frequent shapes out."""

    def extract(
        self, sequences: Sequence[Shape], rng: RngLike = None
    ) -> ShapeExtractionResult: ...

    def extract_labeled(
        self,
        sequences: Sequence[Shape],
        labels: Sequence[int],
        n_classes: int | None = None,
        rng: RngLike = None,
    ) -> LabeledShapeExtractionResult: ...


@runtime_checkable
class SeriesPerturber(Protocol):
    """A perturbation mechanism: raw series in, privatized series out."""

    def perturb_dataset(self, dataset: Sequence, rng: RngLike = None) -> list: ...


@dataclass(frozen=True)
class MechanismEntry:
    """One registered mechanism: its family and spec-consuming factory."""

    name: str
    kind: str
    factory: Callable[[ExperimentSpec], object]
    description: str = ""

    def build(self, spec: ExperimentSpec):
        """Instantiate the mechanism for a resolved spec."""
        return self.factory(spec)


mechanism_registry: Registry[MechanismEntry] = Registry("mechanism")


def register_mechanism(
    name: str, kind: str, description: str = ""
) -> Callable[[Callable[[ExperimentSpec], object]], Callable[[ExperimentSpec], object]]:
    """Register a mechanism factory under ``name`` with the given family."""
    if kind not in (KIND_EXTRACTION, KIND_PERTURBATION):
        raise ValueError(f"kind must be 'extraction' or 'perturbation', got {kind!r}")

    def decorate(factory: Callable[[ExperimentSpec], object]):
        mechanism_registry.add(
            name, MechanismEntry(name=name, kind=kind, factory=factory,
                                 description=description)
        )
        return factory

    return decorate


def available_mechanisms(kind: str | None = None) -> tuple[str, ...]:
    """Registered mechanism names, optionally filtered to one family."""
    names = mechanism_registry.names()
    if kind is None:
        return names
    return tuple(
        name for name in names if mechanism_registry.get(name).kind == kind
    )


# --------------------------------------------------------------- PEM adapter


@dataclass
class PEMExtractor:
    """PEM lifted to the :class:`ShapeMechanism` protocol.

    The raw :class:`~repro.baselines.pem.PrefixExtendingMiner` mines prefixes
    of one declared length; a full extraction mechanism must also estimate
    that length privately and account for every group's budget.  This adapter
    follows the paper's population-splitting discipline: a small group Pa
    estimates the frequent length with GRR, the remaining users are PEM's
    per-round groups, and (for the classification task) a held-out fifth
    jointly reports (candidate, label) through OUE exactly like the baseline
    mechanism does.
    """

    epsilon: float = 1.0
    top_k: int = 3
    alphabet: tuple[str, ...] = ("a", "b", "c", "d")
    metric: str = "sed"
    length_low: int = 1
    length_high: int = 10
    candidate_factor: int = 3
    symbols_per_round: int = 1
    oracle: str = "auto"
    length_population_fraction: float = 0.02
    rng_seed: int | None = None

    def __post_init__(self) -> None:
        self.alphabet = tuple(self.alphabet)

    @classmethod
    def from_spec(cls, spec: ExperimentSpec) -> "PEMExtractor":
        collection = spec.collection
        return cls(
            epsilon=spec.privacy.epsilon,
            top_k=collection.top_k if collection.top_k is not None else 3,
            alphabet=tuple(spec.sax.alphabet),
            metric=collection.metric,
            length_low=collection.length_low,
            length_high=collection.length_high if collection.length_high is not None else 10,
            candidate_factor=collection.candidate_factor,
            symbols_per_round=int(spec.options.get("symbols_per_round", 1)),
            oracle=collection.oracle,
            length_population_fraction=collection.length_population_fraction,
            rng_seed=spec.rng_seed,
        )

    @property
    def candidate_budget(self) -> int:
        """``c·k`` candidates carried through mining, as in PrivShape."""
        return self.candidate_factor * self.top_k

    def _mine(
        self, sequences: list[Shape], generator
    ) -> tuple[list[Shape], dict[Shape, float], int, PrivacyAccountant]:
        """Shared core: length estimation + prefix mining with accounting.

        Pa and the per-round PEM groups are disjoint, so every user reports
        exactly once at full ε.  Populations too small to fill every group
        (fewer than ``1 / length_population_fraction`` users) raise
        :class:`~repro.exceptions.EstimationError` rather than silently
        reusing users — the same behaviour as the baseline mechanism.
        """
        accountant = PrivacyAccountant(target_epsilon=self.epsilon)
        fraction_a = self.length_population_fraction
        population_a, population_b = split_population(
            len(sequences), [fraction_a, 1.0 - fraction_a], rng=generator
        )
        estimated_length = estimate_frequent_length(
            [len(sequences[i]) for i in population_a],
            epsilon=self.epsilon,
            length_low=self.length_low,
            length_high=self.length_high,
            rng=generator,
        )
        accountant.spend("Pa", self.epsilon, mechanism="GRR length estimation")

        miner = PrefixExtendingMiner(
            epsilon=self.epsilon,
            alphabet=self.alphabet,
            target_length=max(estimated_length, 1),
            top_k=self.candidate_budget,
            symbols_per_round=self.symbols_per_round,
            oracle=self.oracle,
        )
        candidates = miner.mine([sequences[i] for i in population_b], rng=generator)
        for round_index, oracle_name in enumerate(miner.round_oracles_):
            accountant.spend(
                f"Pb[round {round_index}]",
                self.epsilon,
                mechanism=f"{oracle_name.upper()} prefix-frequency oracle",
            )
        return candidates, dict(miner.estimates_), estimated_length, accountant

    def _build_trie(self, estimates: dict[Shape, float]) -> ShapeTrie:
        trie = ShapeTrie(self.alphabet)
        for shape, count in estimates.items():
            if shape:
                trie.set_frequency(shape, count)
        return trie

    def extract(
        self, sequences: Sequence[Shape], rng: RngLike = None
    ) -> ShapeExtractionResult:
        """Extract the top-k frequent shapes from users' compressed sequences."""
        sequences = [tuple(s) for s in sequences]
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        generator = ensure_rng(rng if rng is not None else self.rng_seed)
        candidates, estimates, estimated_length, accountant = self._mine(
            sequences, generator
        )
        ranked = sorted(
            candidates, key=lambda shape: (-estimates.get(shape, 0.0), shape)
        )[: self.top_k]
        return ShapeExtractionResult(
            shapes=ranked,
            frequencies=[estimates.get(shape, 0.0) for shape in ranked],
            estimated_length=estimated_length,
            trie=self._build_trie(estimates),
            accountant=accountant,
        )

    def extract_labeled(
        self,
        sequences: Sequence[Shape],
        labels: Sequence[int],
        n_classes: int | None = None,
        rng: RngLike = None,
    ) -> LabeledShapeExtractionResult:
        """Per-class frequent shapes: PEM candidates + OUE labelled refinement."""
        sequences = [tuple(s) for s in sequences]
        labels = [int(label) for label in labels]
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must have the same length")
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        if n_classes is None:
            n_classes = int(max(labels)) + 1
        generator = ensure_rng(rng if rng is not None else self.rng_seed)

        # Hold out a fifth of the users for the labelled (candidate, class)
        # OUE report; mine candidates from the rest (same split discipline as
        # BaselineMechanism.extract_labeled).  A population too small to fill
        # both groups raises from _mine instead of reusing users.
        indices = generator.permutation(len(sequences))
        n_labelled = max(len(sequences) // 5, 1)
        labelled_indices = indices[:n_labelled]
        mining_indices = indices[n_labelled:]

        candidates, estimates, estimated_length, accountant = self._mine(
            [sequences[i] for i in mining_indices], generator
        )
        if not candidates:
            candidates = [tuple(self.alphabet[:1])]
        per_class_counts = oue_labeled_refine_counts(
            [sequences[i] for i in labelled_indices],
            [labels[i] for i in labelled_indices],
            candidates,
            n_classes=n_classes,
            epsilon=self.epsilon,
            metric=self.metric,
            alphabet_size=len(self.alphabet),
            rng=generator,
        )
        accountant.spend("Pd", self.epsilon, mechanism="OUE labelled refinement")
        shapes_by_class, frequencies_by_class = assign_candidates_to_classes(
            per_class_counts, top_k=self.top_k
        )
        return LabeledShapeExtractionResult(
            shapes_by_class=shapes_by_class,
            frequencies_by_class=frequencies_by_class,
            estimated_length=estimated_length,
            trie=self._build_trie(estimates),
            accountant=accountant,
        )


# ------------------------------------------------------------- registrations


@register_mechanism(
    "privshape", KIND_EXTRACTION,
    "PrivShape (Algorithm 2): sub-shape pruning + two-level refinement",
)
def _build_privshape(spec: ExperimentSpec) -> ShapeMechanism:
    return PrivShape(spec.to_privshape_config())


@register_mechanism(
    "baseline", KIND_EXTRACTION,
    "Trie baseline (Algorithm 1): threshold pruning, EM selection",
)
def _build_baseline(spec: ExperimentSpec) -> ShapeMechanism:
    return BaselineMechanism(spec.to_baseline_config())


@register_mechanism(
    "pem", KIND_EXTRACTION,
    "Prefix Extending Method with a per-round frequency oracle",
)
def _build_pem(spec: ExperimentSpec) -> ShapeMechanism:
    return PEMExtractor.from_spec(spec)


@register_mechanism(
    "patternldp", KIND_PERTURBATION,
    "PatternLDP: PID sampling + importance-weighted budget allocation",
)
def _build_patternldp(spec: ExperimentSpec) -> SeriesPerturber:
    return PatternLDP(
        epsilon=spec.privacy.epsilon,
        sample_fraction=float(spec.options.get("sample_fraction", 0.1)),
        min_points=int(spec.options.get("min_points", 8)),
        perturbation=str(spec.options.get("perturbation", "piecewise")),
    )


@register_mechanism(
    "pid", KIND_PERTURBATION,
    "PID sampling with uniform budget allocation (PatternLDP ablation)",
)
def _build_pid(spec: ExperimentSpec) -> SeriesPerturber:
    return PIDPerturbation(
        epsilon=spec.privacy.epsilon,
        sample_fraction=float(spec.options.get("sample_fraction", 0.1)),
        min_points=int(spec.options.get("min_points", 8)),
        perturbation=str(spec.options.get("perturbation", "piecewise")),
    )
