"""A small name → entry registry shared by the experiment API.

The library already proved this pattern out for distance metrics
(:mod:`repro.distance.registry`); :class:`Registry` generalizes it so the
mechanism and frequency-oracle surfaces stop hand-maintaining parallel name
tuples in the pipelines and the CLI.  A registry is an ordered mapping from a
lower-cased name to an arbitrary entry object, with uniform error reporting
for unknown or duplicate names.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

from repro.exceptions import ConfigurationError

E = TypeVar("E")


class Registry(Generic[E]):
    """Ordered name → entry mapping with uniform unknown-name errors.

    Parameters
    ----------
    kind:
        Human-readable label of what the registry holds ("mechanism",
        "frequency oracle", ...); used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, E] = {}

    def add(self, name: str, entry: E, *, overwrite: bool = False) -> E:
        """Register ``entry`` under ``name`` (case-insensitive).

        Re-registering an existing name raises unless ``overwrite=True`` —
        accidental shadowing of a built-in is almost always a bug, while
        deliberate replacement (e.g. a test double) stays possible.
        """
        key = name.lower()
        if key in self._entries and not overwrite:
            raise ConfigurationError(
                f"{self.kind} {name!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[key] = entry
        return entry

    def get(self, name: str) -> E:
        """Look up an entry by name, raising a helpful error when unknown."""
        try:
            return self._entries[name.lower()]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; available: {self.names()}"
            ) from None

    def remove(self, name: str) -> E:
        """Unregister and return an entry (unknown names raise the usual error)."""
        entry = self.get(name)
        del self._entries[name.lower()]
        return entry

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def __contains__(self, name: str) -> bool:
        return isinstance(name, str) and name.lower() in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def register(self, name: str, **attrs) -> Callable:
        """Decorator form of :meth:`add` for entry types built from a callable.

        Sub-surfaces that need richer entries (the mechanism registry wraps
        factories in an entry dataclass) define their own decorators on top of
        :meth:`add`; this plain form registers the decorated callable itself.
        """

        def decorate(obj):
            self.add(name, obj, **attrs)
            return obj

        return decorate
