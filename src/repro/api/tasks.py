"""The task registry: named downstream workloads behind ``run(task=...)``.

Historically ``run_spec`` validated ``task`` against a hard-coded tuple and
dispatched through if/elif chains in both the executors and the CLI.  The
registry replaces the tuple: each task registers *what it needs* (labelled
data? every backend, or inline-only?) and *which run-time options it
understands*, and the dispatch layers read those properties instead of
special-casing names.  Downstream packages (``repro.tasks``) register their
workloads here, which is how ``task="shapelet"`` reaches
``ExperimentSpec.run`` and ``repro run --task shapelet`` without the api
layer knowing its internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import Registry
from repro.api.results import TASK_CLASSIFY, TASK_CLUSTER, TASK_EXTRACT, TASK_SHAPELET


@dataclass(frozen=True)
class TaskEntry:
    """One registered task.

    Attributes
    ----------
    name:
        Registry key, also the ``RunResult.task`` value.
    description:
        One-line summary for ``--help`` style listings.
    needs_labels:
        Whether the task scores against class labels (and therefore requires
        a labelled data source).
    all_backends:
        ``True`` when the task runs on every registered execution backend
        with fingerprint equivalence; ``False`` restricts it to the inline
        pipeline (plus the ``subprocess`` forwarder, which replays the same
        inline path in a child).
    options:
        Extra run-time option names this task accepts on top of the
        backend's own options.
    """

    name: str
    description: str
    needs_labels: bool = False
    all_backends: bool = True
    options: tuple[str, ...] = field(default_factory=tuple)


task_registry: Registry[TaskEntry] = Registry("task")


def register_task(entry: TaskEntry, *, overwrite: bool = False) -> TaskEntry:
    """Register a task entry under its own name."""
    return task_registry.add(entry.name, entry, overwrite=overwrite)


def available_tasks() -> tuple[str, ...]:
    """Names of all registered tasks, in registration order."""
    return task_registry.names()


register_task(
    TaskEntry(
        name=TASK_EXTRACT,
        description="PrivShape extraction: frequent shapes with estimated counts",
    )
)
register_task(
    TaskEntry(
        name=TASK_CLUSTER,
        description="Table-V clustering over extracted shapes (ARI)",
        needs_labels=True,
        all_backends=False,
        options=("evaluation_size",),
    )
)
register_task(
    TaskEntry(
        name=TASK_CLASSIFY,
        description="Table-V nearest-shape classification (accuracy)",
        needs_labels=True,
        all_backends=False,
        options=("evaluation_size",),
    )
)
register_task(
    TaskEntry(
        name=TASK_SHAPELET,
        description=(
            "shapelet discovery/transform/classification over extracted shapes"
        ),
        needs_labels=True,
        options=("evaluation_size",),
    )
)
