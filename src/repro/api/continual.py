"""Per-window :class:`RunResult` sequences from continual collection runs.

A one-shot spec executes to a single :class:`~repro.api.results.RunResult`;
a spec carrying a :class:`~repro.continual.windows.WindowSpec` executes to a
*sequence* of them — one per closed window record (a drift-triggered
re-extraction closes the same window index twice: the rejected refresh
probe, then the authoritative ``final`` full run).  :func:`run_windows` is
the dispatch behind ``spec.run(...)`` for windowed specs; it hosts the same
:class:`~repro.continual.engine.WindowController` on the requested backend
(``inline``, ``gateway``, or ``cluster``) and converts its plain window
payloads — which are byte-identical across backends under one master seed —
into :class:`RunResult` artifacts whose fingerprint sequences diff cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.results import RUN_RESULT_FORMAT, TASK_EXTRACT, RunResult
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

#: Format tag of a serialized run sequence.
RUN_SEQUENCE_FORMAT = "repro.run_sequence/v1"

#: Backends able to host a window controller.
WINDOW_BACKENDS = ("inline", "gateway", "cluster")

#: Option names each windowed backend accepts (anything else raises).
_WINDOW_OPTIONS = {
    "inline": ("batch_size", "shards"),
    "gateway": ("batch_size", "shards", "workers", "queue_depth", "mp_context"),
    "cluster": ("batch_size", "workers", "queue_depth", "checkpoint_every",
                "loadgen_workers", "mp_context"),
}


def window_run_result(
    spec: ExperimentSpec,
    payload: Mapping[str, Any],
    *,
    backend: str,
    master_seed: int | None = None,
    data: Mapping[str, Any] | None = None,
) -> RunResult:
    """One closed-window payload as a canonical :class:`RunResult`.

    The fingerprint fields come straight from the controller payload (seed =
    the window's derived ticket seed, estimates, accounting, and the window
    coordinates folded into ``data``); drift telemetry and the window's
    epsilon land in ``details``, which fingerprints exclude.
    """
    estimates = [
        {"shape": shape, "estimated_count": float(count)}
        for shape, count in zip(payload["shapes"], payload["frequencies"])
    ]
    window_data = {
        **(dict(data) if data else {}),
        "window": int(payload["window"]),
        "attempt": int(payload["attempt"]),
        "mode": str(payload["mode"]),
        "start": int(payload["start"]),
        "stop": int(payload["stop"]),
        "final": bool(payload["final"]),
    }
    return RunResult(
        task=TASK_EXTRACT,
        spec=spec,
        backend=backend,
        seed=int(payload["seed"]),
        estimates=estimates,
        estimated_length=payload.get("estimated_length"),
        accounting=dict(payload.get("accounting", {})),
        data=window_data,
        details={
            "window_epsilon": payload.get("epsilon"),
            "drift": payload.get("drift"),
            "master_seed": master_seed,
        },
    )


@dataclass
class RunSequence:
    """Every closed window of one continual run, in execution order.

    Iterates like a list of :class:`RunResult`; ``continual`` carries the
    run-level master accounting (per-window ledger, user-level epsilon views)
    plus the base seed and backend provenance.
    """

    results: list[RunResult] = field(default_factory=list)
    continual: dict[str, Any] = field(default_factory=dict)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def final_results(self) -> list[RunResult]:
        """The authoritative record of each window index (probes excluded)."""
        return [r for r in self.results if r.data.get("final")]

    def fingerprints(self) -> list[dict[str, Any]]:
        """The deterministic projection, window by window.

        Two continual runs of the same windowed spec on the same stream under
        the same master seed must produce equal fingerprint sequences no
        matter which backend executed them.
        """
        return [result.fingerprint() for result in self.results]

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": RUN_SEQUENCE_FORMAT,
            "results": [result.to_dict() for result in self.results],
            "continual": dict(self.continual),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunSequence":
        declared = payload.get("format", RUN_SEQUENCE_FORMAT)
        if declared != RUN_SEQUENCE_FORMAT:
            raise ConfigurationError(
                f"expected a {RUN_SEQUENCE_FORMAT} document, got {declared!r}"
            )
        return cls(
            results=[
                RunResult.from_dict({**r, "format": RUN_RESULT_FORMAT})
                for r in payload.get("results", [])
            ],
            continual=dict(payload.get("continual", {})),
        )


def run_windows(
    spec: ExperimentSpec,
    data,
    *,
    backend: str = "inline",
    seed: int | None = None,
    cache: dict | None = None,
    **options: Any,
) -> RunSequence:
    """Execute a windowed spec on ``data`` → a per-window :class:`RunSequence`.

    ``backend`` must be able to host the window controller: ``inline`` runs
    :class:`~repro.continual.engine.ContinualEngine` in-process, ``gateway``
    boots a windowed :class:`~repro.server.gateway.CollectionGateway` on an
    ephemeral port, ``cluster`` a windowed coordinator/worker topology.  All
    three return byte-identical window payloads under one master ``seed``.

    ``telemetry=True`` runs the controller under a recording tracer/profiler
    and attaches its summary as ``sequence.continual["telemetry"]``;
    ``trace="out.json"`` additionally writes the spans as Chrome-trace JSON.
    Wall-clock only — window payloads and fingerprints are unchanged.
    """
    # Imported lazily for the same reason as ExperimentSpec.run: executors
    # pull the service/server stacks.
    from repro.api.data import DataSpec
    from repro.api.executors import _coerce_population

    telemetry_enabled = bool(options.pop("telemetry", False))
    trace_path = options.pop("trace", None)
    if spec.windows is None:
        raise ConfigurationError(
            "run_windows needs a windowed spec; set ExperimentSpec.windows to "
            "a repro.continual.WindowSpec"
        )
    if backend not in WINDOW_BACKENDS:
        raise ConfigurationError(
            f"backend {backend!r} cannot host a window controller; windowed "
            f"specs run on one of {WINDOW_BACKENDS}"
        )
    known = _WINDOW_OPTIONS[backend]
    unknown = set(options) - set(known) - {"task"}
    if unknown:
        raise ConfigurationError(
            f"unknown or inert option(s) {sorted(unknown)} for windowed "
            f"backend {backend!r}; accepted: {sorted(known)}"
        )
    if spec.mechanism != "privshape":
        raise ConfigurationError(
            "continual collection streams through the round-based PrivShape "
            f"protocol and cannot run mechanism {spec.mechanism!r}"
        )
    realized = _coerce_population(spec, data, cache)
    realized.spec._require_concrete()
    rspec = realized.spec
    population = realized.population
    config = rspec.to_privshape_config()
    batch_size = int(options.get("batch_size", 8192))
    data_desc = data.describe() if isinstance(data, DataSpec) else {}
    started = time.perf_counter()

    telemetry: dict[str, Any] | None = None
    if telemetry_enabled or trace_path is not None:
        from repro.obs import capture

        with capture() as cap:
            payloads, accounting, base_seed, info = _execute_windows(
                backend, config, rspec, population, batch_size, seed, options
            )
        telemetry = cap.summary()
        if trace_path is not None:
            cap.write_chrome_trace(str(trace_path))
    else:
        payloads, accounting, base_seed, info = _execute_windows(
            backend, config, rspec, population, batch_size, seed, options
        )

    results = [
        window_run_result(
            rspec, payload, backend=backend, master_seed=seed, data=data_desc
        )
        for payload in payloads
    ]
    continual: dict[str, Any] = {
        "accounting": dict(accounting),
        "base_seed": base_seed,
        "backend": backend,
        "n_windows": len({r.data["window"] for r in results}),
        "elapsed_seconds": time.perf_counter() - started,
        **info,
    }
    if telemetry is not None:
        continual["telemetry"] = telemetry
    return RunSequence(results=results, continual=continual)


def _execute_windows(
    backend: str,
    config,
    rspec: ExperimentSpec,
    population,
    batch_size: int,
    seed: int | None,
    options: dict[str, Any],
) -> tuple[list, dict, Any, dict[str, Any]]:
    """Host the window controller on one backend → (payloads, accounting,
    base_seed, backend info)."""
    if backend == "inline":
        from repro.continual.engine import ContinualEngine

        outcome = ContinualEngine(
            config,
            rspec.windows,
            population,
            batch_size=batch_size,
            n_shards=int(options.get("shards", 1)),
            seed=seed,
        ).run()
        payloads = outcome.windows
        accounting = outcome.accounting
        base_seed = outcome.base_seed
        info: dict[str, Any] = {"window_seconds": list(outcome.timings)}
    elif backend == "gateway":
        from repro.server.gateway import CollectionGateway
        from repro.server.loadgen import run_window_loadgen
        from repro.server.testing import serve_in_thread

        gateway = CollectionGateway(
            config,
            rng=seed,
            n_shards=int(options.get("shards", 1)),
            queue_depth=int(options.get("queue_depth", 64)),
            windows=rspec.windows,
            n_users=int(population.n_users),
        )
        with serve_in_thread(gateway) as handle:
            stats = run_window_loadgen(
                handle.host,
                handle.port,
                population,
                batch_size=batch_size,
                workers=int(options.get("workers", 0)),
                mp_context=str(options.get("mp_context", "spawn")),
            )
        served = stats.result or {}
        payloads = served.get("windows", [])
        accounting = served.get("accounting", {})
        base_seed = served.get("base_seed")
        info = {
            "total_reports": stats.total_reports,
            "server_status": stats.server_status,
        }
    else:  # cluster
        from repro.cluster.loadgen import run_window_cluster_loadgen
        from repro.cluster.testing import launch_cluster

        with launch_cluster(
            config,
            n_users=int(population.n_users),
            n_workers=int(options.get("workers", 2)),
            rng=seed,
            windows=rspec.windows,
            queue_depth=int(options.get("queue_depth", 64)),
            checkpoint_every=int(options.get("checkpoint_every", 16)),
            mp_context=str(options.get("mp_context", "spawn")),
        ) as cluster:
            stats = run_window_cluster_loadgen(
                cluster.host,
                cluster.port,
                population,
                batch_size=batch_size,
                workers=int(options.get("loadgen_workers", 0)),
                mp_context=str(options.get("mp_context", "spawn")),
            )
            restarts = cluster.supervisor.restarts
        served = stats.result or {}
        payloads = served.get("windows", [])
        accounting = served.get("accounting", {})
        base_seed = served.get("base_seed")
        info = {
            "total_reports": stats.total_reports,
            "restarts": restarts,
            "server_status": stats.server_status,
        }

    return payloads, accounting, base_seed, info
