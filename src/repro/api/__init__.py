"""The experiment API: registries, composable specs, and unified execution.

This package is the one way to *describe*, *dispatch*, and *execute* an
experiment:

* :mod:`repro.api.spec` — :class:`PrivacySpec` / :class:`SAXSpec` /
  :class:`CollectionSpec` composed into a serializable
  :class:`ExperimentSpec`, consumed identically by the offline pipelines,
  the CLI, and the federated collection service;
* :mod:`repro.api.mechanisms` — the mechanism registry behind
  ``run_clustering_task(..., mechanism=...)`` and ``repro.cli``
  (``privshape``, ``baseline``, ``patternldp``, ``pem``, ``pid``, plus
  anything you register);
* :mod:`repro.api.oracles` — the frequency-oracle registry with analytic
  ``oracle="auto"`` selection from the closed-form variances;
* :mod:`repro.api.executors` — the execution-backend registry behind
  :meth:`ExperimentSpec.run` (``inline``, ``sharded``, ``gateway``,
  ``subprocess``), all byte-identical under one master seed;
* :mod:`repro.api.data` / :mod:`repro.api.sweep` — serializable population
  descriptions and grid sweeps over eps/mechanism/dataset/SAX axes;
* :mod:`repro.api.tasks` — the task registry behind ``run(task=...)``
  (``extract``, ``cluster``, ``classify``, ``shapelet``); downstream
  workloads in :mod:`repro.tasks` register here;
* :mod:`repro.api.results` — the structured :class:`RunResult` /
  :class:`SweepResult` artifacts every execution path returns.

>>> from repro.api import DataSpec, ExperimentSpec, PrivacySpec
>>> spec = ExperimentSpec(mechanism="pem", privacy=PrivacySpec(epsilon=2.0))
>>> spec == ExperimentSpec.from_json(spec.to_json())
True
>>> result = ExperimentSpec().run(DataSpec(n_users=1500), seed=0)
>>> result.shapes == ExperimentSpec().run(
...     DataSpec(n_users=1500), backend="inline", seed=0).shapes
True
"""

from repro.api.mechanisms import (
    KIND_EXTRACTION,
    KIND_PERTURBATION,
    MechanismEntry,
    PEMExtractor,
    SeriesPerturber,
    ShapeMechanism,
    available_mechanisms,
    mechanism_registry,
    register_mechanism,
)
from repro.api.oracles import (
    OracleEntry,
    available_oracles,
    make_frequency_oracle,
    oracle_registry,
    oracle_variances,
    register_oracle,
    select_frequency_oracle,
)
from repro.api.registry import Registry
from repro.api.spec import (
    CollectionSpec,
    ExperimentSpec,
    PrivacySpec,
    SAXSpec,
    as_baseline_config,
    as_privshape_config,
)
from repro.api.continual import RunSequence, run_windows, window_run_result
from repro.api.data import DataSpec
from repro.api.results import (
    TASK_CLASSIFY,
    TASK_CLUSTER,
    TASK_EXTRACT,
    TASK_SHAPELET,
    TASKS,
    RunResult,
)
from repro.api.tasks import (
    TaskEntry,
    available_tasks,
    register_task,
    task_registry,
)
from repro.api.executors import (
    ExecutionRequest,
    Executor,
    ExecutorEntry,
    available_executors,
    executor_registry,
    register_executor,
    run_spec,
)
from repro.api.sweep import SweepResult, SweepSpec

__all__ = [
    "Registry",
    "ExperimentSpec",
    "PrivacySpec",
    "SAXSpec",
    "CollectionSpec",
    "DataSpec",
    "RunResult",
    "RunSequence",
    "run_windows",
    "window_run_result",
    "SweepSpec",
    "SweepResult",
    "run_spec",
    "TASKS",
    "TASK_EXTRACT",
    "TASK_CLUSTER",
    "TASK_CLASSIFY",
    "TASK_SHAPELET",
    "TaskEntry",
    "task_registry",
    "register_task",
    "available_tasks",
    "executor_registry",
    "register_executor",
    "available_executors",
    "Executor",
    "ExecutorEntry",
    "ExecutionRequest",
    "as_privshape_config",
    "as_baseline_config",
    "mechanism_registry",
    "register_mechanism",
    "available_mechanisms",
    "MechanismEntry",
    "ShapeMechanism",
    "SeriesPerturber",
    "PEMExtractor",
    "KIND_EXTRACTION",
    "KIND_PERTURBATION",
    "oracle_registry",
    "register_oracle",
    "available_oracles",
    "make_frequency_oracle",
    "select_frequency_oracle",
    "oracle_variances",
    "OracleEntry",
]
