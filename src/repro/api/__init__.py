"""The experiment API: registries and composable specs.

This package is the one way to *describe* and *dispatch* an experiment:

* :mod:`repro.api.spec` — :class:`PrivacySpec` / :class:`SAXSpec` /
  :class:`CollectionSpec` composed into a serializable
  :class:`ExperimentSpec`, consumed identically by the offline pipelines,
  the CLI, and the federated collection service;
* :mod:`repro.api.mechanisms` — the mechanism registry behind
  ``run_clustering_task(..., mechanism=...)`` and ``repro.cli``
  (``privshape``, ``baseline``, ``patternldp``, ``pem``, ``pid``, plus
  anything you register);
* :mod:`repro.api.oracles` — the frequency-oracle registry with analytic
  ``oracle="auto"`` selection from the closed-form variances.

>>> from repro.api import ExperimentSpec, PrivacySpec, mechanism_registry
>>> spec = ExperimentSpec(mechanism="pem", privacy=PrivacySpec(epsilon=2.0))
>>> spec == ExperimentSpec.from_json(spec.to_json())
True
>>> "pem" in mechanism_registry
True
"""

from repro.api.mechanisms import (
    KIND_EXTRACTION,
    KIND_PERTURBATION,
    MechanismEntry,
    PEMExtractor,
    SeriesPerturber,
    ShapeMechanism,
    available_mechanisms,
    mechanism_registry,
    register_mechanism,
)
from repro.api.oracles import (
    OracleEntry,
    available_oracles,
    make_frequency_oracle,
    oracle_registry,
    oracle_variances,
    register_oracle,
    select_frequency_oracle,
)
from repro.api.registry import Registry
from repro.api.spec import (
    CollectionSpec,
    ExperimentSpec,
    PrivacySpec,
    SAXSpec,
    as_baseline_config,
    as_privshape_config,
)

__all__ = [
    "Registry",
    "ExperimentSpec",
    "PrivacySpec",
    "SAXSpec",
    "CollectionSpec",
    "as_privshape_config",
    "as_baseline_config",
    "mechanism_registry",
    "register_mechanism",
    "available_mechanisms",
    "MechanismEntry",
    "ShapeMechanism",
    "SeriesPerturber",
    "PEMExtractor",
    "KIND_EXTRACTION",
    "KIND_PERTURBATION",
    "oracle_registry",
    "register_oracle",
    "available_oracles",
    "make_frequency_oracle",
    "select_frequency_oracle",
    "oracle_variances",
    "OracleEntry",
]
