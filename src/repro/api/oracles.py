"""Frequency-oracle registry with analytic ``"auto"`` selection.

The LDP substrate implements several frequency oracles over the shared
:class:`~repro.ldp.base.FrequencyOracle` ABC (GRR, OUE, SUE, OLH); call
sites used to hard-code one.  This module gives every oracle a name, a
factory, and its closed-form per-item count variance
(:mod:`repro.analysis.variance`), so a caller can write ``oracle="auto"``
and get the variance-optimal oracle for its (ε, domain size) — the exact
trade-off Theorem 4 of the paper reasons about for the sub-shape domain
``t·(t-1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from repro.analysis.variance import (
    grr_variance,
    olh_variance,
    oue_variance,
    sue_variance,
)
from repro.api.registry import Registry
from repro.ldp.base import FrequencyOracle
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.unary import UnaryEncoding

#: Name under which automatic selection is requested.
AUTO = "auto"

#: Closed-form per-item count variance: ``(epsilon, domain_size, n) -> float``.
VarianceFn = Callable[[float, int, int], float]
OracleFactory = Callable[[float, Sequence[Hashable]], FrequencyOracle]


@dataclass(frozen=True)
class OracleEntry:
    """One registered frequency oracle: its factory and analytic variance."""

    name: str
    factory: OracleFactory
    variance: VarianceFn
    description: str = ""


oracle_registry: Registry[OracleEntry] = Registry("frequency oracle")


def register_oracle(
    name: str, variance: VarianceFn, description: str = ""
) -> Callable[[OracleFactory], OracleFactory]:
    """Register an oracle factory together with its closed-form variance."""

    def decorate(factory: OracleFactory) -> OracleFactory:
        oracle_registry.add(
            name, OracleEntry(name=name, factory=factory, variance=variance,
                              description=description)
        )
        return factory

    return decorate


@register_oracle("grr", grr_variance, "Generalized Randomized Response")
def _build_grr(epsilon: float, domain: Sequence[Hashable]) -> FrequencyOracle:
    return GeneralizedRandomizedResponse(epsilon, domain=domain)


@register_oracle(
    "oue", lambda epsilon, domain_size, n: oue_variance(epsilon, n),
    "Optimized Unary Encoding",
)
def _build_oue(epsilon: float, domain: Sequence[Hashable]) -> FrequencyOracle:
    return UnaryEncoding(epsilon, domain=domain, optimized=True)


@register_oracle(
    "olh", lambda epsilon, domain_size, n: olh_variance(epsilon, n),
    "Optimized Local Hashing",
)
def _build_olh(epsilon: float, domain: Sequence[Hashable]) -> FrequencyOracle:
    return OptimizedLocalHashing(epsilon, domain=domain)


@register_oracle(
    "sue", lambda epsilon, domain_size, n: sue_variance(epsilon, n),
    "Symmetric Unary Encoding (basic RAPPOR)",
)
def _build_sue(epsilon: float, domain: Sequence[Hashable]) -> FrequencyOracle:
    return UnaryEncoding(epsilon, domain=domain, optimized=False)


def available_oracles() -> tuple[str, ...]:
    """Names accepted by :func:`make_frequency_oracle` (plus ``"auto"``)."""
    return oracle_registry.names()


def oracle_variances(
    epsilon: float, domain_size: int, n: int = 1000
) -> dict[str, float]:
    """Closed-form per-item count variance of every registered oracle."""
    return {
        name: float(oracle_registry.get(name).variance(epsilon, domain_size, n))
        for name in oracle_registry
    }


def select_frequency_oracle(epsilon: float, domain_size: int, n: int = 1000) -> str:
    """The registered oracle with the minimum analytic variance.

    Ties break in registration order (GRR first), which keeps the classic
    small-domain GRR / large-domain OUE rule and is deterministic — OLH and
    OUE share the same closed-form variance, so OUE wins their tie.
    """
    variances = oracle_variances(epsilon, domain_size, n)
    # min() returns the first minimal key, and dicts preserve registration order.
    return min(variances, key=variances.__getitem__)


def make_frequency_oracle(
    name: str, epsilon: float, domain: Sequence[Hashable], n: int = 1000
) -> FrequencyOracle:
    """Build a frequency oracle by name; ``"auto"`` picks the min-variance one.

    ``n`` only matters for ``"auto"``: it is the anticipated report count the
    variance formulas are evaluated at (the argmin is independent of ``n``
    because every formula is linear in it, but the parameter keeps the
    comparison honest).
    """
    if name.lower() == AUTO:
        name = select_frequency_oracle(epsilon, len(list(domain)), n)
    return oracle_registry.get(name).factory(epsilon, domain)
