"""Serializable population descriptions for the unified execution API.

A :class:`DataSpec` describes *what population a run collects from* in plain
data, the same way an :class:`~repro.api.spec.ExperimentSpec` describes the
mechanism.  That makes the data axis of an experiment storable, sweepable
(:class:`~repro.api.sweep.SweepSpec` grids), and shippable to another process
(the ``subprocess`` executor re-materializes the identical population from
the JSON form).

Two families of sources exist:

* labelled datasets (``symbols`` / ``trace`` / ``waves`` generators, or a
  ``ucr`` file) — symbolized through the spec's SAX transformer before
  collection, and usable for the cluster/classify evaluation tasks;
* the ``synthetic`` template stream — the constant-memory, PRF-keyed
  :class:`~repro.service.population.SyntheticShapeStream` used for
  population-scale collection runs (``repro run`` / ``repro simulate`` /
  the load generator all build exactly this population from the same knobs).

:meth:`DataSpec.realize` turns the description into a concrete population
plus the *resolved* spec (dataset-derived ``top_k`` / ``length_high`` filled
in).  Resolution happens once, before any executor is chosen, so every
backend collects under the identical concrete spec — a precondition of the
byte-equivalence guarantee.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

#: Known population sources.
SOURCE_SYNTHETIC = "synthetic"
LABELED_SOURCES = ("symbols", "trace", "waves", "ucr")
SOURCES = (SOURCE_SYNTHETIC,) + LABELED_SOURCES


def length_percentile(lengths, fraction: float = 0.9) -> int:
    """The clip-range upper bound from a population's sequence lengths.

    The order statistic at ``fraction`` (not an interpolating percentile) —
    exactly what the original ``repro extract`` computed, so the deprecated
    shim stays byte-identical on variable-length data too.
    """
    ordered = sorted(int(n) for n in lengths)
    if not ordered:
        return 2
    return max(2, ordered[int(fraction * (len(ordered) - 1))])


@dataclass
class RealizedData:
    """A data spec made concrete for one run."""

    population: Any
    spec: ExperimentSpec
    meta: dict[str, Any] = field(default_factory=dict)
    dataset: Any = None
    sequences: list | None = None


@dataclass(frozen=True)
class DataSpec:
    """One serializable description of a collection population."""

    source: str = SOURCE_SYNTHETIC
    n_users: int = 10_000
    seed: int = 0
    #: synthetic stream: template pool shape.
    n_templates: int = 6
    template_length: int = 5
    length_jitter: float = 0.2
    #: ``waves`` generator: raw series length.
    wave_length: int = 400
    #: ``ucr``: path of the UCR-format file.
    path: str | None = None

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ConfigurationError(
                f"unknown data source {self.source!r}; expected one of {SOURCES}"
            )
        if self.source == "ucr":
            if not self.path:
                raise ConfigurationError("source 'ucr' requires a file path")
        elif self.n_users <= 0:
            raise ConfigurationError(
                f"n_users must be positive, got {self.n_users}"
            )

    @property
    def labeled(self) -> bool:
        """Whether this source carries class labels (evaluation tasks need them)."""
        return self.source in LABELED_SOURCES

    @property
    def name(self) -> str:
        """Short display name of the population."""
        if self.source == "ucr":
            return f"ucr:{self.path}"
        return self.source

    # ------------------------------------------------------------ realization

    def build_dataset(self):
        """The labelled :class:`~repro.datasets.LabeledDataset` this spec names."""
        # Imported lazily: repro.api is loaded mid-way through repro.core's
        # import cycle, before repro.datasets is guaranteed to be on hand.
        from repro.datasets import (
            load_ucr_tsv,
            symbols_like,
            trace_like,
            trigonometric_waves,
        )

        if self.source == "ucr":
            return load_ucr_tsv(self.path)
        if self.source == "symbols":
            return symbols_like(n_instances=self.n_users, rng=self.seed)
        if self.source == "trace":
            return trace_like(n_instances=self.n_users, rng=self.seed)
        if self.source == "waves":
            return trigonometric_waves(
                n_instances=self.n_users, length=self.wave_length, rng=self.seed
            )
        raise ConfigurationError(
            f"source {self.source!r} is a raw population stream, not a "
            "labelled dataset; use realize() / build_population()"
        )

    def build_population(self, spec: ExperimentSpec):
        """The population source plus its metadata for ``spec``'s alphabet."""
        from repro.service.population import SyntheticShapeStream, default_templates

        if self.source == SOURCE_SYNTHETIC:
            alphabet = tuple(spec.sax.alphabet)
            templates = default_templates(
                alphabet,
                n_templates=self.n_templates,
                length=self.template_length,
                rng=self.seed,
            )
            # Geometric-ish popularity profile: the top templates are the
            # ground truth the extraction should recover (same profile the
            # CLI's simulate/loadgen population has always used).
            weights = [1.0 / (rank + 1) for rank in range(len(templates))]
            population = SyntheticShapeStream(
                n_users=self.n_users,
                alphabet=alphabet,
                templates=tuple(templates),
                weights=tuple(weights),
                seed=self.seed,
                length_jitter=self.length_jitter,
            )
            meta = {
                "templates": ["".join(t) for t in templates],
                "dataset": self.name,
                "n_users": self.n_users,
            }
            return population, meta, None, None

        from repro.service.population import EncodedPopulation

        dataset = self.build_dataset()
        transformer = spec.sax.build_transformer()
        sequences = transformer.transform_dataset(dataset.series)
        population = EncodedPopulation.from_sequences(sequences, spec.sax.alphabet)
        meta = {
            "n_classes": int(dataset.n_classes),
            "dataset": dataset.name,
            "n_users": len(dataset),
        }
        return population, meta, dataset, sequences

    def realize(
        self, spec: ExperimentSpec, cache: dict | None = None
    ) -> RealizedData:
        """Concrete population + resolved spec (top_k / length_high filled in).

        ``cache`` (a plain dict owned by the caller, e.g. one sweep run)
        memoizes the expensive part — dataset generation and SAX encoding —
        keyed by ``(self, spec.sax)``; the cheap per-spec resolution is
        re-applied every call, so grid points sharing a population but
        varying epsilon/mechanism realize the data only once.
        """
        key = (self, spec.sax)
        built = None if cache is None else cache.get(key)
        if built is None:
            population, meta, dataset, sequences = self.build_population(spec)
            if self.source == SOURCE_SYNTHETIC:
                # min(3, actual pool size): small alphabets can yield fewer
                # distinct templates than requested.
                top_k = min(3, len(meta["templates"]))
                length_high = self.template_length
            else:
                top_k = dataset.n_classes
                length_high = length_percentile([len(s) for s in sequences])
            built = (population, meta, dataset, sequences, top_k, length_high)
            if cache is not None:
                cache[key] = built
        population, meta, dataset, sequences, top_k, length_high = built
        return RealizedData(
            population=population,
            spec=spec.resolve(top_k=top_k, length_high=length_high),
            meta=meta,
            dataset=dataset,
            sequences=sequences,
        )

    def describe(self) -> dict[str, Any]:
        """Echo form stamped into a :class:`~repro.api.results.RunResult`.

        Unlike :meth:`to_dict`, only the fields that actually shaped this
        population appear — a ``ucr`` echo carries no synthetic-stream knobs,
        so the stored artifact's provenance never claims defaults that were
        never read.
        """
        payload: dict[str, Any] = {"source": self.source, "name": self.name}
        if self.source == "ucr":
            payload["path"] = self.path
            return payload
        payload["n_users"] = self.n_users
        payload["seed"] = self.seed
        if self.source == SOURCE_SYNTHETIC:
            payload["n_templates"] = self.n_templates
            payload["template_length"] = self.template_length
            payload["length_jitter"] = self.length_jitter
        elif self.source == "waves":
            payload["wave_length"] = self.wave_length
        return payload

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """Loss-free plain-data form (JSON-serializable)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DataSpec":
        """Rebuild a data spec from :meth:`to_dict` output."""
        data = dict(payload)
        data.pop("name", None)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown DataSpec fields: {sorted(unknown)}"
            )
        return cls(**data)

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The data spec as one JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "DataSpec":
        """Rebuild a data spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
