"""Structured, provenance-stamped run artifacts.

Every execution surface used to hand back its own shape of data: the offline
pipelines returned dataclasses, the CLI assembled per-command payload dicts,
the streaming driver exposed ``DriverStats``, and the gateway published a
third JSON layout over the wire.  Comparing two runs therefore meant knowing
which door the run came through.

:class:`RunResult` is the one artifact every executor returns and every
consumer (CLI ``--json``, benchmarks, examples, the sweep harness) reads:

* ``estimates`` — the extracted shapes with their estimated counts (plus the
  class label for labelled runs), ordered by decreasing frequency;
* ``rounds`` — per-round accounting (kind, level, report counts, timings) in
  one normalized key set, whichever backend produced them;
* ``timings`` / ``metrics`` — throughput and task-quality numbers;
* ``spec`` / ``data`` / ``backend_info`` — the full provenance: the exact
  resolved :class:`~repro.api.spec.ExperimentSpec`, the dataset description,
  and the backend that ran it, stamped with the package version.

Artifacts round-trip losslessly through JSON (``to_json``/``from_json``;
Python float repr round-trips exactly, so estimate equality survives the
trip), and :meth:`RunResult.fingerprint` projects out the deterministic part
— the fields that must be byte-identical across backends under one master
seed — which is what the executor-equivalence tests and the CI sweep-smoke
diff compare.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.api.spec import ExperimentSpec
from repro.exceptions import DataShapeError

#: Format tag embedded in every serialized artifact.
RUN_RESULT_FORMAT = "repro.run_result/v1"
SWEEP_RESULT_FORMAT = "repro.sweep_result/v1"

#: The tasks a spec can be executed as.
TASK_EXTRACT = "extract"
TASK_CLUSTER = "cluster"
TASK_CLASSIFY = "classify"
TASK_SHAPELET = "shapelet"
TASKS = (TASK_EXTRACT, TASK_CLUSTER, TASK_CLASSIFY, TASK_SHAPELET)

#: Canonical key set of one per-round accounting record.  Whatever backend a
#: run went through (driver "participants", loadgen "reports", gateway
#: status), its rounds are normalized to exactly these keys.
ROUND_KEYS = ("round", "kind", "level", "reports", "elapsed_seconds",
              "reports_per_second")


def package_version() -> str:
    """The installed ``repro`` version (resolved lazily to avoid a cycle)."""
    import repro

    return str(getattr(repro, "__version__", "unknown"))


def normalize_round(record: Mapping[str, Any]) -> dict[str, Any]:
    """One per-round record in the canonical :data:`ROUND_KEYS` form.

    Accepts the historical spellings (``participants`` from ``DriverStats``,
    ``reports`` from ``LoadgenStats``) and returns a plain dict with every
    canonical key present.
    """
    reports = record.get("reports", record.get("participants", 0))
    elapsed = float(record.get("elapsed_seconds", 0.0))
    rate = record.get("reports_per_second")
    if rate is None:
        rate = (float(reports) / elapsed) if elapsed > 0 else 0.0
    return {
        "round": int(record.get("round", record.get("index", 0))),
        "kind": str(record.get("kind", "")),
        "level": int(record.get("level", -1)),
        "reports": int(reports),
        "elapsed_seconds": elapsed,
        "reports_per_second": float(rate),
    }


def estimates_from_extraction(result) -> list[dict[str, Any]]:
    """Estimate records from a :class:`~repro.core.results.ShapeExtractionResult`."""
    return [
        {"shape": "".join(shape), "estimated_count": float(count)}
        for shape, count in zip(result.shapes, result.frequencies)
    ]


def estimates_from_labeled(result) -> list[dict[str, Any]]:
    """Estimate records from a labelled extraction, class label included."""
    records: list[dict[str, Any]] = []
    for label in sorted(result.shapes_by_class):
        shapes = result.shapes_by_class[label]
        counts = result.frequencies_by_class.get(label, [])
        for position, shape in enumerate(shapes):
            count = counts[position] if position < len(counts) else 0.0
            records.append(
                {
                    "shape": "".join(shape),
                    "estimated_count": float(count),
                    "label": int(label),
                }
            )
    return records


def accounting_payload(accountant) -> dict[str, Any]:
    """The canonical accounting section from a :class:`PrivacyAccountant`."""
    return {
        "per_population": {
            name: float(total) for name, total in accountant.per_population().items()
        },
        "user_level_epsilon": float(accountant.user_level_epsilon()),
        "within_budget": bool(accountant.is_valid()),
    }


@dataclass
class RunResult:
    """One executed spec: estimates, accounting, timings, and provenance."""

    task: str
    spec: ExperimentSpec
    backend: str = "inline"
    seed: int | None = None
    estimates: list[dict[str, Any]] = field(default_factory=list)
    estimated_length: int | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    accounting: dict[str, Any] = field(default_factory=dict)
    rounds: list[dict[str, Any]] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    backend_info: dict[str, Any] = field(default_factory=dict)
    data: dict[str, Any] = field(default_factory=dict)
    details: dict[str, Any] = field(default_factory=dict)
    #: Optional observability block (phase/kernel profile + span counts) from
    #: a telemetry-enabled run; wall-clock data, so excluded from fingerprints.
    telemetry: dict[str, Any] = field(default_factory=dict)
    repro_version: str = field(default_factory=package_version)

    def __post_init__(self) -> None:
        if self.task not in TASKS:
            raise DataShapeError(
                f"task must be one of {TASKS}, got {self.task!r}"
            )
        self.rounds = [normalize_round(record) for record in self.rounds]

    # ------------------------------------------------------------ convenience

    @property
    def shapes(self) -> list[str]:
        """The extracted shapes as strings, most frequent first."""
        return [entry["shape"] for entry in self.estimates]

    @property
    def frequencies(self) -> list[float]:
        """The estimated count of each extracted shape (NaN where unknown)."""
        return [
            float("nan") if entry.get("estimated_count") is None
            else float(entry["estimated_count"])
            for entry in self.estimates
        ]

    def shapes_by_class(self) -> dict[int, list[str]]:
        """Labelled runs: extracted shapes grouped by class label."""
        grouped: dict[int, list[str]] = {}
        for entry in self.estimates:
            if "label" in entry:
                grouped.setdefault(int(entry["label"]), []).append(entry["shape"])
        return grouped

    def fingerprint(self) -> dict[str, Any]:
        """The deterministic projection of this run.

        Two runs of the same resolved spec on the same data under the same
        master seed must have equal fingerprints no matter which backend
        executed them; timings, backend metadata, and version stamps are
        excluded by construction.
        """
        return {
            "task": self.task,
            "spec": self.spec.to_dict(),
            "data": dict(self.data),
            "seed": self.seed,
            "estimates": [dict(entry) for entry in self.estimates],
            "estimated_length": self.estimated_length,
            "accounting": dict(self.accounting),
        }

    # ---------------------------------------------------------- serialization

    def to_dict(self) -> dict[str, Any]:
        """Loss-free plain-data form (JSON-serializable)."""
        return {
            "format": RUN_RESULT_FORMAT,
            "task": self.task,
            "spec": self.spec.to_dict(),
            "backend": self.backend,
            "seed": self.seed,
            "estimates": [dict(entry) for entry in self.estimates],
            "estimated_length": self.estimated_length,
            "metrics": dict(self.metrics),
            "accounting": dict(self.accounting),
            "rounds": [dict(record) for record in self.rounds],
            "timings": dict(self.timings),
            "backend_info": dict(self.backend_info),
            "data": dict(self.data),
            "details": dict(self.details),
            "telemetry": dict(self.telemetry),
            "repro_version": self.repro_version,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunResult":
        """Rebuild an artifact from :meth:`to_dict` output.

        Unknown keys (e.g. the CLI's ``command`` envelope) are ignored, so a
        ``repro run --json`` document parses directly.
        """
        data = dict(payload)
        declared = data.get("format", RUN_RESULT_FORMAT)
        if declared != RUN_RESULT_FORMAT:
            raise DataShapeError(
                f"expected a {RUN_RESULT_FORMAT} document, got {declared!r}"
            )
        return cls(
            task=str(data.get("task", TASK_EXTRACT)),
            spec=ExperimentSpec.from_dict(data.get("spec", {})),
            backend=str(data.get("backend", "inline")),
            seed=data.get("seed"),
            estimates=[dict(entry) for entry in data.get("estimates", [])],
            estimated_length=data.get("estimated_length"),
            metrics=dict(data.get("metrics", {})),
            accounting=dict(data.get("accounting", {})),
            rounds=[dict(record) for record in data.get("rounds", [])],
            timings=dict(data.get("timings", {})),
            backend_info=dict(data.get("backend_info", {})),
            data=dict(data.get("data", {})),
            details=dict(data.get("details", {})),
            telemetry=dict(data.get("telemetry", {})),
            repro_version=str(data.get("repro_version", "unknown")),
        )

    def to_json(self, **dumps_kwargs: Any) -> str:
        """The artifact as one JSON document."""
        return json.dumps(self.to_dict(), sort_keys=True, **dumps_kwargs)

    @classmethod
    def from_json(cls, document: str) -> "RunResult":
        """Rebuild an artifact from :meth:`to_json` output."""
        return cls.from_dict(json.loads(document))
