"""Pluggable execution backends behind ``ExperimentSpec.run()``.

Every execution surface the repo has grown — offline extraction, the
streaming :class:`~repro.service.driver.ProtocolDriver`, the socket
:class:`~repro.server.gateway.CollectionGateway` — collects with the same
engine and the same PRF-keyed client randomness, so under one master seed
they are byte-identical.  What differed was the *launching*: each surface had
its own entry point, arguments, and result shape.  This module closes that
gap with one protocol:

* an :class:`Executor` takes one :class:`ExecutionRequest` (a resolved spec,
  a concrete population, a master seed, backend options) and returns one
  :class:`~repro.api.results.RunResult`;
* executors register in :data:`executor_registry` under a backend name, so
  ``spec.run(data, backend="gateway")`` and ``repro run --backend gateway``
  reach them uniformly, and downstream code can register its own.

Built-in backends:

``inline``
    The in-process reference: PrivShape streams through ``ProtocolDriver``
    (any batch size / shard count); other extraction mechanisms run directly
    on the materialized sequences.
``sharded``
    Multiprocess fan-out: each round's client encoding runs in ``shards``
    worker processes over disjoint user-id slices, and the parent merges the
    integer :class:`~repro.service.rounds.RoundAccumulator` states — exact
    because accumulator merge is int64 addition and client randomness is a
    pure PRF of ``(round key, user id)``.
``gateway``
    A real wire boundary: boots a :class:`CollectionGateway` on an ephemeral
    port via :func:`~repro.server.testing.serve_in_thread` and drives the
    population through :func:`~repro.server.loadgen.run_loadgen` sockets.
``subprocess``
    CLI-backed isolation: serializes the spec + data spec to JSON, executes
    ``python -m repro.cli run --json`` in a child interpreter, and parses the
    child's :class:`RunResult` document.

All four produce byte-identical ``estimates`` under the same master seed
(``tests/api/test_executors.py``).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from repro.api.data import DataSpec, RealizedData, length_percentile
from repro.api.mechanisms import (
    KIND_EXTRACTION,
    available_mechanisms,
    mechanism_registry,
)
from repro.api.registry import Registry
from repro.api.results import (
    TASK_CLASSIFY,
    TASK_CLUSTER,
    TASK_EXTRACT,
    TASK_SHAPELET,
    RunResult,
    accounting_payload,
    estimates_from_extraction,
)
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError, ExecutionError
from repro.service.client import ClientReporter
from repro.service.driver import ProtocolDriver
from repro.service.plan import CollectionPlan, RoundSpec
from repro.service.population import worker_slices
from repro.service.protocol import PrivShapeEngine
from repro.service.rounds import RoundAccumulator, accumulate, new_accumulator


@dataclass
class ExecutionRequest:
    """Everything an executor needs to run one resolved spec."""

    spec: ExperimentSpec
    population: Any
    seed: int | None = None
    data: DataSpec | None = None
    sequences: list | None = None
    options: dict[str, Any] = field(default_factory=dict)

    def option(self, name: str, default: Any = None) -> Any:
        return self.options.get(name, default)


@runtime_checkable
class Executor(Protocol):
    """An execution backend: one request in, one structured artifact out."""

    def __call__(self, request: ExecutionRequest) -> RunResult: ...


#: Options every extract backend accepts.
COMMON_OPTIONS = ("batch_size",)


@dataclass(frozen=True)
class ExecutorEntry:
    """One registered backend: its name, runner, and capabilities."""

    name: str
    run: Callable[[ExecutionRequest], RunResult]
    description: str = ""
    #: Whether the backend re-materializes data in another process and
    #: therefore needs a serializable :class:`DataSpec` (not a live object).
    needs_dataspec: bool = False
    #: Backend-specific option names (beyond :data:`COMMON_OPTIONS`); a
    #: run_spec call naming anything else raises instead of being ignored.
    options: tuple[str, ...] = ()


executor_registry: Registry[ExecutorEntry] = Registry("executor")


def register_executor(
    name: str,
    description: str = "",
    needs_dataspec: bool = False,
    options: tuple[str, ...] = (),
) -> Callable[[Callable[[ExecutionRequest], RunResult]], Callable]:
    """Register an execution backend under ``name``."""

    def decorate(run: Callable[[ExecutionRequest], RunResult]):
        executor_registry.add(
            name,
            ExecutorEntry(
                name=name, run=run, description=description,
                needs_dataspec=needs_dataspec, options=tuple(options),
            ),
        )
        return run

    return decorate


def available_executors() -> tuple[str, ...]:
    """Registered backend names."""
    return executor_registry.names()


# ------------------------------------------------------------------- helpers


def materialize_sequences(population, batch_size: int = 8192) -> list:
    """Decode a (possibly streaming) population back into symbol tuples."""
    sequences = []
    for _, batch in population.iter_batches(batch_size):
        for row in batch.codes:
            sequences.append(batch.decode_row(row))
    return sequences


def _require_privshape(request: ExecutionRequest, backend: str) -> None:
    if request.spec.mechanism != "privshape":
        raise ConfigurationError(
            f"backend {backend!r} streams through the round-based PrivShape "
            f"protocol and cannot run mechanism {request.spec.mechanism!r}; "
            "use backend='inline' (or 'subprocess') for other mechanisms"
        )


def _extraction_result(
    request: ExecutionRequest,
    extraction,
    *,
    backend: str,
    rounds: list[dict[str, Any]] | None = None,
    timings: dict[str, float] | None = None,
    backend_info: dict[str, Any] | None = None,
    elapsed_seconds: float | None = None,
) -> RunResult:
    """Assemble the canonical artifact from one finished extraction."""
    metrics: dict[str, float] = {}
    if elapsed_seconds is not None:
        metrics["elapsed_seconds"] = float(elapsed_seconds)
    return RunResult(
        task=TASK_EXTRACT,
        spec=request.spec,
        backend=backend,
        seed=request.seed,
        estimates=estimates_from_extraction(extraction),
        estimated_length=int(extraction.estimated_length),
        metrics=metrics,
        accounting=accounting_payload(extraction.accountant),
        rounds=rounds or [],
        timings=timings or {},
        backend_info=backend_info or {},
        data={} if request.data is None else request.data.describe(),
    )


# ------------------------------------------------------------ inline backend


@register_executor(
    "inline",
    "in-process execution: streaming ProtocolDriver for PrivShape, direct "
    "extraction for every other registered mechanism",
    options=("shards", "serialize"),
)
def run_inline(request: ExecutionRequest) -> RunResult:
    spec = request.spec
    batch_size = int(request.option("batch_size", 8192))
    n_shards = int(request.option("shards", 1))
    started = time.perf_counter()
    if spec.mechanism == "privshape":
        driver = ProtocolDriver(
            spec,
            request.population,
            batch_size=batch_size,
            n_shards=n_shards,
            serialize=bool(request.option("serialize", False)),
            rng=request.seed,
        )
        extraction = driver.run()
        stats = driver.stats
        return _extraction_result(
            request,
            extraction,
            backend="inline",
            rounds=[r.to_dict() for r in stats.rounds],
            timings={
                "total_reports": stats.total_reports,
                "total_seconds": stats.total_seconds,
                "reports_per_second": stats.reports_per_second,
                "peak_rss_bytes": stats.peak_rss_bytes,
            },
            backend_info={
                "batch_size": batch_size,
                "shards": n_shards,
                "serialize": bool(request.option("serialize", False)),
            },
            elapsed_seconds=time.perf_counter() - started,
        )

    entry = mechanism_registry.get(spec.mechanism)
    if entry.kind != KIND_EXTRACTION:
        raise ConfigurationError(
            f"mechanism {spec.mechanism!r} perturbs raw series instead of "
            "extracting shapes; run it through the cluster/classify tasks "
            f"(extraction mechanisms: {available_mechanisms(KIND_EXTRACTION)})"
        )
    if n_shards != 1 or request.option("serialize"):
        raise ConfigurationError(
            f"mechanism {spec.mechanism!r} extracts in one shot; 'shards' "
            "and 'serialize' only apply to the streaming privshape protocol"
        )
    sequences = (
        request.sequences
        if request.sequences is not None
        else materialize_sequences(request.population, batch_size)
    )
    extraction = entry.build(spec).extract(sequences, rng=request.seed)
    return _extraction_result(
        request,
        extraction,
        backend="inline",
        backend_info={"batch_size": batch_size},
        elapsed_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------- sharded backend


#: Per-worker-process population, installed once by the pool initializer so
#: each protocol round only ships (plan, round, slice) — not the data.
_worker_population = None


def _install_worker_population(population) -> None:
    """Pool initializer: pin this worker process's population source."""
    global _worker_population
    _worker_population = population


def _accumulate_assigned_slice(
    plan_dict: dict[str, Any],
    round_dict: dict[str, Any],
    start: int,
    stop: int,
    batch_size: int,
) -> dict[str, Any]:
    """Worker entry point over the initializer-installed population."""
    return accumulate_user_slice(
        _worker_population, plan_dict, round_dict, start, stop, batch_size
    )


def accumulate_user_slice(
    population,
    plan_dict: dict[str, Any],
    round_dict: dict[str, Any],
    start: int,
    stop: int,
    batch_size: int,
) -> dict[str, Any]:
    """One worker's round contribution for the user-id slice ``[start, stop)``.

    Top-level (picklable) so multiprocessing workers can run it.  Returns the
    slice's :class:`RoundAccumulator` state — plain data, exact int64 counts —
    which the parent merges; the merge order cannot matter because integer
    addition is associative and commutative.
    """
    plan = CollectionPlan.from_dict(plan_dict)
    spec = RoundSpec.from_dict(round_dict)
    reporter = ClientReporter()
    accumulator = new_accumulator(spec)
    n_reports = 0
    for user_ids, batch_population in population.iter_range(start, stop, batch_size):
        mask = plan.participant_mask(spec, user_ids)
        if not mask.any():
            continue
        participants = np.flatnonzero(mask)
        batch = reporter.make_reports(
            spec, batch_population.take(participants), user_ids[participants]
        )
        accumulate(spec, accumulator, batch.payload)
        n_reports += len(batch)
    assert accumulator.n_reports == n_reports
    return accumulator.to_state()


@register_executor(
    "sharded",
    "multiprocess execution: per-round client encoding fans out over worker "
    "processes on disjoint user-id slices; integer accumulator merge is exact",
    options=("shards", "mp_context"),
)
def run_sharded(request: ExecutionRequest) -> RunResult:
    _require_privshape(request, "sharded")
    shards = int(request.option("shards", 2))
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1, got {shards}")
    batch_size = int(request.option("batch_size", 8192))
    mp_context = str(request.option("mp_context", "spawn"))
    n_users = int(request.population.n_users)

    engine = PrivShapeEngine(request.spec.to_privshape_config(), rng=request.seed)
    rounds: list[dict[str, Any]] = []
    started = time.perf_counter()
    context = multiprocessing.get_context(mp_context)
    slices = worker_slices(n_users, shards)
    # The population ships to each worker exactly once (initializer); the
    # per-round messages carry only the plan, the round spec, and a slice.
    with context.Pool(
        len(slices),
        initializer=_install_worker_population,
        initargs=(request.population,),
    ) as pool:
        while (round_spec := engine.open_round()) is not None:
            round_started = time.perf_counter()
            states = pool.starmap(
                _accumulate_assigned_slice,
                [
                    (engine.plan.to_dict(), round_spec.to_dict(),
                     start, stop, batch_size)
                    for start, stop in slices
                ],
            )
            aggregate = new_accumulator(round_spec)
            for state in states:
                aggregate.merge(RoundAccumulator.from_state(state))
            engine.close_round(round_spec, aggregate)
            rounds.append(
                {
                    "round": round_spec.index,
                    "kind": round_spec.kind,
                    "level": round_spec.level,
                    "reports": aggregate.n_reports,
                    "elapsed_seconds": time.perf_counter() - round_started,
                }
            )
    extraction = engine.finalize()
    total_seconds = time.perf_counter() - started
    total_reports = sum(r["reports"] for r in rounds)
    return _extraction_result(
        request,
        extraction,
        backend="sharded",
        rounds=rounds,
        timings={
            "total_reports": total_reports,
            "total_seconds": total_seconds,
            "reports_per_second": (
                total_reports / total_seconds if total_seconds > 0 else 0.0
            ),
        },
        backend_info={
            "batch_size": batch_size,
            "shards": len(slices),
            "mp_context": mp_context,
        },
        elapsed_seconds=total_seconds,
    )


# ----------------------------------------------------------- gateway backend


@register_executor(
    "gateway",
    "socket execution: boots a CollectionGateway on an ephemeral port and "
    "drives the population through the NDJSON wire protocol",
    options=("shards", "workers", "queue_depth", "mp_context"),
)
def run_gateway(request: ExecutionRequest) -> RunResult:
    _require_privshape(request, "gateway")
    # Imported lazily: repro.server pulls asyncio and is itself imported by
    # the top-level package after repro.api.
    from repro.server.gateway import CollectionGateway
    from repro.server.loadgen import run_loadgen
    from repro.server.testing import serve_in_thread

    n_shards = int(request.option("shards", 1))
    batch_size = int(request.option("batch_size", 8192))
    workers = int(request.option("workers", 0))
    gateway = CollectionGateway(
        request.spec.to_privshape_config(),
        rng=request.seed,
        n_shards=n_shards,
        queue_depth=int(request.option("queue_depth", 64)),
    )
    started = time.perf_counter()
    with serve_in_thread(gateway) as handle:
        host, port = handle.host, handle.port
        stats = run_loadgen(
            host,
            port,
            request.population,
            batch_size=batch_size,
            workers=workers,
            mp_context=str(request.option("mp_context", "spawn")),
        )
    elapsed = time.perf_counter() - started
    payload = stats.result or {}
    estimates = [
        {"shape": shape, "estimated_count": float(count)}
        for shape, count in zip(payload.get("shapes", []),
                                payload.get("frequencies", []))
    ]
    return RunResult(
        task=TASK_EXTRACT,
        spec=request.spec,
        backend="gateway",
        seed=request.seed,
        estimates=estimates,
        estimated_length=payload.get("estimated_length"),
        metrics={"elapsed_seconds": elapsed},
        accounting=dict(payload.get("accounting", {})),
        rounds=[r.to_dict() for r in stats.rounds],
        timings={
            "total_reports": stats.total_reports,
            "total_seconds": stats.total_seconds,
            "reports_per_second": stats.reports_per_second,
        },
        backend_info={
            "host": host,
            "port": port,
            "shards": n_shards,
            "batch_size": batch_size,
            "workers": workers,
            "server_status": stats.server_status,
        },
        data={} if request.data is None else request.data.describe(),
    )


# ----------------------------------------------------------- cluster backend


@register_executor(
    "cluster",
    "multi-process execution: boots a supervised coordinator/worker cluster "
    "and streams each user-id slice straight to its owning shard worker",
    options=("workers", "queue_depth", "checkpoint_every", "loadgen_workers",
             "mp_context", "kill_round", "kill_worker", "kill_after_batches"),
)
def run_cluster(request: ExecutionRequest) -> RunResult:
    _require_privshape(request, "cluster")
    # Imported lazily for the same reason as the gateway backend.
    from repro.cluster.loadgen import ChaosKill, run_cluster_loadgen
    from repro.cluster.testing import launch_cluster

    n_workers = int(request.option("workers", 2))
    batch_size = int(request.option("batch_size", 8192))
    loadgen_workers = int(request.option("loadgen_workers", 0))
    mp_context = str(request.option("mp_context", "spawn"))
    kill_round = request.option("kill_round", None)
    chaos = None
    if kill_round is not None:
        # Fault injection: SIGKILL one shard worker mid-round and prove the
        # supervised recovery leaves the estimates untouched.
        chaos = ChaosKill(
            round_index=int(kill_round),
            worker_index=int(request.option("kill_worker", 0)),
            after_batches=int(request.option("kill_after_batches", 1)),
        )
    started = time.perf_counter()
    with launch_cluster(
        request.spec.to_privshape_config(),
        n_users=request.population.n_users,
        n_workers=n_workers,
        rng=request.seed,
        queue_depth=int(request.option("queue_depth", 64)),
        checkpoint_every=int(request.option("checkpoint_every", 16)),
        mp_context=mp_context,
    ) as cluster:
        host, port = cluster.host, cluster.port
        stats = run_cluster_loadgen(
            host,
            port,
            request.population,
            batch_size=batch_size,
            workers=loadgen_workers,
            mp_context=mp_context,
            chaos=chaos,
        )
        restarts = cluster.supervisor.restarts
    elapsed = time.perf_counter() - started
    payload = stats.result or {}
    estimates = [
        {"shape": shape, "estimated_count": float(count)}
        for shape, count in zip(payload.get("shapes", []),
                                payload.get("frequencies", []))
    ]
    return RunResult(
        task=TASK_EXTRACT,
        spec=request.spec,
        backend="cluster",
        seed=request.seed,
        estimates=estimates,
        estimated_length=payload.get("estimated_length"),
        metrics={"elapsed_seconds": elapsed},
        accounting=dict(payload.get("accounting", {})),
        rounds=[r.to_dict() for r in stats.rounds],
        timings={
            "total_reports": stats.total_reports,
            "total_seconds": stats.total_seconds,
            "reports_per_second": stats.reports_per_second,
        },
        backend_info={
            "host": host,
            "port": port,
            "n_workers": n_workers,
            "batch_size": batch_size,
            "loadgen_workers": loadgen_workers,
            "restarts": restarts,
            "retries": stats.retries,
            "server_status": stats.server_status,
        },
        data={} if request.data is None else request.data.describe(),
    )


# -------------------------------------------------------- subprocess backend


@register_executor(
    "subprocess",
    "CLI-backed execution: serializes the spec + data spec and runs "
    "`python -m repro.cli run --json` in a child interpreter",
    needs_dataspec=True,
    options=("inner_backend", "timeout", "shards", "workers", "queue_depth",
             "mp_context", "serialize"),
)
def run_subprocess(request: ExecutionRequest) -> RunResult:
    if request.data is None:
        raise ConfigurationError(
            "backend 'subprocess' re-materializes the population in a child "
            "process and therefore needs a serializable DataSpec, not a live "
            "population object"
        )
    inner_backend = str(request.option("inner_backend", "inline"))
    if inner_backend == "subprocess":
        raise ConfigurationError("inner_backend cannot itself be 'subprocess'")
    timeout = float(request.option("timeout", 600.0))
    task = str(request.option("task", TASK_EXTRACT))
    with tempfile.TemporaryDirectory(prefix="repro-run-") as tmp:
        spec_path = Path(tmp) / "spec.json"
        data_path = Path(tmp) / "data.json"
        spec_path.write_text(request.spec.to_json(), encoding="utf-8")
        data_path.write_text(request.data.to_json(), encoding="utf-8")
        # The child CLI's --seed defaults to 0, which would silently turn an
        # unseeded run deterministic; preserve seed=None's fresh-entropy
        # semantics by drawing the master seed here, and record it (the
        # artifact then reports the seed that actually ran).
        seed = request.seed
        if seed is None:
            seed = int(np.random.SeedSequence().generate_state(1)[0])
        argv = [
            sys.executable, "-m", "repro.cli", "run",
            "--backend", inner_backend,
            "--task", task,
            "--spec", str(spec_path),
            "--data-spec", str(data_path),
            "--seed", str(int(seed)),
            "--json",
        ]
        if task in (TASK_EXTRACT, TASK_SHAPELET):
            # Collection knob; the inline evaluation tasks reject it.
            argv[-1:-1] = [
                "--batch-size", str(int(request.option("batch_size", 8192)))
            ]
        # Every backend option the child CLI understands is forwarded, so the
        # caller's fan-out configuration survives the process hop.
        for name, flag, convert in [
            ("shards", "--shards", int),
            ("workers", "--workers", int),
            ("queue_depth", "--queue-depth", int),
            ("evaluation_size", "--evaluation-size", int),
            ("mp_context", "--mp-context", str),
        ]:
            value = request.option(name)
            if value is not None:
                argv += [flag, str(convert(value))]
        if request.option("serialize"):
            argv += ["--serialize"]
        # The child must import the same repro tree as the parent even when
        # the package is not installed (PYTHONPATH=src workflows).
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        started = time.perf_counter()
        try:
            completed = subprocess.run(
                argv, capture_output=True, text=True, timeout=timeout, env=env,
            )
        except subprocess.TimeoutExpired as exc:
            raise ExecutionError(
                f"subprocess run exceeded {timeout:.0f}s: {' '.join(argv)}"
            ) from exc
        elapsed = time.perf_counter() - started
    if completed.returncode != 0:
        tail = (completed.stderr or "").strip().splitlines()[-5:]
        raise ExecutionError(
            f"subprocess run exited with code {completed.returncode}: "
            + " | ".join(tail)
        )
    try:
        result = RunResult.from_dict(json.loads(completed.stdout))
    except (json.JSONDecodeError, ValueError) as exc:
        raise ExecutionError(
            f"subprocess run emitted an unparsable result: {exc}"
        ) from exc
    result.backend = "subprocess"
    result.backend_info = {
        "inner_backend": inner_backend,
        "argv": argv,
        "returncode": completed.returncode,
        "elapsed_seconds": elapsed,
        # Preserve how the inner run was actually configured (gateway
        # host/port, sharding, ...) — provenance must survive the hop.
        "inner_info": result.backend_info,
    }
    return result


# ------------------------------------------------------------- orchestration


def _run_task_pipeline(
    spec: ExperimentSpec,
    data,
    task: str,
    seed,
    options: dict[str, Any],
    cache: dict | None = None,
) -> RunResult:
    """Cluster/classify evaluation tasks (inline pipelines) as a RunResult."""
    # Imported lazily: core.pipeline <-> repro.api is the one import cycle in
    # the tree; it is only resolvable at call time.
    from repro.core.pipeline import run_classification_task, run_clustering_task

    data_spec = data if isinstance(data, DataSpec) else None
    if isinstance(data, DataSpec):
        if not data.labeled:
            raise ConfigurationError(
                f"task {task!r} evaluates against class labels; data source "
                f"{data.source!r} has none"
            )
        key = (data, "dataset")
        dataset = None if cache is None else cache.get(key)
        if dataset is None:
            dataset = data.build_dataset()
            if cache is not None:
                cache[key] = dataset
    elif hasattr(data, "series") and hasattr(data, "labels"):
        dataset = data
    else:
        raise ConfigurationError(
            f"task {task!r} needs a labelled dataset (a DataSpec naming one, "
            f"or a LabeledDataset); got {type(data).__name__}"
        )
    evaluation_size = int(options.get("evaluation_size", 500))
    if task == TASK_CLUSTER:
        result = run_clustering_task(
            dataset, spec=spec, evaluation_size=evaluation_size, rng=seed
        )
    else:
        result = run_classification_task(
            dataset, spec=spec, evaluation_size=evaluation_size, rng=seed
        )
    run = result.to_run_result(seed=seed)
    run.data = (
        data_spec.describe()
        if data_spec is not None
        else {"source": "dataset", "name": dataset.name, "n_users": len(dataset)}
    )
    run.details.setdefault("dataset", dataset.name)
    run.details.setdefault("n_users", len(dataset))
    return run


def _coerce_population(
    spec: ExperimentSpec, data, cache: dict | None = None
) -> RealizedData:
    """Turn whatever the caller handed us into a concrete, resolved request."""
    if isinstance(data, DataSpec):
        return data.realize(spec, cache=cache)
    if hasattr(data, "series") and hasattr(data, "labels"):
        # A live LabeledDataset: symbolize it exactly like DataSpec.realize.
        from repro.service.population import EncodedPopulation

        sequences = spec.sax.build_transformer().transform_dataset(data.series)
        resolved = spec.resolve(
            top_k=data.n_classes,
            length_high=length_percentile([len(s) for s in sequences]),
        )
        return RealizedData(
            population=EncodedPopulation.from_sequences(sequences, spec.sax.alphabet),
            spec=resolved,
            meta={"dataset": data.name},
            dataset=data,
            sequences=sequences,
        )
    if hasattr(data, "iter_batches") and hasattr(data, "n_users"):
        # A live population source (EncodedPopulation, SyntheticShapeStream,
        # or anything speaking the same protocol).  An EncodedPopulation
        # exposes its sequence lengths, so length_high can still be resolved;
        # top_k falls back to 3 extracted shapes when the spec leaves it open.
        resolved = spec
        lengths = getattr(data, "lengths", None)
        if lengths is not None and spec.collection.length_high is None:
            resolved = resolved.resolve(length_high=length_percentile(lengths))
        if resolved.collection.top_k is None:
            resolved = resolved.resolve(top_k=3)
        return RealizedData(population=data, spec=resolved)
    if isinstance(data, (list, tuple)):
        from repro.service.population import EncodedPopulation

        sequences = [tuple(s) for s in data]
        resolved = spec.resolve(
            top_k=3,
            length_high=length_percentile([len(s) for s in sequences])
            if sequences else None,
        )
        return RealizedData(
            population=EncodedPopulation.from_sequences(sequences, spec.sax.alphabet),
            spec=resolved,
            sequences=sequences,
        )
    raise ConfigurationError(
        "data must be a DataSpec, a LabeledDataset, a population source "
        f"(iter_batches/n_users), or a sequence list; got {type(data).__name__}"
    )


def run_spec(
    spec: ExperimentSpec,
    data,
    *,
    backend: str = "inline",
    task: str = TASK_EXTRACT,
    seed: int | None = None,
    cache: dict | None = None,
    **options: Any,
) -> RunResult:
    """Execute ``spec`` on ``data`` with the named backend → :class:`RunResult`.

    This is the single dispatch point behind :meth:`ExperimentSpec.run` and
    ``repro run``.  ``task="extract"`` runs the collection itself on any
    registered backend; the evaluation tasks (``cluster`` / ``classify``)
    wrap the paper's pipelines and run ``inline`` (or via ``subprocess``,
    which forwards the task to a child CLI).  ``cache`` is an optional
    caller-owned dict memoizing dataset generation + SAX encoding across
    calls that share a :class:`DataSpec` (the sweep harness passes one per
    sweep).

    Two telemetry options are accepted by every backend and task:
    ``telemetry=True`` runs under a recording tracer/profiler
    (:func:`repro.obs.capture`) and attaches its summary as
    ``result.telemetry``; ``trace="out.json"`` additionally writes the spans
    as Chrome-trace JSON (implies ``telemetry=True``).  Neither touches any
    random generator, so fingerprints are unchanged.
    """
    from repro.api.tasks import task_registry

    task_registry.get(task)  # unknown task names fail here, uniformly
    telemetry_enabled = bool(options.pop("telemetry", False))
    trace_path = options.pop("trace", None)
    if spec.windows is not None:
        # A windowed spec executes to a per-window RunResult sequence; the
        # continual dispatcher owns backend/option validation for that path.
        if task != TASK_EXTRACT:
            raise ConfigurationError(
                f"a windowed spec only runs task 'extract', got {task!r}"
            )
        from repro.api.continual import run_windows

        return run_windows(
            spec, data, backend=backend, seed=seed, cache=cache,
            telemetry=telemetry_enabled, trace=trace_path, **options,
        )
    if not telemetry_enabled and trace_path is None:
        return _run_spec_dispatch(spec, data, backend, task, seed, cache, options)
    from repro.obs import capture

    with capture() as cap:
        result = _run_spec_dispatch(spec, data, backend, task, seed, cache, options)
    result.telemetry = cap.summary()
    if trace_path is not None:
        cap.write_chrome_trace(str(trace_path))
    return result


def _run_spec_dispatch(
    spec: ExperimentSpec,
    data,
    backend: str,
    task: str,
    seed: int | None,
    cache: dict | None,
    options: dict[str, Any],
) -> RunResult:
    """Validate options and execute one non-windowed run (see run_spec)."""
    from repro.api.tasks import task_registry

    entry = executor_registry.get(backend)
    tentry = task_registry.get(task)
    # One up-front accepted-option set per (task, backend): a misspelled or
    # inert knob (shard= for shards=, shards on a single-process evaluation
    # task, evaluation_size on a collection run) silently running with
    # defaults is worse than an error.
    if tentry.all_backends:
        known = set(COMMON_OPTIONS) | set(entry.options) | set(tentry.options)
    else:
        known = set(tentry.options)
        if backend == "subprocess":
            known |= {"inner_backend", "timeout"}
    unknown = set(options) - known
    if unknown:
        raise ConfigurationError(
            f"unknown or inert option(s) {sorted(unknown)} for backend "
            f"{backend!r}, task {task!r}; accepted: {sorted(known)}"
        )
    if not tentry.all_backends:
        if backend == "subprocess":
            request = ExecutionRequest(
                spec=spec,
                population=None,
                seed=seed,
                data=data if isinstance(data, DataSpec) else None,
                options={**options, "task": task},
            )
            return entry.run(request)
        if backend != "inline":
            raise ConfigurationError(
                f"task {task!r} evaluates through the inline pipelines; "
                f"backend {backend!r} only runs task 'extract'"
            )
        return _run_task_pipeline(spec, data, task, seed, options, cache)
    if task == TASK_SHAPELET and not entry.needs_dataspec:
        # Shapelet runs extraction through the chosen backend, then a
        # deterministic in-process discover/transform/classify stage; the
        # runner owns data coercion (it also needs the labelled dataset).
        from repro.tasks.shapelet.runner import run_shapelet_task

        return run_shapelet_task(
            spec, data,
            backend=backend, entry=entry, seed=seed, cache=cache,
            options=options,
        )

    if entry.needs_dataspec:
        if not isinstance(data, DataSpec):
            raise ConfigurationError(
                f"backend {backend!r} needs a serializable DataSpec describing "
                "the population (it re-materializes the data elsewhere)"
            )
        # The population materializes in the other process; hand the backend
        # the raw description and let the far side realize + resolve it.
        request = ExecutionRequest(
            spec=spec, population=None, seed=seed, data=data,
            options={**options, "task": task},
        )
        return entry.run(request)
    realized = _coerce_population(spec, data, cache)
    realized.spec._require_concrete()
    request = ExecutionRequest(
        spec=realized.spec,
        population=realized.population,
        seed=seed,
        data=data if isinstance(data, DataSpec) else None,
        sequences=realized.sequences,
        options={**options, "task": task},
    )
    result = entry.run(request)
    if realized.meta:
        for key, value in realized.meta.items():
            result.details.setdefault(key, value)
    return result
