"""Downstream time-series mining used by the paper's evaluation.

The paper evaluates extracted shapes through two applications — clustering
(KMeans / KShape + Adjusted Rand Index) and classification (random forest /
nearest-shape + accuracy).  Because scikit-learn and tslearn are not available
offline, the needed algorithms are implemented here from scratch:

* :class:`TimeSeriesKMeans` — Lloyd's algorithm with DTW or Euclidean
  assignment and resampled-mean centroids;
* :class:`KShape` — shape-based clustering with normalized cross-correlation;
* :class:`RandomForestClassifier` (and :class:`DecisionTreeClassifier`) —
  CART-style forest on fixed-length feature vectors;
* :class:`NearestShapeClassifier` / :func:`assign_to_shapes` — the paper's
  "most frequent shape per class / per cluster as the criterion" evaluation;
* metrics: :func:`adjusted_rand_index`, :func:`accuracy_score`;
* :func:`match_shapes_to_ground_truth` — DTW matching of extracted shapes to
  ground-truth centroids for Tables III / IV.
"""

from repro.mining.kmeans import TimeSeriesKMeans
from repro.mining.kshape import KShape
from repro.mining.tree import DecisionTreeClassifier
from repro.mining.forest import RandomForestClassifier
from repro.mining.nearest import NearestShapeClassifier, assign_to_shapes
from repro.mining.metrics import accuracy_score, adjusted_rand_index, contingency_table
from repro.mining.matching import match_shapes_to_ground_truth, shape_quality_measures

__all__ = [
    "TimeSeriesKMeans",
    "KShape",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "NearestShapeClassifier",
    "assign_to_shapes",
    "accuracy_score",
    "adjusted_rand_index",
    "contingency_table",
    "match_shapes_to_ground_truth",
    "shape_quality_measures",
]
