"""Clustering and classification evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataShapeError


def _check_paired(labels_a, labels_b) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(labels_a)
    b = np.asarray(labels_b)
    if a.ndim != 1 or b.ndim != 1:
        raise DataShapeError("label arrays must be 1-dimensional")
    if a.size != b.size:
        raise DataShapeError(f"label arrays differ in length: {a.size} vs {b.size}")
    if a.size == 0:
        raise DataShapeError("label arrays must not be empty")
    return a, b


def contingency_table(labels_true, labels_pred) -> np.ndarray:
    """Contingency matrix ``C[i, j]`` = #samples with true class i and predicted cluster j."""
    true, pred = _check_paired(labels_true, labels_pred)
    true_classes, true_indices = np.unique(true, return_inverse=True)
    pred_classes, pred_indices = np.unique(pred, return_inverse=True)
    table = np.zeros((true_classes.size, pred_classes.size), dtype=np.int64)
    np.add.at(table, (true_indices, pred_indices), 1)
    return table


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand Index (Hubert & Arabie 1985), in [-1, 1]; 0 ≈ random clustering."""
    table = contingency_table(labels_true, labels_pred)
    n = table.sum()

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(table.astype(float)).sum()
    sum_rows = comb2(table.sum(axis=1).astype(float)).sum()
    sum_cols = comb2(table.sum(axis=0).astype(float)).sum()
    total_pairs = comb2(np.array(float(n)))

    expected = sum_rows * sum_cols / total_pairs if total_pairs > 0 else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    denominator = maximum - expected
    if np.isclose(denominator, 0.0):
        # Degenerate partitions (e.g. everything in one cluster on both sides):
        # identical partitions get 1, otherwise 0.
        return 1.0 if np.array_equal(np.asarray(labels_true), np.asarray(labels_pred)) else 0.0
    return float((sum_cells - expected) / denominator)


def accuracy_score(labels_true, labels_pred) -> float:
    """Fraction of exactly matching labels."""
    true, pred = _check_paired(labels_true, labels_pred)
    return float(np.mean(true == pred))
