"""Random forest classifier built on :class:`DecisionTreeClassifier`.

Used to reproduce the PatternLDP + RF classification pipeline (Figs. 11, 16,
17; Table IV).  Trees are trained on bootstrap samples with ``sqrt`` feature
subsampling and predictions are averaged class probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.euclidean import resample_to_length
from repro.exceptions import DataShapeError, NotFittedError
from repro.mining.tree import DecisionTreeClassifier
from repro.utils.rng import RngLike, ensure_rng, spawn_rngs
from repro.utils.validation import check_positive_int


def series_to_matrix(dataset, length: int | None = None) -> np.ndarray:
    """Stack (possibly variable-length) series into a feature matrix by resampling."""
    series_list = [np.asarray(s, dtype=float) for s in dataset]
    if not series_list:
        raise DataShapeError("dataset must not be empty")
    target = length or max(s.size for s in series_list)
    return np.vstack([resample_to_length(s, target) for s in series_list])


@dataclass
class RandomForestClassifier:
    """Bagged ensemble of CART trees with majority (probability-averaged) voting."""

    n_estimators: int = 30
    max_depth: int = 10
    min_samples_split: int = 4
    max_features: int | str | None = "sqrt"
    rng: RngLike = None
    trees_: list[DecisionTreeClassifier] = field(default_factory=list, init=False)
    n_classes_: int = field(default=0, init=False)
    n_features_: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.n_estimators = check_positive_int(self.n_estimators, "n_estimators")

    def fit(self, X, y) -> "RandomForestClassifier":
        """Fit the forest on a 2-D feature matrix and integer labels."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise DataShapeError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.size:
            raise DataShapeError(f"X has {X.shape[0]} rows but y has {y.size} labels")
        self.n_classes_ = int(y.max()) + 1
        self.n_features_ = X.shape[1]
        generator = ensure_rng(self.rng)
        tree_rngs = spawn_rngs(generator, self.n_estimators)

        self.trees_ = []
        n = X.shape[0]
        for tree_rng in tree_rngs:
            bootstrap = tree_rng.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=self.max_features,
                rng=tree_rng,
            )
            tree.n_classes_ = self.n_classes_
            tree.fit(X[bootstrap], y[bootstrap])
            self.trees_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Averaged class probabilities over all trees."""
        if not self.trees_:
            raise NotFittedError("RandomForestClassifier must be fitted before predicting")
        X = np.asarray(X, dtype=float)
        totals = np.zeros((X.shape[0], self.n_classes_), dtype=float)
        for tree in self.trees_:
            probabilities = tree.predict_proba(X)
            if probabilities.shape[1] < self.n_classes_:
                padded = np.zeros((X.shape[0], self.n_classes_))
                padded[:, : probabilities.shape[1]] = probabilities
                probabilities = padded
            totals += probabilities
        return totals / len(self.trees_)

    def predict(self, X) -> np.ndarray:
        """Most likely class per sample."""
        return np.argmax(self.predict_proba(X), axis=1)

    def score(self, X, y) -> float:
        """Mean accuracy of ``predict(X)`` against the true labels ``y``."""
        from repro.mining.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))

    def fit_series(self, dataset, labels) -> "RandomForestClassifier":
        """Convenience: fit directly on a list of time series (resampled internally)."""
        matrix = series_to_matrix(dataset)
        self.n_features_ = matrix.shape[1]
        return self.fit(matrix, labels)

    def predict_series(self, dataset) -> np.ndarray:
        """Convenience: predict directly on a list of time series."""
        matrix = series_to_matrix(dataset, length=self.n_features_ or None)
        return self.predict(matrix)
