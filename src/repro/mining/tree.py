"""CART-style decision tree classifier on fixed-length feature vectors.

This is the base learner of :class:`repro.mining.forest.RandomForestClassifier`,
which stands in for scikit-learn's random forest in the classification task
(PatternLDP + RF, Figs. 11/16/17 and Table IV).  The implementation uses Gini
impurity, threshold splits on a random subset of features, and depth /
min-samples stopping rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import DataShapeError, NotFittedError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class _Node:
    """A single tree node; leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    probabilities: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.probabilities is not None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    proportions = counts / total
    return float(1.0 - np.sum(proportions ** 2))


@dataclass
class DecisionTreeClassifier:
    """Binary-split decision tree with Gini impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Minimum number of samples required to attempt a split.
    max_features:
        Number of candidate features examined per split; ``None`` means all,
        ``"sqrt"`` means ``round(sqrt(n_features))`` (the forest default).
    n_thresholds:
        Number of candidate thresholds (quantiles) evaluated per feature.
    """

    max_depth: int = 10
    min_samples_split: int = 4
    max_features: int | str | None = None
    n_thresholds: int = 8
    rng: RngLike = None
    n_classes_: int = field(default=0, init=False)
    _root: Optional[_Node] = field(default=None, init=False, repr=False)

    def _resolve_max_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(round(np.sqrt(n_features))))
        return max(1, min(int(self.max_features), n_features))

    def _leaf(self, y: np.ndarray) -> _Node:
        counts = np.bincount(y, minlength=self.n_classes_).astype(float)
        total = counts.sum()
        probabilities = counts / total if total > 0 else np.full(self.n_classes_, 1.0 / self.n_classes_)
        return _Node(probabilities=probabilities)

    def _best_split(
        self, X: np.ndarray, y: np.ndarray, rng: np.random.Generator
    ) -> tuple[int, float, float] | None:
        """Return (feature, threshold, impurity decrease) of the best split, or None."""
        n_samples, n_features = X.shape
        parent_counts = np.bincount(y, minlength=self.n_classes_)
        parent_impurity = _gini(parent_counts)
        k = self._resolve_max_features(n_features)
        candidate_features = rng.choice(n_features, size=k, replace=False)

        best: tuple[int, float, float] | None = None
        for feature in candidate_features:
            column = X[:, feature]
            low, high = column.min(), column.max()
            if np.isclose(low, high):
                continue
            quantiles = np.linspace(0.0, 1.0, self.n_thresholds + 2)[1:-1]
            thresholds = np.unique(np.quantile(column, quantiles))
            for threshold in thresholds:
                left_mask = column <= threshold
                n_left = int(left_mask.sum())
                if n_left == 0 or n_left == n_samples:
                    continue
                left_counts = np.bincount(y[left_mask], minlength=self.n_classes_)
                right_counts = parent_counts - left_counts
                weighted = (
                    n_left * _gini(left_counts) + (n_samples - n_left) * _gini(right_counts)
                ) / n_samples
                decrease = parent_impurity - weighted
                if best is None or decrease > best[2]:
                    best = (int(feature), float(threshold), float(decrease))
        if best is None or best[2] <= 1e-12:
            return None
        return best

    def _build(self, X: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _Node:
        if (
            depth >= self.max_depth
            or X.shape[0] < self.min_samples_split
            or np.unique(y).size == 1
        ):
            return self._leaf(y)
        split = self._best_split(X, y, rng)
        if split is None:
            return self._leaf(y)
        feature, threshold, _ = split
        mask = X[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def fit(self, X, y) -> "DecisionTreeClassifier":
        """Fit on a 2-D feature matrix and integer labels; returns ``self``."""
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int)
        if X.ndim != 2:
            raise DataShapeError(f"X must be 2-D, got shape {X.shape}")
        if X.shape[0] != y.size:
            raise DataShapeError(f"X has {X.shape[0]} rows but y has {y.size} labels")
        # Respect a pre-set class count (the forest sets it so that bootstrap
        # samples missing the largest label still produce full-width leaves).
        self.n_classes_ = max(self.n_classes_, int(y.max()) + 1 if y.size else 0)
        generator = ensure_rng(self.rng)
        self._root = self._build(X, y, depth=0, rng=generator)
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix of shape (n_samples, n_classes)."""
        if self._root is None:
            raise NotFittedError("DecisionTreeClassifier must be fitted before predicting")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataShapeError(f"X must be 2-D, got shape {X.shape}")
        output = np.zeros((X.shape[0], self.n_classes_), dtype=float)
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            output[i] = node.probabilities
        return output

    def predict(self, X) -> np.ndarray:
        """Most likely class per sample."""
        return np.argmax(self.predict_proba(X), axis=1)
