"""Nearest-shape assignment: the paper's downstream use of extracted shapes.

For the clustering task the extracted top-k frequent shapes act as cluster
centroids: each series is assigned to its closest shape and the resulting
partition is scored with ARI.  For the classification task the most frequent
shape(s) per class act as the classification criterion: a test series is
predicted to belong to the class of its closest shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.distance.registry import shape_distance
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.sax.compressive import CompressiveSAX

Shape = tuple[str, ...]


def assign_to_shapes(
    sequences: Sequence[Shape],
    shapes: Sequence[Shape],
    metric: str = "dtw",
    alphabet_size: int = 4,
) -> np.ndarray:
    """Assign each symbolic sequence to the index of its closest shape."""
    shape_list = [tuple(s) for s in shapes]
    if not shape_list:
        raise EmptyDatasetError("shapes must not be empty")
    assignments = np.zeros(len(sequences), dtype=int)
    for i, sequence in enumerate(sequences):
        distances = [
            shape_distance(sequence, shape, metric=metric, alphabet_size=alphabet_size)
            for shape in shape_list
        ]
        assignments[i] = int(np.argmin(distances))
    return assignments


@dataclass
class NearestShapeClassifier:
    """Classifies a raw time series by its closest labelled shape.

    ``labelled_shapes`` maps each class label to the shapes extracted for that
    class (for PrivShape's classification task the per-class top-k shapes).
    The classifier transforms an incoming series with the same Compressive SAX
    parameters and predicts the label of the closest shape.
    """

    labelled_shapes: dict[int, list[Shape]]
    transformer: CompressiveSAX
    metric: str = "sed"
    _flat: list[tuple[int, Shape]] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        self._flat = [
            (int(label), tuple(shape))
            for label, shapes in self.labelled_shapes.items()
            for shape in shapes
        ]
        if not self._flat:
            raise EmptyDatasetError("labelled_shapes must contain at least one shape")

    def predict_sequence(self, sequence: Shape) -> int:
        """Predict the label of an already-transformed symbolic sequence."""
        if not self._flat:
            raise NotFittedError("no labelled shapes available")
        distances = [
            shape_distance(
                sequence, shape, metric=self.metric, alphabet_size=self.transformer.alphabet_size
            )
            for _, shape in self._flat
        ]
        return self._flat[int(np.argmin(distances))][0]

    def predict(self, dataset) -> np.ndarray:
        """Predict labels for raw numeric time series."""
        sequences = [self.transformer.transform(series) for series in dataset]
        return np.asarray([self.predict_sequence(seq) for seq in sequences], dtype=int)
