"""KShape clustering (Paparrizos & Gravano, SIGMOD 2015).

The paper uses KShape to extract ground-truth shape centers on the Trace
dataset (Fig. 10) because KShape is suited to series that are *not* warped in
time.  KShape assigns by shape-based distance (1 - maximum normalized
cross-correlation over shifts) and updates each centroid as the leading
eigenvector of a shape-extraction matrix built from its members.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.euclidean import resample_to_length
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.sax.normalization import zscore_normalize
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def _ncc_max(x: np.ndarray, y: np.ndarray) -> tuple[float, int]:
    """Maximum normalized cross-correlation between two z-normalized series.

    Returns ``(max ncc value, shift)`` where a positive shift means ``y`` is
    delayed relative to ``x``.
    """
    denominator = np.linalg.norm(x) * np.linalg.norm(y)
    if denominator < 1e-12:
        return 0.0, 0
    correlation = np.correlate(x, y, mode="full") / denominator
    best = int(np.argmax(correlation))
    shift = best - (y.size - 1)
    return float(correlation[best]), shift


def shape_based_distance(x, y) -> float:
    """SBD(x, y) = 1 - max_w NCC_c(x, y); 0 for identical shapes, up to 2."""
    x_norm = zscore_normalize(np.asarray(x, dtype=float))
    y_norm = zscore_normalize(np.asarray(y, dtype=float))
    value, _ = _ncc_max(x_norm, y_norm)
    return float(1.0 - value)


def _align_to(reference: np.ndarray, series: np.ndarray) -> np.ndarray:
    """Shift ``series`` so that it best aligns (by NCC) with ``reference``."""
    _, shift = _ncc_max(reference, series)
    aligned = np.zeros_like(reference)
    if shift >= 0:
        aligned[shift:] = series[: series.size - shift]
    else:
        aligned[:shift] = series[-shift:]
    return aligned


@dataclass
class KShape:
    """Shape-based clustering of equal-length (or resampled) time series."""

    n_clusters: int = 3
    max_iter: int = 30
    rng: RngLike = None
    cluster_centers_: list[np.ndarray] = field(default_factory=list, init=False)
    labels_: np.ndarray | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        self.n_clusters = check_positive_int(self.n_clusters, "n_clusters")
        self.max_iter = check_positive_int(self.max_iter, "max_iter")

    def _shape_extraction(self, members: np.ndarray, centroid: np.ndarray) -> np.ndarray:
        """Update one centroid from its aligned members (Rayleigh-quotient maximizer)."""
        if members.shape[0] == 0:
            return centroid
        aligned = np.vstack([_align_to(centroid, m) for m in members])
        aligned = np.vstack([zscore_normalize(row) for row in aligned])
        length = aligned.shape[1]
        s = aligned.T @ aligned
        q = np.eye(length) - np.ones((length, length)) / length
        m = q.T @ s @ q
        eigenvalues, eigenvectors = np.linalg.eigh(m)
        new_centroid = eigenvectors[:, int(np.argmax(eigenvalues))]
        # The eigenvector sign is arbitrary; pick the orientation closer to the members.
        distance_pos = np.sum((aligned - new_centroid) ** 2)
        distance_neg = np.sum((aligned + new_centroid) ** 2)
        if distance_neg < distance_pos:
            new_centroid = -new_centroid
        return zscore_normalize(new_centroid)

    def fit(self, dataset) -> "KShape":
        """Cluster the dataset; returns ``self``."""
        series_list = [np.asarray(s, dtype=float) for s in dataset]
        if not series_list:
            raise EmptyDatasetError("cannot cluster an empty dataset")
        target = max(s.size for s in series_list)
        matrix = np.vstack(
            [zscore_normalize(resample_to_length(s, target)) for s in series_list]
        )
        generator = ensure_rng(self.rng)
        n = matrix.shape[0]

        labels = generator.integers(0, self.n_clusters, size=n)
        centroids = np.vstack(
            [
                matrix[labels == c].mean(axis=0) if np.any(labels == c) else matrix[int(generator.integers(0, n))]
                for c in range(self.n_clusters)
            ]
        )
        for _ in range(self.max_iter):
            # Refinement step: shape extraction per cluster.
            for c in range(self.n_clusters):
                centroids[c] = self._shape_extraction(matrix[labels == c], centroids[c])
            # Assignment step: shape-based distance.
            new_labels = np.zeros(n, dtype=int)
            for i in range(n):
                distances = [shape_based_distance(matrix[i], centroids[c]) for c in range(self.n_clusters)]
                new_labels[i] = int(np.argmin(distances))
            if np.array_equal(new_labels, labels):
                break
            labels = new_labels

        self.labels_ = labels
        self.cluster_centers_ = [row.copy() for row in centroids]
        return self

    def predict(self, dataset) -> np.ndarray:
        """Assign each series to the nearest fitted shape centroid."""
        if not self.cluster_centers_:
            raise NotFittedError("KShape must be fitted before predict()")
        labels = np.zeros(len(dataset), dtype=int)
        for i, series in enumerate(dataset):
            distances = [
                shape_based_distance(series, centroid) for centroid in self.cluster_centers_
            ]
            labels[i] = int(np.argmin(distances))
        return labels

    def fit_predict(self, dataset) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(dataset).labels_
