"""Lloyd's KMeans for time series with DTW or Euclidean assignment.

The paper runs scikit-learn KMeans with default settings on PatternLDP's
perturbed output and uses the resulting cluster labels for ARI (Fig. 9,
Table III).  This implementation mirrors that behaviour: Euclidean (or DTW)
assignment, resampled-mean centroid updates, k-means++-style initialization,
and a small number of restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.dtw import dtw_distance
from repro.distance.euclidean import euclidean_distance, resample_to_length
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def _pairwise_distance(series, centroid, metric: str, window: int | None) -> float:
    if metric == "dtw":
        return dtw_distance(series, centroid, window=window)
    if metric == "euclidean":
        return euclidean_distance(series, centroid)
    raise ValueError(f"metric must be 'dtw' or 'euclidean', got {metric!r}")


@dataclass
class TimeSeriesKMeans:
    """KMeans clustering of (possibly variable-length) time series.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    metric:
        ``"euclidean"`` (default, matching sklearn's KMeans on raw vectors) or
        ``"dtw"``.
    max_iter:
        Maximum Lloyd iterations per restart.
    n_init:
        Number of random restarts; the solution with the lowest inertia wins.
    dtw_window:
        Optional Sakoe–Chiba band for DTW assignment (keeps DTW tractable on
        long series).
    """

    n_clusters: int = 3
    metric: str = "euclidean"
    max_iter: int = 50
    n_init: int = 2
    dtw_window: int | None = 10
    tol: float = 1e-4
    rng: RngLike = None
    cluster_centers_: list[np.ndarray] = field(default_factory=list, init=False)
    labels_: np.ndarray | None = field(default=None, init=False)
    inertia_: float = field(default=np.inf, init=False)

    def __post_init__(self) -> None:
        self.n_clusters = check_positive_int(self.n_clusters, "n_clusters")
        self.max_iter = check_positive_int(self.max_iter, "max_iter")
        self.n_init = check_positive_int(self.n_init, "n_init")
        if self.metric not in ("euclidean", "dtw"):
            raise ValueError(f"metric must be 'euclidean' or 'dtw', got {self.metric!r}")

    # ------------------------------------------------------------------ fitting

    def _to_matrix(self, dataset: list[np.ndarray]) -> np.ndarray:
        """Resample all series to a common length so centroids can be averaged."""
        target = max(s.size for s in dataset)
        return np.vstack([resample_to_length(s, target) for s in dataset])

    def _init_centroids(self, matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ style seeding on the resampled matrix."""
        n = matrix.shape[0]
        centroids = [matrix[int(rng.integers(0, n))]]
        while len(centroids) < self.n_clusters:
            distances = np.min(
                [np.sum((matrix - c) ** 2, axis=1) for c in centroids], axis=0
            )
            total = distances.sum()
            if total <= 0:
                centroids.append(matrix[int(rng.integers(0, n))])
                continue
            probabilities = distances / total
            centroids.append(matrix[int(rng.choice(n, p=probabilities))])
        return np.vstack(centroids)

    def _assign(self, matrix: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, float]:
        if self.metric == "euclidean":
            # Vectorized assignment: ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2.
            squared = (
                np.sum(matrix ** 2, axis=1)[:, None]
                - 2.0 * matrix @ centroids.T
                + np.sum(centroids ** 2, axis=1)[None, :]
            )
            squared = np.maximum(squared, 0.0)
            labels = np.argmin(squared, axis=1)
            inertia = float(np.sum(squared[np.arange(matrix.shape[0]), labels]))
            return labels.astype(int), inertia
        n = matrix.shape[0]
        labels = np.zeros(n, dtype=int)
        inertia = 0.0
        for i in range(n):
            best_cluster, best_distance = 0, np.inf
            for c in range(centroids.shape[0]):
                distance = _pairwise_distance(
                    matrix[i], centroids[c], self.metric, self.dtw_window
                )
                if distance < best_distance:
                    best_cluster, best_distance = c, distance
            labels[i] = best_cluster
            inertia += best_distance ** 2
        return labels, inertia

    def fit(self, dataset) -> "TimeSeriesKMeans":
        """Cluster the dataset (a sequence of 1-D series); returns ``self``."""
        series_list = [np.asarray(s, dtype=float) for s in dataset]
        if not series_list:
            raise EmptyDatasetError("cannot cluster an empty dataset")
        matrix = self._to_matrix(series_list)
        generator = ensure_rng(self.rng)

        best_labels: np.ndarray | None = None
        best_centroids: np.ndarray | None = None
        best_inertia = np.inf
        for _ in range(self.n_init):
            centroids = self._init_centroids(matrix, generator)
            labels = np.full(matrix.shape[0], -1, dtype=int)
            inertia = np.inf
            for _ in range(self.max_iter):
                new_labels, inertia = self._assign(matrix, centroids)
                if np.array_equal(new_labels, labels):
                    break
                labels = new_labels
                for c in range(self.n_clusters):
                    members = matrix[labels == c]
                    if members.shape[0]:
                        centroids[c] = members.mean(axis=0)
                    else:
                        # Re-seed an empty cluster at the farthest point.
                        distances, _ = self._farthest_point(matrix, centroids)
                        centroids[c] = matrix[distances]
            if inertia < best_inertia:
                best_inertia = inertia
                best_labels = labels.copy()
                best_centroids = centroids.copy()

        self.labels_ = best_labels
        self.cluster_centers_ = [row.copy() for row in best_centroids]
        self.inertia_ = float(best_inertia)
        return self

    @staticmethod
    def _farthest_point(matrix: np.ndarray, centroids: np.ndarray) -> tuple[int, float]:
        distances = np.min(
            [np.sum((matrix - c) ** 2, axis=1) for c in centroids], axis=0
        )
        index = int(np.argmax(distances))
        return index, float(distances[index])

    # --------------------------------------------------------------- prediction

    def predict(self, dataset) -> np.ndarray:
        """Assign each series to its nearest fitted centroid."""
        if not self.cluster_centers_:
            raise NotFittedError("TimeSeriesKMeans must be fitted before predict()")
        labels = np.zeros(len(dataset), dtype=int)
        for i, series in enumerate(dataset):
            arr = np.asarray(series, dtype=float)
            distances = [
                _pairwise_distance(arr, centroid, self.metric, self.dtw_window)
                for centroid in self.cluster_centers_
            ]
            labels[i] = int(np.argmin(distances))
        return labels

    def fit_predict(self, dataset) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(dataset).labels_
