"""Matching extracted shapes to ground truth and quantitative shape measures.

Tables III and IV of the paper report, for every mechanism, the DTW / SED /
Euclidean distances between the mechanism's extracted shapes and the
ground-truth shapes (both expressed as Compressive-SAX symbol sequences), plus
the downstream ARI / accuracy.  This module implements the matching (minimum-
cost one-to-one assignment by DTW, as in the paper's figure captions) and the
aggregate distance measures.
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence

import numpy as np

from repro.distance.registry import shape_distance

Shape = tuple[str, ...]


def _assignment_cost_matrix(
    extracted: Sequence[Shape],
    ground_truth: Sequence[Shape],
    metric: str,
    alphabet_size: int,
) -> np.ndarray:
    matrix = np.zeros((len(extracted), len(ground_truth)), dtype=float)
    for i, shape in enumerate(extracted):
        for j, truth in enumerate(ground_truth):
            matrix[i, j] = shape_distance(shape, truth, metric=metric, alphabet_size=alphabet_size)
    return matrix


def match_shapes_to_ground_truth(
    extracted: Sequence[Shape],
    ground_truth: Sequence[Shape],
    metric: str = "dtw",
    alphabet_size: int = 4,
) -> list[tuple[int, int]]:
    """One-to-one matching of extracted shapes to ground-truth shapes.

    Returns a list of ``(extracted_index, ground_truth_index)`` pairs that
    minimizes the summed distance.  For the small k used in the paper (k ≤ 6)
    exact enumeration over permutations is cheap; for larger inputs a greedy
    matching is used.
    """
    extracted = [tuple(s) for s in extracted]
    ground_truth = [tuple(s) for s in ground_truth]
    if not extracted or not ground_truth:
        return []
    costs = _assignment_cost_matrix(extracted, ground_truth, metric, alphabet_size)
    n, m = costs.shape

    if min(n, m) <= 7:
        # Exact: permute the smaller side over the larger side.
        if n <= m:
            best_cost, best_pairs = np.inf, []
            for permutation in permutations(range(m), n):
                cost = sum(costs[i, j] for i, j in enumerate(permutation))
                if cost < best_cost:
                    best_cost = cost
                    best_pairs = [(i, j) for i, j in enumerate(permutation)]
            return best_pairs
        best_cost, best_pairs = np.inf, []
        for permutation in permutations(range(n), m):
            cost = sum(costs[i, j] for j, i in enumerate(permutation))
            if cost < best_cost:
                best_cost = cost
                best_pairs = [(i, j) for j, i in enumerate(permutation)]
        return best_pairs

    # Greedy fallback for large k.
    pairs: list[tuple[int, int]] = []
    used_rows: set[int] = set()
    used_cols: set[int] = set()
    flattened = sorted(
        ((costs[i, j], i, j) for i in range(n) for j in range(m)), key=lambda item: item[0]
    )
    for _, i, j in flattened:
        if i in used_rows or j in used_cols:
            continue
        pairs.append((i, j))
        used_rows.add(i)
        used_cols.add(j)
        if len(pairs) == min(n, m):
            break
    return pairs


def shape_quality_measures(
    extracted: Sequence[Shape],
    ground_truth: Sequence[Shape],
    alphabet_size: int = 4,
    metrics: Sequence[str] = ("dtw", "sed", "euclidean"),
) -> dict[str, float]:
    """Summed distances between matched extracted / ground-truth shapes.

    This is the quantity reported in Tables III and IV: shapes are matched by
    DTW, then the total DTW, SED, and Euclidean distances over the matched
    pairs are reported.  Unmatched ground-truth shapes (when fewer shapes were
    extracted than exist) are charged the distance to the closest extracted
    shape so that missing shapes are penalized rather than ignored.
    """
    extracted = [tuple(s) for s in extracted]
    ground_truth = [tuple(s) for s in ground_truth]
    results: dict[str, float] = {}
    if not ground_truth:
        return {metric: 0.0 for metric in metrics}
    if not extracted:
        return {metric: float("inf") for metric in metrics}

    pairs = match_shapes_to_ground_truth(
        extracted, ground_truth, metric="dtw", alphabet_size=alphabet_size
    )
    matched_truth = {j for _, j in pairs}
    for metric in metrics:
        total = 0.0
        for i, j in pairs:
            total += shape_distance(
                extracted[i], ground_truth[j], metric=metric, alphabet_size=alphabet_size
            )
        for j, truth in enumerate(ground_truth):
            if j in matched_truth:
                continue
            total += min(
                shape_distance(shape, truth, metric=metric, alphabet_size=alphabet_size)
                for shape in extracted
            )
        results[metric] = float(total)
    return results
