"""PrivShape reproduction: shape extraction in time series under user-level LDP.

This package reproduces *PrivShape: Extracting Shapes in Time Series under
User-Level Local Differential Privacy* (ICDE 2024).  The most common entry
points are re-exported here:

>>> from repro import PrivShape, PrivShapeConfig, CompressiveSAX, symbols_like
>>> dataset = symbols_like(n_instances=600, rng=0)
>>> transformer = CompressiveSAX(alphabet_size=6, segment_length=25)
>>> sequences = transformer.transform_dataset(dataset.series)
>>> mechanism = PrivShape(PrivShapeConfig(epsilon=4.0, top_k=6, alphabet_size=6))
>>> result = mechanism.extract(sequences, rng=0)
>>> len(result.shapes) <= 6
True
"""

from repro.core.baseline import BaselineMechanism
from repro.core.config import BaselineConfig, PrivShapeConfig
from repro.core.pipeline import (
    ClassificationTaskResult,
    ClusteringTaskResult,
    run_classification_task,
    run_clustering_task,
)
from repro.core.privshape import PrivShape
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.baselines.patternldp import PatternLDP
from repro.datasets import (
    LabeledDataset,
    augment_dataset,
    load_ucr_tsv,
    symbols_like,
    trace_like,
    trigonometric_waves,
    trigonometric_waves_prefix,
)
from repro.sax.compressive import CompressiveSAX
from repro.sax.sax import SAXTransformer
from repro.service import (
    ClientReporter,
    CollectionPlan,
    PrivShapeEngine,
    ProtocolDriver,
    ReportBatch,
    RoundSpec,
    ShardedAggregator,
    SyntheticShapeStream,
)

__version__ = "1.1.0"

__all__ = [
    "PrivShape",
    "PrivShapeConfig",
    "BaselineMechanism",
    "BaselineConfig",
    "PatternLDP",
    "ShapeExtractionResult",
    "LabeledShapeExtractionResult",
    "run_clustering_task",
    "run_classification_task",
    "ClusteringTaskResult",
    "ClassificationTaskResult",
    "CompressiveSAX",
    "SAXTransformer",
    "LabeledDataset",
    "symbols_like",
    "trace_like",
    "trigonometric_waves",
    "trigonometric_waves_prefix",
    "augment_dataset",
    "load_ucr_tsv",
    "CollectionPlan",
    "RoundSpec",
    "ClientReporter",
    "ReportBatch",
    "ShardedAggregator",
    "PrivShapeEngine",
    "ProtocolDriver",
    "SyntheticShapeStream",
    "__version__",
]
