"""PrivShape reproduction: shape extraction in time series under user-level LDP.

This package reproduces *PrivShape: Extracting Shapes in Time Series under
User-Level Local Differential Privacy* (ICDE 2024).  The recommended entry
point is the experiment API: describe a run with one composable
:class:`ExperimentSpec` and hand it to a pipeline — every registered
mechanism (``privshape``, ``baseline``, ``patternldp``, ``pem``, ``pid``)
runs through the same dispatch:

>>> from repro import ExperimentSpec, PrivacySpec, symbols_like, run_clustering_task
>>> spec = ExperimentSpec(mechanism="privshape", privacy=PrivacySpec(epsilon=4.0))
>>> result = run_clustering_task(symbols_like(n_instances=600, rng=0), spec, rng=0)
>>> -1.0 <= result.ari <= 1.0
True

Specs round-trip through JSON (``spec.to_json()`` / ``ExperimentSpec.from_json``)
and are consumed identically by the offline pipelines, ``repro.cli``, and the
federated collection service (:class:`ProtocolDriver`).  Execution is unified
behind ``spec.run(data, backend=...)``: the ``inline``, ``sharded``,
``gateway``, ``cluster``, and ``subprocess`` backends all return the same
structured :class:`RunResult` artifact, byte-identical under one master seed
(the ``cluster`` backend runs a supervised multi-process coordinator/worker
topology — see :mod:`repro.cluster`), and :class:`SweepSpec` expands
eps/mechanism/dataset/SAX grids over any backend.
Lower-level use — building a mechanism directly — goes through the
registries:

>>> from repro import mechanism_registry, make_frequency_oracle
>>> sorted(mechanism_registry.names())[:2]
['baseline', 'patternldp']
>>> make_frequency_oracle("auto", 1.0, list(range(500))).domain_size
500

The legacy configuration classes (``PrivShapeConfig``, ``BaselineConfig``)
remain importable for backwards compatibility but are deprecated in favour of
:class:`ExperimentSpec`.
"""

# NOTE: import order matters here.  The core package must load before
# repro.api is touched at top level: core/__init__ imports core.pipeline,
# which imports repro.api.mechanisms, which in turn imports core submodules —
# the cycle resolves only because every core module api.mechanisms needs is
# already loaded by the time core/__init__ reaches pipeline.
from repro.core.baseline import BaselineMechanism
from repro.core.pipeline import (
    ClassificationTaskResult,
    ClusteringTaskResult,
    run_classification_task,
    run_clustering_task,
)
from repro.core.privshape import PrivShape
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.api import (
    CollectionSpec,
    DataSpec,
    ExperimentSpec,
    PrivacySpec,
    RunResult,
    RunSequence,
    run_windows,
    SAXSpec,
    SweepResult,
    SweepSpec,
    available_executors,
    available_mechanisms,
    available_oracles,
    executor_registry,
    make_frequency_oracle,
    mechanism_registry,
    oracle_registry,
    oracle_variances,
    register_executor,
    register_mechanism,
    register_oracle,
    run_spec,
    select_frequency_oracle,
)
from repro.baselines.patternldp import PatternLDP, PIDPerturbation
from repro.baselines.pem import PrefixExtendingMiner
from repro.datasets import (
    LabeledDataset,
    augment_dataset,
    load_ucr_tsv,
    symbols_like,
    trace_like,
    trigonometric_waves,
    trigonometric_waves_prefix,
)
from repro.sax.compressive import CompressiveSAX
from repro.sax.sax import SAXTransformer
from repro.service import (
    ClientReporter,
    CollectionPlan,
    DriftingShapeStream,
    PrivShapeEngine,
    ProtocolDriver,
    ReportBatch,
    RoundSpec,
    ShardedAggregator,
    SyntheticShapeStream,
)
from repro.continual import (
    ContinualEngine,
    ContinualResult,
    DriftDetector,
    WindowController,
    WindowPlan,
    WindowSpec,
)
from repro.server import (
    CheckpointStore,
    CollectionGateway,
    GatewayClient,
    run_loadgen,
    serve_in_thread,
)
from repro.cluster import (
    ClusterSpec,
    Coordinator,
    ShardWorker,
    Supervisor,
    launch_cluster,
    run_cluster_loadgen,
)

__version__ = "1.7.0"

#: Legacy config classes served via module __getattr__ with a deprecation
#: warning; ExperimentSpec is the composable replacement.
_DEPRECATED_CONFIGS = ("PrivShapeConfig", "BaselineConfig", "MechanismConfig")

__all__ = [
    "PrivShape",
    "PrivShapeConfig",
    "BaselineMechanism",
    "BaselineConfig",
    "PatternLDP",
    "PIDPerturbation",
    "PrefixExtendingMiner",
    "ExperimentSpec",
    "PrivacySpec",
    "SAXSpec",
    "CollectionSpec",
    "DataSpec",
    "RunResult",
    "RunSequence",
    "run_windows",
    "SweepSpec",
    "SweepResult",
    "run_spec",
    "executor_registry",
    "register_executor",
    "available_executors",
    "mechanism_registry",
    "register_mechanism",
    "available_mechanisms",
    "oracle_registry",
    "register_oracle",
    "available_oracles",
    "make_frequency_oracle",
    "select_frequency_oracle",
    "oracle_variances",
    "ShapeExtractionResult",
    "LabeledShapeExtractionResult",
    "run_clustering_task",
    "run_classification_task",
    "ClusteringTaskResult",
    "ClassificationTaskResult",
    "CompressiveSAX",
    "SAXTransformer",
    "LabeledDataset",
    "symbols_like",
    "trace_like",
    "trigonometric_waves",
    "trigonometric_waves_prefix",
    "augment_dataset",
    "load_ucr_tsv",
    "CollectionPlan",
    "RoundSpec",
    "ClientReporter",
    "ReportBatch",
    "ShardedAggregator",
    "PrivShapeEngine",
    "ProtocolDriver",
    "SyntheticShapeStream",
    "DriftingShapeStream",
    "WindowSpec",
    "WindowPlan",
    "WindowController",
    "ContinualEngine",
    "ContinualResult",
    "DriftDetector",
    "CollectionGateway",
    "GatewayClient",
    "CheckpointStore",
    "run_loadgen",
    "serve_in_thread",
    "ClusterSpec",
    "Coordinator",
    "ShardWorker",
    "Supervisor",
    "launch_cluster",
    "run_cluster_loadgen",
    "__version__",
]


def __getattr__(name: str):
    """Serve deprecated legacy names with a warning (PEP 562)."""
    if name in _DEPRECATED_CONFIGS:
        import warnings

        from repro.core import config as _config

        warnings.warn(
            f"repro.{name} is deprecated; compose a repro.ExperimentSpec "
            "(PrivacySpec / SAXSpec / CollectionSpec) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(_config, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
