"""Cluster topology description shared by the coordinator and its clients.

A :class:`ClusterSpec` is a plain-data record of the collection cluster: one
:class:`WorkerAddress` per shard worker, in worker-index order.  Clients use
it to route report batches — :meth:`ClusterSpec.assignments` partitions the
user-id space ``[0, n_users)`` into one contiguous slice per worker with the
exact same :func:`~repro.service.population.worker_slices` arithmetic the
single-gateway load generator uses, so a batch streamed to worker *i* under a
cluster run carries precisely the users a ``workers=n`` loadgen slice *i*
would have carried.  Because the spec is JSON round-trippable, the
coordinator can hand it to any client in its ``hello`` payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Iterator

import numpy as np

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class WorkerAddress:
    """Where one shard worker listens, and (when known) its process id."""

    index: int
    host: str
    port: int
    pid: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WorkerAddress":
        pid = data.get("pid")
        return cls(
            index=int(data["index"]),
            host=str(data["host"]),
            port=int(data["port"]),
            pid=None if pid is None else int(pid),
        )


@dataclass(frozen=True)
class ClusterSpec:
    """The worker topology of one collection cluster, in index order."""

    workers: tuple[WorkerAddress, ...]

    def __post_init__(self) -> None:
        if not self.workers:
            raise ConfigurationError("a cluster needs at least one worker")
        indexes = [worker.index for worker in self.workers]
        if indexes != list(range(len(self.workers))):
            raise ConfigurationError(
                f"worker indexes must be contiguous from 0, got {indexes}"
            )

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def __iter__(self) -> Iterator[WorkerAddress]:
        return iter(self.workers)

    def __getitem__(self, index: int) -> WorkerAddress:
        return self.workers[index]

    # ---------------------------------------------------------------- routing

    def slice_bounds(self, n_users: int) -> list[int]:
        """The ``n_workers + 1`` contiguous partition bounds of ``[0, n_users)``."""
        if n_users < 0:
            raise ConfigurationError(f"n_users must be >= 0, got {n_users}")
        return [
            int(b) for b in np.linspace(0, n_users, self.n_workers + 1).astype(np.int64)
        ]

    def assignments(self, n_users: int) -> list[tuple[int, int]]:
        """One ``(start, stop)`` user-id slice per worker, possibly empty.

        Unlike :func:`~repro.service.population.worker_slices`, empty slices
        are kept so the list aligns positionally with :attr:`workers` — the
        non-empty entries are identical to ``worker_slices(n_users, n)``.
        """
        bounds = self.slice_bounds(n_users)
        return [(bounds[i], bounds[i + 1]) for i in range(self.n_workers)]

    def worker_for(self, user_id: int, n_users: int) -> WorkerAddress:
        """The worker owning ``user_id`` under an ``n_users`` population."""
        if not 0 <= user_id < n_users:
            raise ConfigurationError(
                f"user id {user_id} outside population [0, {n_users})"
            )
        bounds = self.slice_bounds(n_users)
        # bounds is sorted; the owning slice is the last one starting at or
        # before user_id (empty slices have start == stop and never match).
        index = int(np.searchsorted(np.asarray(bounds), user_id, side="right")) - 1
        return self.workers[index]

    # --------------------------------------------------------------- plumbing

    def with_pid(self, index: int, pid: int | None) -> "ClusterSpec":
        """A copy with worker ``index``'s pid replaced (after a restart)."""
        workers = list(self.workers)
        workers[index] = replace(workers[index], pid=pid)
        return ClusterSpec(tuple(workers))

    def to_dict(self) -> dict[str, Any]:
        return {"workers": [worker.to_dict() for worker in self.workers]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClusterSpec":
        return cls(
            tuple(WorkerAddress.from_dict(worker) for worker in data["workers"])
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ClusterSpec":
        return cls.from_dict(json.loads(text))
