"""In-process cluster hosting for tests, benchmarks, and the executor.

``launch_cluster`` boots the whole topology — a :class:`~repro.cluster.
supervisor.Supervisor` with its N OS-process shard workers, plus a
:class:`~repro.cluster.coordinator.Coordinator` served on a daemon thread —
yields a :class:`ClusterHandle`, and tears everything down (including the
scratch state directory) on exit.
"""

from __future__ import annotations

import shutil
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.cluster.coordinator import Coordinator
from repro.cluster.supervisor import Supervisor
from repro.server.testing import ServerHandle, serve_in_thread
from repro.utils.rng import RngLike


@dataclass
class ClusterHandle:
    """A running cluster: its coordinator, supervisor, and serving thread."""

    coordinator: Coordinator
    supervisor: Supervisor
    handle: ServerHandle

    @property
    def host(self) -> str:
        return self.handle.host

    @property
    def port(self) -> int:
        return self.handle.port

    def client(self, timeout: float = 60.0):
        """A fresh blocking client connected to the coordinator."""
        return self.handle.client(timeout=timeout)


@contextmanager
def launch_cluster(
    config,
    *,
    n_users: int,
    n_workers: int = 2,
    rng: RngLike = None,
    windows=None,
    directory: str | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    n_shards: int = 1,
    queue_depth: int = 64,
    checkpoint_every: int = 16,
    mp_context: str = "spawn",
    start_timeout: float = 120.0,
) -> Iterator[ClusterHandle]:
    """Boot a supervised cluster, yield its handle, tear it all down after.

    Without ``directory`` the worker state lives in a scratch directory that
    is removed on exit; pass one to keep checkpoints around (e.g. to restart
    the same cluster later).
    """
    scratch = directory is None
    state_dir = tempfile.mkdtemp(prefix="repro-cluster-") if scratch else directory
    supervisor = Supervisor(
        n_workers,
        state_dir,
        host=host,
        n_shards=n_shards,
        queue_depth=queue_depth,
        checkpoint_every=checkpoint_every,
        mp_context=mp_context,
    )
    handle = None
    try:
        supervisor.start(timeout=start_timeout)
        coordinator = Coordinator(
            config,
            supervisor.cluster_spec(),
            n_users=n_users,
            rng=rng,
            windows=windows,
            supervisor=supervisor,
        )
        handle = serve_in_thread(coordinator, host, port)
        yield ClusterHandle(coordinator, supervisor, handle)
    finally:
        if handle is not None:
            handle.stop()
        supervisor.stop()
        if scratch:
            shutil.rmtree(Path(state_dir), ignore_errors=True)
