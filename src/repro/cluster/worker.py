"""The cluster's data plane: one OS process aggregating one user-id slice.

A :class:`ShardWorker` is the collection gateway's aggregation loop with the
engine taken out: it owns no protocol state machine and no noise plan — the
coordinator tells it which round is open (``open_round``), it ingests
idempotent report batches for the users in its slice exactly like the
gateway does (bounded shard queues, dedup by batch id, vectorized int64
accumulation), and at ``collect`` time it ships its merged
:class:`~repro.service.rounds.RoundAccumulator` state back for the
coordinator's exact cross-worker merge.

Durability mirrors the gateway: with a checkpoint directory configured the
worker snapshots atomically (round spec + slice + accumulator + dedup ids +
counters), and :meth:`ShardWorker.boot` restores a killed worker to its
last snapshot.  Replaying the slice from the top then reconstructs the lost
tail exactly — already-checkpointed batches are deduplicated, lost ones are
re-accumulated — which is what makes a mid-round ``SIGKILL`` invisible in
the final estimates.

``run_worker_process`` is the picklable ``multiprocessing`` entry point the
:class:`~repro.cluster.supervisor.Supervisor` spawns.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional

from repro.exceptions import ProtocolStateError, ReproError, ServerError, WireFormatError
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.server.base import SocketServiceBase
from repro.server.portfile import publish_port
from repro.server.state import CheckpointStore
from repro.server.wire import PROTOCOL_VERSION, batch_from_wire, check_batch_id
from repro.service.aggregator import ShardedAggregator
from repro.service.plan import RoundSpec


class ShardWorker(SocketServiceBase):
    """Engine-less round aggregation over one disjoint user-id slice."""

    def __init__(
        self,
        *,
        worker_index: int = 0,
        n_shards: int = 1,
        queue_depth: int = 64,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
    ) -> None:
        if worker_index < 0:
            raise ValueError(f"worker_index must be >= 0, got {worker_index}")
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._init_plumbing(n_shards, queue_depth)
        self.worker_index = int(worker_index)
        self.checkpoint_every = max(int(checkpoint_every), 0)
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.round_spec: Optional[RoundSpec] = None
        self.slice_start = 0
        self.slice_stop = 0
        self.aggregator: Optional[ShardedAggregator] = None
        self.seen_batches: set[str] = set()
        self.total_reports = 0
        self.accepted_batches = 0
        self.duplicate_batches = 0
        self.rejected_batches = 0
        self.checkpoints_written = 0
        self._accepted_since_checkpoint = 0
        #: True when this instance was rebuilt from a checkpoint (observability).
        self.restored = False
        self._init_worker_metrics()

    # ---------------------------------------------------------------- factory

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_dir: str,
        *,
        queue_depth: int | None = None,
        checkpoint_every: int = 0,
    ) -> "ShardWorker":
        """Resume the worker persisted in ``checkpoint_dir`` (exact recovery)."""
        store = CheckpointStore(checkpoint_dir)
        state = store.load()
        if state is None:
            raise ServerError(f"no checkpoint found under {store.directory}")
        worker = cls.__new__(cls)
        worker._init_plumbing(
            int(state["n_shards"]),
            int(state["queue_depth"]) if queue_depth is None else int(queue_depth),
        )
        worker.worker_index = int(state["worker_index"])
        worker.checkpoint_every = max(int(checkpoint_every), 0)
        worker.store = store
        worker.round_spec = (
            None if state["round"] is None else RoundSpec.from_dict(state["round"])
        )
        worker.slice_start = int(state["slice_start"])
        worker.slice_stop = int(state["slice_stop"])
        worker.aggregator = (
            None
            if state["aggregator"] is None
            else ShardedAggregator.from_state(state["aggregator"])
        )
        worker.seen_batches = set(state["seen_batches"])
        worker.total_reports = int(state["total_reports"])
        worker.accepted_batches = int(state["accepted_batches"])
        worker.duplicate_batches = int(state["duplicate_batches"])
        worker.rejected_batches = int(state["rejected_batches"])
        worker.checkpoints_written = int(state.get("checkpoints_written", 0))
        worker._accepted_since_checkpoint = 0
        worker.restored = True
        worker._init_worker_metrics()
        if (worker.round_spec is None) != (worker.aggregator is None):
            raise ServerError(
                "checkpoint is inconsistent: open round and aggregator disagree"
            )
        return worker

    @classmethod
    def boot(cls, checkpoint_dir: str | None = None, **kwargs: Any) -> "ShardWorker":
        """A restored worker when a checkpoint exists, a fresh one otherwise.

        This is the supervisor's restart path: the same call boots a
        first-time worker and resurrects a killed one.
        """
        if checkpoint_dir is not None:
            store = CheckpointStore(checkpoint_dir)
            if store.load() is not None:
                return cls.from_checkpoint(
                    checkpoint_dir,
                    queue_depth=kwargs.get("queue_depth"),
                    checkpoint_every=kwargs.get("checkpoint_every", 0),
                )
        return cls(checkpoint_dir=checkpoint_dir, **kwargs)

    # -------------------------------------------------------------- telemetry

    def _init_worker_metrics(self) -> None:
        """Register this worker's metric families (fresh and restored paths).

        Totals mirror the instance counters at scrape time (see the gateway's
        rationale); ``GET /metrics`` on the worker port and the coordinator's
        ``metrics`` op both read the same registry.
        """
        m = self.metrics
        self._metric_reports = m.counter(
            "privshape_reports_total", "Reports accepted into shard aggregators"
        )
        self._metric_batches = m.counter(
            "privshape_batches_total",
            "Report batches by ingest outcome",
            labelnames=("result",),
        )
        self._metric_checkpoints = m.counter(
            "privshape_checkpoints_written_total", "Durable snapshots written"
        )
        self._metric_round_index = m.gauge(
            "privshape_round_index", "Index of the open round (-1 when none)"
        )
        self._metric_checkpoint_lag = m.gauge(
            "privshape_checkpoint_lag_batches",
            "Accepted batches since the last durable snapshot",
        )
        self._metric_slice_users = m.gauge(
            "privshape_slice_users", "User-id slice width this worker owns"
        )
        self._metric_restored = m.gauge(
            "privshape_worker_restored",
            "1 when this worker resumed from a checkpoint",
        )
        self._metric_batch_reports = m.histogram(
            "privshape_batch_reports",
            "Reports per accepted batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )

    def _update_metrics(self) -> None:
        super()._update_metrics()
        self._metric_reports.set_total(self.total_reports)
        self._metric_batches.set_total(self.accepted_batches, result="accepted")
        self._metric_batches.set_total(self.duplicate_batches, result="duplicate")
        self._metric_rejected.set_total(self.rejected_batches)
        self._metric_checkpoints.set_total(self.checkpoints_written)
        self._metric_checkpoint_lag.set(self._accepted_since_checkpoint)
        self._metric_round_index.set(
            -1 if self.round_spec is None else self.round_spec.index
        )
        self._metric_slice_users.set(self.slice_stop - self.slice_start)
        self._metric_restored.set(1.0 if self.restored else 0.0)

    # ----------------------------------------------------------- round state

    def to_state(self) -> dict[str, Any]:
        """The complete durable state of this worker's slice of the round."""
        return {
            "worker_index": self.worker_index,
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "round": None if self.round_spec is None else self.round_spec.to_dict(),
            "slice_start": self.slice_start,
            "slice_stop": self.slice_stop,
            "aggregator": None if self.aggregator is None else self.aggregator.to_state(),
            "seen_batches": sorted(self.seen_batches),
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_batches": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
        }

    async def _checkpoint_locked(self) -> dict[str, Any]:
        """Quiesce the shard queues and persist one atomic snapshot (lock held)."""
        if self.store is None:
            raise ServerError("no checkpoint directory is configured")
        await self._drain()
        path = self.store.save(self.to_state())
        self.checkpoints_written += 1
        self._accepted_since_checkpoint = 0
        return {"ok": True, "path": str(path)}

    async def _maybe_checkpoint_locked(self) -> None:
        if self.store is not None:
            await self._checkpoint_locked()

    # --------------------------------------------------------------- workers

    def _consume_shard_batch(self, shard: int, batch) -> None:
        assert self.aggregator is not None  # enqueue happens under lock
        self.aggregator.consume_shard(shard, batch)

    # ------------------------------------------------------------ dispatching

    def _note_rejection(self, exc: ReproError) -> None:
        self.rejected_batches += 1

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "hello":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "role": "shard_worker",
                "worker_index": self.worker_index,
                "round": None if self.round_spec is None else self.round_spec.index,
                "slice": [self.slice_start, self.slice_stop],
            }
        if op == "open_round":
            return await self._op_open_round(message)
        if op == "report":
            return await self._op_report(message)
        if op == "collect":
            return await self._op_collect(message)
        if op == "status":
            return {"ok": True, "status": self._status_payload()}
        if op == "metrics":
            # The coordinator gathers these snapshots and re-renders them with
            # a ``worker`` label on its own /metrics scrape.
            self._update_metrics()
            return {
                "ok": True,
                "worker_index": self.worker_index,
                "metrics": self.metrics.snapshot(),
            }
        if op == "checkpoint":
            assert self._lock is not None
            async with self._lock:
                return await self._checkpoint_locked()
        if op == "stop":
            return self._signal_stop()
        raise WireFormatError(f"unknown op {op!r}")

    # ------------------------------------------------------------------- ops

    async def _op_open_round(self, message: dict[str, Any]) -> dict[str, Any]:
        """Install a round and this worker's user-id slice (idempotent).

        Re-opening the currently open round with the same spec and slice is
        acknowledged without touching state — that is what lets a client
        heal a restarted worker that lost a not-yet-checkpointed open_round.
        Opening a *newer* round implicitly abandons the current one (the
        coordinator already collected it, or deliberately moved on).
        """
        spec = RoundSpec.from_dict(message.get("round") or {})
        start = int(message.get("start", 0))
        stop = int(message.get("stop", 0))
        if stop < start:
            raise WireFormatError(f"slice stop {stop} precedes start {start}")
        assert self._lock is not None
        async with self._lock:
            current = self.round_spec
            if current is not None:
                if spec.index == current.index:
                    if spec.to_dict() != current.to_dict() or (
                        start != self.slice_start or stop != self.slice_stop
                    ):
                        raise ProtocolStateError(
                            f"round {spec.index} is already open with a different "
                            "spec or slice"
                        )
                    return self._open_ack()
                if spec.index < current.index:
                    raise ProtocolStateError(
                        f"open_round for stale round {spec.index}; "
                        f"round {current.index} is open"
                    )
                # Newer round: fold any queued batches into the old aggregator
                # first so the swap never consumes a stale batch into the new
                # round's counts.
                await self._drain()
            self.round_spec = spec
            self.slice_start = start
            self.slice_stop = stop
            self.aggregator = ShardedAggregator(spec, n_shards=self.n_shards)
            self.seen_batches = set()
            await self._maybe_checkpoint_locked()
            return self._open_ack()

    def _open_ack(self) -> dict[str, Any]:
        assert self.round_spec is not None
        return {
            "ok": True,
            "round": self.round_spec.index,
            "worker_index": self.worker_index,
            "slice": [self.slice_start, self.slice_stop],
        }

    async def _op_report(self, message: dict[str, Any]) -> dict[str, Any]:
        batch_id = check_batch_id(message.get("batch_id"))
        batch = batch_from_wire(message.get("data"))
        assert self._lock is not None
        async with self._lock:
            spec = self.round_spec
            if spec is None or self.aggregator is None:
                raise ProtocolStateError(
                    f"worker {self.worker_index} has no open round"
                )
            if batch.round_index != spec.index or batch.kind != spec.kind:
                raise ProtocolStateError(
                    f"batch for round {batch.round_index} ({batch.kind}) does not "
                    f"match open round {spec.index} ({spec.kind})"
                )
            batch.validate_against(spec)
            if len(batch):
                lowest = int(batch.user_ids.min())
                highest = int(batch.user_ids.max())
                if lowest < self.slice_start or highest >= self.slice_stop:
                    raise ProtocolStateError(
                        f"batch users [{lowest}, {highest}] outside worker "
                        f"{self.worker_index} slice "
                        f"[{self.slice_start}, {self.slice_stop})"
                    )
            if batch_id in self.seen_batches:
                self.duplicate_batches += 1
                return {
                    "ok": True,
                    "accepted": False,
                    "round": spec.index,
                    "reports": 0,
                }
            self.seen_batches.add(batch_id)
            for shard, sub_batch in self.aggregator.route(batch):
                await self._queues[shard].put(sub_batch)
            self.total_reports += len(batch)
            self.accepted_batches += 1
            self._accepted_since_checkpoint += 1
            self._metric_batch_reports.observe(len(batch))
            if (
                self.store is not None
                and self.checkpoint_every
                and self._accepted_since_checkpoint >= self.checkpoint_every
            ):
                await self._checkpoint_locked()
            return {
                "ok": True,
                "accepted": True,
                "round": spec.index,
                "reports": len(batch),
            }

    async def _op_collect(self, message: dict[str, Any]) -> dict[str, Any]:
        """Ship the merged (but still open) shard state to the coordinator.

        ``merged`` does not finalize: if the coordinator fails to collect a
        peer and the round has to be replayed, this worker can keep ingesting
        and be collected again — the second collect simply returns the newer
        exact snapshot.
        """
        assert self._lock is not None
        async with self._lock:
            spec = self.round_spec
            if spec is None or self.aggregator is None:
                raise ProtocolStateError(
                    f"worker {self.worker_index} has no open round"
                )
            index = message.get("round")
            if index != spec.index:
                raise ProtocolStateError(
                    f"collect for round {index!r}, but round {spec.index} is open "
                    f"on worker {self.worker_index}"
                )
            await self._drain()
            await self._maybe_checkpoint_locked()
            return {
                "ok": True,
                "round": spec.index,
                "worker_index": self.worker_index,
                "reports": self.aggregator.n_reports,
                "state": self.aggregator.merged().to_state(),
            }

    def _status_payload(self) -> dict[str, Any]:
        spec = self.round_spec
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        return {
            "role": "shard_worker",
            "worker_index": self.worker_index,
            "round": None if spec is None else spec.index,
            "kind": None if spec is None else spec.kind,
            "slice": [self.slice_start, self.slice_stop],
            "reports_in_round": 0 if self.aggregator is None else self.aggregator.n_reports,
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_requests": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "queue_depths": self.queue_depths(),
            "checkpoint_lag_batches": self._accepted_since_checkpoint,
            "reports_per_second": self.total_reports / uptime,
            "restored": self.restored,
            "uptime_seconds": time.monotonic() - self._started_at,
        }

    # ---------------------------------------------------------------- HTTP

    async def _http_payload(self, path: str) -> tuple[int, dict[str, Any]]:
        if path == "/status":
            return 200, {"ok": True, "status": self._status_payload()}
        return await super()._http_payload(path)


def run_worker_process(
    host: str,
    port: int,
    *,
    worker_index: int = 0,
    n_shards: int = 1,
    queue_depth: int = 64,
    checkpoint_dir: str | None = None,
    checkpoint_every: int = 0,
    port_file: str | None = None,
) -> None:
    """Boot-or-restore a :class:`ShardWorker` and serve until stopped.

    Top-level (picklable) so a ``spawn`` multiprocessing context can target
    it.  When a checkpoint exists under ``checkpoint_dir`` the worker resumes
    from it — the supervisor restarts crashed workers through this same
    entry point.
    """
    worker = ShardWorker.boot(
        checkpoint_dir,
        worker_index=worker_index,
        n_shards=n_shards,
        queue_depth=queue_depth,
        checkpoint_every=checkpoint_every,
    )

    async def _serve() -> None:
        await worker.start(host, port)
        if port_file is not None:
            publish_port(port_file, worker.port)
        await worker.serve_until_stopped()

    asyncio.run(_serve())
