"""Load generation against a collection cluster.

``run_cluster_loadgen`` mirrors :func:`~repro.server.loadgen.run_loadgen`,
but routes by topology: it asks the :class:`~repro.cluster.coordinator.
Coordinator` for the open round *and* the worker addresses + user-id slice
assignments, then streams every slice straight to its owning
:class:`~repro.cluster.worker.ShardWorker` — the coordinator never touches a
report.  Each slice stream starts with an idempotent ``open_round``, which
doubles as the healing path for a worker restarted from a checkpoint taken
before the round opened.

Crash handling is end-to-end: a transport failure replays the whole slice
(deterministic batch ids make the replay exact), and a ``close_round``
answered with ``retryable: true`` replays just the slices the coordinator
could not collect before retrying the close.  :class:`ChaosKill` injects a
mid-round ``SIGKILL`` into exactly this machinery so tests and examples can
prove a worker crash is invisible in the final estimates.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.continual.windows import WindowView
from repro.exceptions import ConfigurationError, ServerConnectionError, ServerError
from repro.server.client import GatewayClient
from repro.server.loadgen import (
    LoadgenRoundStats,
    LoadgenStats,
    SliceStats,
    WindowLoadgenStats,
    batch_id_for,
)
from repro.service.client import ClientReporter
from repro.service.plan import CollectionPlan, RoundSpec


@dataclass
class ChaosKill:
    """Fire one ``SIGKILL`` at a shard worker mid-round (fault injection).

    Picklable, so it travels into multiprocessing loadgen workers: every
    process gets its own copy, but the ``(round_index, worker_index)`` filter
    means only the copy streaming the targeted slice ever fires, and the
    ``fired`` flag keeps the kill from repeating on that process's replays.
    """

    round_index: int
    worker_index: int
    after_batches: int = 1
    fired: bool = False

    def maybe_fire(
        self,
        round_index: int,
        worker_index: int,
        batches_sent: int,
        pid: int | None,
    ) -> bool:
        if (
            self.fired
            or pid is None
            or round_index != self.round_index
            or worker_index != self.worker_index
            or batches_sent < self.after_batches
        ):
            return False
        self.fired = True
        os.kill(pid, signal.SIGKILL)
        return True


def stream_worker_slice(
    host: str,
    port: int,
    population,
    plan_dict: dict[str, Any],
    round_dict: dict[str, Any],
    start: int,
    stop: int,
    batch_size: int,
    worker_index: int = 0,
    worker_pid: int | None = None,
    max_attempts: int = 12,
    retry_delay: float = 0.25,
    chaos: ChaosKill | None = None,
) -> SliceStats:
    """Open the round on one worker and stream its slice (with replays).

    Top-level and fully positional so ``Pool.starmap`` can run it.  A
    transport failure — including one this call *caused* via ``chaos`` —
    replays the slice from the top after a backoff, giving the supervisor
    time to restart the worker on the same port.  Empty slices still send
    ``open_round`` so every worker is collectable at round close.
    """
    plan = CollectionPlan.from_dict(plan_dict)
    spec = RoundSpec.from_dict(round_dict)
    stats = SliceStats()
    reporter = ClientReporter()
    for attempt in range(max(int(max_attempts), 1)):
        try:
            with GatewayClient(host, port) as client:
                client.request(
                    {"op": "open_round", "round": round_dict, "start": start, "stop": stop}
                )
                for user_ids, batch_population in population.iter_range(
                    start, stop, batch_size
                ):
                    mask = plan.participant_mask(spec, user_ids)
                    if not mask.any():
                        continue
                    participants = np.flatnonzero(mask)
                    batch = reporter.make_reports(
                        spec,
                        batch_population.take(participants),
                        user_ids[participants],
                    )
                    response = client.report(
                        batch,
                        batch_id=batch_id_for(
                            spec.index, user_ids[0], user_ids[-1] + 1
                        ),
                    )
                    stats.batches += 1
                    if response.get("accepted"):
                        stats.accepted += int(response.get("reports", len(batch)))
                    if chaos is not None:
                        chaos.maybe_fire(
                            spec.index, worker_index, stats.batches, worker_pid
                        )
            return stats
        except ServerConnectionError:
            if attempt + 1 >= max_attempts:
                raise
            stats.retries += 1
            time.sleep(min(retry_delay * (attempt + 1), 2.0))
    return stats  # pragma: no cover - loop always returns or raises


def run_cluster_loadgen(
    host: str,
    port: int,
    population,
    *,
    batch_size: int = 8192,
    workers: int = 0,
    mp_context: str = "spawn",
    timeout: float = 120.0,
    chaos: ChaosKill | None = None,
    max_attempts: int = 12,
    retry_delay: float = 0.25,
) -> LoadgenStats:
    """Drive a complete collection run against a cluster coordinator.

    ``workers=0`` streams the slices sequentially in-process (deterministic,
    test-friendly); ``workers>=1`` fans the slices out over that many OS
    processes.  Either way the reports go straight to the shard workers; the
    coordinator only sequences rounds and merges.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    stats = LoadgenStats(workers=max(int(workers), 0))
    n_users = population.n_users
    started = time.perf_counter()
    pool = None
    try:
        with GatewayClient(host, port, timeout=timeout) as control:
            hello = control.hello()
            if int(hello.get("n_users", -1)) != n_users:
                raise ConfigurationError(
                    f"cluster is sized for {hello.get('n_users')} users, "
                    f"population has {n_users}"
                )
            while True:
                current = control.round()
                if current["done"]:
                    break
                round_dict, plan_dict = current["round"], current["plan"]
                addresses = current["workers"]
                assignments = [tuple(a) for a in current["assignments"]]
                round_started = time.perf_counter()
                tasks = [
                    (
                        address["host"],
                        address["port"],
                        population,
                        plan_dict,
                        round_dict,
                        start,
                        stop,
                        batch_size,
                        address["index"],
                        address.get("pid"),
                        max_attempts,
                        retry_delay,
                        chaos,
                    )
                    for address, (start, stop) in zip(addresses, assignments)
                ]
                if stats.workers >= 1:
                    if pool is None:
                        context = multiprocessing.get_context(mp_context)
                        pool = context.Pool(min(stats.workers, len(tasks)))
                    slice_stats = pool.starmap(stream_worker_slice, tasks)
                else:
                    slice_stats = [stream_worker_slice(*task) for task in tasks]
                stats.batches += sum(s.batches for s in slice_stats)
                stats.retries += sum(s.retries for s in slice_stats)
                closed = _close_with_replays(
                    control,
                    int(round_dict["index"]),
                    tasks,
                    stats,
                    max_attempts=max_attempts,
                    retry_delay=retry_delay,
                )
                stats.rounds.append(
                    LoadgenRoundStats(
                        index=int(round_dict["index"]),
                        kind=str(round_dict["kind"]),
                        # The coordinator's merged aggregate is authoritative:
                        # client-side accepted counts double-count any batch a
                        # crashed worker lost after acking and re-accepted on
                        # replay.
                        reports=int(closed["reports"])
                        if closed is not None
                        else int(sum(s.accepted for s in slice_stats)),
                        elapsed_seconds=time.perf_counter() - round_started,
                        level=int(round_dict.get("level", -1)),
                    )
                )
            stats.total_seconds = time.perf_counter() - started
            stats.total_reports = sum(r.reports for r in stats.rounds)
            stats.result = control.result()
            stats.server_status = control.status()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return stats


def run_window_cluster_loadgen(
    host: str,
    port: int,
    population,
    *,
    batch_size: int = 8192,
    workers: int = 0,
    mp_context: str = "spawn",
    timeout: float = 120.0,
    chaos: ChaosKill | None = None,
    max_attempts: int = 12,
    retry_delay: float = 0.25,
) -> WindowLoadgenStats:
    """Drive a complete *continual* run against a windowed cluster coordinator.

    Same contract as :func:`run_cluster_loadgen`, window by window: the
    coordinator's slice assignments partition the current window's LOCAL id
    space, so every slice streams from a :class:`~repro.continual.windows.
    WindowView` of the population, and a ``window`` op folds each finished
    window into the run before the next one opens.  Crash handling (slice
    replay, retryable closes, :class:`ChaosKill`) is unchanged.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    stats = WindowLoadgenStats(workers=max(int(workers), 0))
    started = time.perf_counter()
    pool = None
    try:
        with GatewayClient(host, port, timeout=timeout) as control:
            hello = control.hello()
            info = hello.get("windows")
            if info is None:
                raise ConfigurationError(
                    "coordinator is not running a continual plan; "
                    "use run_cluster_loadgen"
                )
            if int(info["n_users"]) != int(population.n_users):
                raise ConfigurationError(
                    f"cluster planned windows over {info['n_users']} users, "
                    f"population has {population.n_users}"
                )
            while True:
                current = control.round()
                if current["done"]:
                    break
                if current.get("window_done"):
                    advanced = control.request({"op": "window"})
                    closed = advanced.get("closed", {})
                    stats.windows.append(
                        {
                            "window": closed.get("window"),
                            "attempt": closed.get("attempt"),
                            "mode": closed.get("mode"),
                            "final": closed.get("final"),
                            "shapes": closed.get("shapes"),
                        }
                    )
                    continue
                ticket = current["window"]
                view = WindowView(population, ticket["start"], ticket["stop"])
                round_dict, plan_dict = current["round"], current["plan"]
                addresses = current["workers"]
                assignments = [tuple(a) for a in current["assignments"]]
                round_started = time.perf_counter()
                tasks = [
                    (
                        address["host"],
                        address["port"],
                        view,
                        plan_dict,
                        round_dict,
                        start,
                        stop,
                        batch_size,
                        address["index"],
                        address.get("pid"),
                        max_attempts,
                        retry_delay,
                        chaos,
                    )
                    for address, (start, stop) in zip(addresses, assignments)
                ]
                if stats.workers >= 1:
                    if pool is None:
                        context = multiprocessing.get_context(mp_context)
                        pool = context.Pool(min(stats.workers, len(tasks)))
                    slice_stats = pool.starmap(stream_worker_slice, tasks)
                else:
                    slice_stats = [stream_worker_slice(*task) for task in tasks]
                stats.batches += sum(s.batches for s in slice_stats)
                stats.retries += sum(s.retries for s in slice_stats)
                closed = _close_with_replays(
                    control,
                    int(round_dict["index"]),
                    tasks,
                    stats,
                    max_attempts=max_attempts,
                    retry_delay=retry_delay,
                )
                stats.rounds.append(
                    LoadgenRoundStats(
                        index=int(round_dict["index"]),
                        kind=str(round_dict["kind"]),
                        reports=int(closed["reports"])
                        if closed is not None
                        else int(sum(s.accepted for s in slice_stats)),
                        elapsed_seconds=time.perf_counter() - round_started,
                        level=int(round_dict.get("level", -1)),
                    )
                )
            stats.total_seconds = time.perf_counter() - started
            stats.total_reports = sum(r.reports for r in stats.rounds)
            stats.result = control.result()
            stats.server_status = control.status()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return stats


def _close_with_replays(
    control: GatewayClient,
    round_index: int,
    tasks: list[tuple],
    stats: LoadgenStats,
    *,
    max_attempts: int,
    retry_delay: float,
) -> dict[str, Any] | None:
    """Close one round, replaying uncollectable slices until it sticks.

    Returns the coordinator's ``closed`` record (authoritative report count),
    or ``None`` when a retried close found the round already closed.
    """
    by_worker = {task[8]: task for task in tasks}
    for attempt in range(max(int(max_attempts), 1)):
        response = control.request(
            {"op": "close_round", "round": round_index}, check=False
        )
        if response.get("ok"):
            return response.get("closed")
        failed = response.get("failed_workers")
        if not response.get("retryable") or not failed:
            raise ServerError(
                f"server rejected 'close_round': {response.get('error')}"
            )
        stats.retries += 1
        time.sleep(min(retry_delay * (attempt + 1), 2.0))
        for index in failed:
            # Replay in-process with chaos disarmed: the point is recovery.
            task = list(by_worker[index])
            task[12] = None
            replayed = stream_worker_slice(*task)
            stats.batches += replayed.batches
            stats.retries += replayed.retries
    raise ServerError(
        f"could not close round {round_index} after {max_attempts} attempts"
    )
