"""Multi-process collection cluster for the PrivShape protocol.

The single-process gateway aggregates every report on one GIL-bound event
loop; this package scales the collection side out over OS processes while
keeping the estimates *byte-identical* to the offline extractor:

* :class:`~repro.cluster.spec.ClusterSpec` — the topology (worker addresses
  and contiguous user-id slice assignments) shared with clients;
* :class:`~repro.cluster.worker.ShardWorker` — one process per disjoint
  user-id slice, running the gateway's aggregation loop (bounded shard
  queues, idempotent batch dedup, atomic checkpoints) without an engine;
* :class:`~repro.cluster.coordinator.Coordinator` — the one engine of the
  run: round control, worker health, and the exact int64 merge of collected
  shard states (integer addition is associative, so process layout cannot
  change a single count);
* :class:`~repro.cluster.supervisor.Supervisor` — spawns the workers,
  restarts a crashed one on the same port from its last checkpoint;
* :func:`~repro.cluster.loadgen.run_cluster_loadgen` — topology-aware load
  generation with slice replay on transport failure, plus
  :class:`~repro.cluster.loadgen.ChaosKill` fault injection;
* :func:`~repro.cluster.testing.launch_cluster` — one-call boot/teardown
  for tests, benchmarks, and the ``cluster`` execution backend.

Correctness rests on three invariants established by the lower layers:
client randomness is a PRF of (round key, user id); round aggregation is
exact int64 addition; batch ids are deterministic functions of the (round,
user-window) pair.  Together they make any slicing, any process layout, and
any crash-and-replay schedule produce the same final counts.
"""

from repro.cluster.coordinator import Coordinator
from repro.cluster.loadgen import (
    ChaosKill,
    run_cluster_loadgen,
    run_window_cluster_loadgen,
    stream_worker_slice,
)
from repro.cluster.spec import ClusterSpec, WorkerAddress
from repro.cluster.supervisor import Supervisor
from repro.cluster.testing import ClusterHandle, launch_cluster
from repro.cluster.worker import ShardWorker, run_worker_process

__all__ = [
    "ChaosKill",
    "ClusterHandle",
    "ClusterSpec",
    "Coordinator",
    "ShardWorker",
    "Supervisor",
    "WorkerAddress",
    "launch_cluster",
    "run_cluster_loadgen",
    "run_window_cluster_loadgen",
    "run_worker_process",
    "stream_worker_slice",
]
