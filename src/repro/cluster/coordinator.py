"""The cluster's control plane: round control and exact shard-state merge.

The :class:`Coordinator` owns the one :class:`~repro.service.protocol.
PrivShapeEngine` of a cluster run — workers are engine-less, so protocol
sequencing, the PRF round keys, and the final estimates live in exactly one
place, just as with the single-process gateway.  Its job per round:

1. broadcast ``open_round`` (round spec + user-id slice) to every worker;
2. wait for the client to stream batches straight to the workers (the
   coordinator is *not* on the data path — that is the whole point);
3. on ``close_round``: ``collect`` every worker's merged int64 accumulator
   state, add them in worker-index order (integer addition is associative
   and commutative, so the merge equals the unsharded aggregate bit for
   bit), feed the aggregate to the engine, and open the next round.

A worker that cannot be collected (crashed mid-round) does **not** poison
the round: ``close_round`` answers ``ok: false`` with ``retryable: true``
and the indexes that failed, the supervisor restarts the worker from its
checkpoint, the client replays that slice (idempotent batch ids make the
replay exact), and retries the close.  The coordinator itself keeps no
checkpoint — a cluster run's durability lives in the per-worker snapshots
plus the deterministic client-side replay.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.cluster.spec import ClusterSpec, WorkerAddress
from repro.continual.engine import WindowController
from repro.continual.windows import WindowSpec, WindowTicket
from repro.exceptions import (
    ProtocolStateError,
    ReproError,
    ServerConnectionError,
    ServerError,
    WireFormatError,
)
from repro.obs.metrics import merge_snapshots
from repro.obs.tracing import trace_span
from repro.server.base import SocketServiceBase, result_payload
from repro.server.wire import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    decode_message,
    encode_message,
)
from repro.service.protocol import PrivShapeEngine
from repro.service.rounds import RoundAccumulator, new_accumulator
from repro.utils.rng import RngLike


class Coordinator(SocketServiceBase):
    """Round control, worker health, and exact merge for one cluster run."""

    def __init__(
        self,
        config,
        cluster: ClusterSpec,
        *,
        n_users: int,
        rng: RngLike = None,
        windows: WindowSpec | None = None,
        supervisor=None,
        rpc_timeout: float = 60.0,
    ) -> None:
        if n_users < 1:
            raise ValueError(f"n_users must be >= 1, got {n_users}")
        # No data plane: reports flow client -> worker, never through here.
        self._init_plumbing(0, 1)
        self.cluster = cluster
        self.n_users = int(n_users)
        self.supervisor = supervisor
        self.rpc_timeout = float(rpc_timeout)
        self.controller: WindowController | None = None
        self._ticket: WindowTicket | None = None
        if windows is not None:
            # Continual mode: the coordinator hosts the same backend-shared
            # window controller the gateway does, swapping in a fresh
            # per-window engine at every ``window`` op.  ``rng`` must be the
            # integer base seed (or None for fresh entropy) — windows derive
            # their own seeds from it.
            self.controller = WindowController(
                config,
                windows,
                self.n_users,
                base_seed=None if rng is None else int(rng),
            )
            self._ticket = self.controller.next_ticket()
            self.engine = self.controller.build_engine(self._ticket)
        else:
            self.engine = PrivShapeEngine(config, rng=rng)
        self.rounds_closed: list[dict[str, Any]] = []
        self.total_reports = 0
        self.rejected_requests = 0
        self._result_payload: dict[str, Any] | None = None
        self._init_coordinator_metrics()
        self.engine.open_round()

    # -------------------------------------------------------------- telemetry

    def _init_coordinator_metrics(self) -> None:
        """Register the control-plane metric families.

        The coordinator carries no data plane, so its own registry covers
        round control only; the per-worker ingest series are gathered live
        from the workers at scrape time (see :meth:`_render_metrics`).
        """
        m = self.metrics
        self._metric_reports = m.counter(
            "privshape_reports_total", "Reports merged across all workers"
        )
        self._metric_rounds_closed = m.counter(
            "privshape_rounds_closed_total",
            "Protocol rounds closed",
            labelnames=("kind",),
        )
        self._metric_round_index = m.gauge(
            "privshape_round_index", "Index of the open round (-1 when none)"
        )
        self._metric_workers = m.gauge(
            "privshape_cluster_workers", "Workers in the cluster topology"
        )
        self._metric_restarts = m.gauge(
            "privshape_worker_restarts", "Supervisor-recorded worker restarts"
        )

    def _update_metrics(self) -> None:
        super()._update_metrics()
        self._metric_reports.set_total(self.total_reports)
        self._metric_rejected.set_total(self.rejected_requests)
        spec = self.engine.current_round
        self._metric_round_index.set(-1 if spec is None else spec.index)
        self._metric_workers.set(self._live_cluster().n_workers)
        if self.supervisor is not None:
            self._metric_restarts.set(sum(self.supervisor.restarts))

    async def _render_metrics(self) -> str:
        """One scrape covering the whole topology.

        The coordinator's own families render unlabelled; every reachable
        worker's snapshot (gathered over the ``metrics`` op) is folded in
        with a ``worker="<index>"`` label.  A worker that is down mid-scrape
        is simply absent — the scrape itself must never fail over it.
        """
        self._update_metrics()
        cluster = self._live_cluster()
        outcomes = await asyncio.gather(
            *(
                self._worker_request(address, {"op": "metrics"})
                for address in cluster
            ),
            return_exceptions=True,
        )
        parts: list[tuple[dict[str, str], dict[str, Any]]] = [
            ({}, self.metrics.snapshot())
        ]
        for address, outcome in zip(cluster, outcomes):
            if isinstance(outcome, BaseException):
                continue
            parts.append(
                ({"worker": str(address.index)}, outcome["metrics"])
            )
        return merge_snapshots(parts)

    # ---------------------------------------------------------- worker RPCs

    def _live_cluster(self) -> ClusterSpec:
        """The topology with supervisor-refreshed pids, when supervised."""
        if self.supervisor is None:
            return self.cluster
        return self.supervisor.cluster_spec()

    def _scope_users(self) -> int:
        """How many user ids the current engine's rounds span.

        Windowed runs stream each window under LOCAL ids ``[0, stop - start)``
        (client randomness is a PRF of the user id, so re-basing is what makes
        a window byte-identical to a standalone run); worker slice assignments
        must therefore partition the window's local size, not the stream's.
        """
        if self._ticket is not None:
            return self._ticket.n_users
        return self.n_users

    async def _worker_request(
        self, address: WorkerAddress, payload: dict[str, Any]
    ) -> dict[str, Any]:
        """One request/response exchange with one worker (own connection)."""
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(
                    address.host, address.port, limit=MAX_LINE_BYTES
                ),
                timeout=self.rpc_timeout,
            )
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerConnectionError(
                f"cannot connect to worker {address.index} at "
                f"{address.host}:{address.port}: {exc}"
            ) from exc
        try:
            writer.write(encode_message(payload))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=self.rpc_timeout)
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServerConnectionError(
                f"worker {address.index} at {address.host}:{address.port} "
                f"failed mid-request: {exc}"
            ) from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        if not line:
            raise ServerConnectionError(
                f"worker {address.index} closed the connection without answering"
            )
        response = decode_message(line.strip())
        if not response.get("ok"):
            raise ServerError(
                f"worker {address.index} rejected {payload.get('op')!r}: "
                f"{response.get('error')}"
            )
        return response

    async def _broadcast_open_round(self) -> None:
        """Best-effort ``open_round`` to every worker (clients re-send it).

        A worker that is down right now is not an error: the loadgen opens
        the round again on every slice before streaming, which also heals
        workers restarted from a pre-open checkpoint.
        """
        spec = self.engine.current_round
        if spec is None:
            return
        cluster = self._live_cluster()
        assignments = cluster.assignments(self._scope_users())
        results = await asyncio.gather(
            *(
                self._worker_request(
                    address,
                    {
                        "op": "open_round",
                        "round": spec.to_dict(),
                        "start": start,
                        "stop": stop,
                    },
                )
                for address, (start, stop) in zip(cluster, assignments)
            ),
            return_exceptions=True,
        )
        for address, outcome in zip(cluster, results):
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, ServerConnectionError
            ):
                if isinstance(outcome, ServerError):
                    continue  # stale/duplicate open: the worker said why
                raise outcome

    async def _on_started(self) -> None:
        await self._broadcast_open_round()

    # ------------------------------------------------------------ dispatching

    def _note_rejection(self, exc: ReproError) -> None:
        self.rejected_requests += 1

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "hello":
            return self._hello_payload()
        if op == "round":
            assert self._lock is not None
            async with self._lock:
                return self._round_payload()
        if op == "close_round":
            return await self._op_close_round(message)
        if op == "window":
            return await self._op_window(message)
        if op == "status":
            return {"ok": True, "status": await self._status_payload()}
        if op == "result":
            assert self._lock is not None
            async with self._lock:
                return self._op_result()
        if op == "stop":
            return self._signal_stop()
        raise WireFormatError(f"unknown op {op!r}")

    # ------------------------------------------------------------------- ops

    def _hello_payload(self) -> dict[str, Any]:
        cluster = self._live_cluster()
        payload = {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "role": "coordinator",
            "mechanism": "privshape",
            "epsilon": self.engine.config.epsilon,
            "n_users": self.n_users,
            "n_workers": cluster.n_workers,
            "workers": [address.to_dict() for address in cluster],
            "assignments": cluster.assignments(self._scope_users()),
            "plan": self.engine.plan.to_dict(),
        }
        if self.controller is not None:
            payload["windows"] = {
                "n_users": self.controller.plan.n_users,
                "n_windows": self.controller.plan.n_windows,
                "window_epsilon": self.controller.plan.window_epsilon,
            }
        return payload

    def _round_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        cluster = self._live_cluster()
        payload = {
            "ok": True,
            "done": spec is None and self.engine.is_done,
            "round": None if spec is None else spec.to_dict(),
            "plan": self.engine.plan.to_dict(),
            "workers": [address.to_dict() for address in cluster],
            "assignments": cluster.assignments(self._scope_users()),
        }
        if self.controller is not None:
            # Windowed contract, identical to the gateway's: one window's
            # completion ("window_done") asks the client for a ``window`` op,
            # and the ticket tells it which user slice to stream.
            payload["done"] = self.controller.done
            payload["window_done"] = self.engine.is_done and not self.controller.done
            payload["window"] = (
                None if self._ticket is None else self._ticket.to_dict()
            )
        return payload

    async def _op_close_round(self, message: dict[str, Any]) -> dict[str, Any]:
        assert self._lock is not None
        async with self._lock:
            spec = self.engine.current_round
            if spec is None:
                return self._round_payload()
            index = message.get("round")
            if isinstance(index, int) and index < spec.index:
                # The round was already closed (e.g. a retried close whose
                # first attempt succeeded after the reply was lost).
                return self._round_payload()
            if index != spec.index:
                raise ProtocolStateError(
                    f"close_round for round {index!r}, but round {spec.index} is open"
                )
            cluster = self._live_cluster()
            outcomes = await asyncio.gather(
                *(
                    self._worker_request(address, {"op": "collect", "round": spec.index})
                    for address in cluster
                ),
                return_exceptions=True,
            )
            failed = [
                address.index
                for address, outcome in zip(cluster, outcomes)
                if isinstance(outcome, BaseException)
            ]
            if failed:
                for outcome in outcomes:
                    if isinstance(outcome, BaseException) and not isinstance(
                        outcome, ReproError
                    ):
                        raise outcome
                # Answer, don't raise: the client replays the failed slices
                # (after the supervisor restarts the workers) and retries.
                return {
                    "ok": False,
                    "error": (
                        f"could not collect round {spec.index} from "
                        f"workers {failed}"
                    ),
                    "error_type": "ServerConnectionError",
                    "round": spec.index,
                    "failed_workers": failed,
                    "retryable": True,
                }
            with trace_span(
                "coordinator.close_round", round=spec.index, kind=spec.kind
            ):
                aggregate = new_accumulator(spec)
                for outcome in sorted(outcomes, key=lambda o: o["worker_index"]):
                    aggregate.merge(RoundAccumulator.from_state(outcome["state"]))
                closed = {
                    "round": spec.index,
                    "kind": spec.kind,
                    "level": getattr(spec, "level", -1),
                    "reports": aggregate.n_reports,
                }
                self.engine.close_round(spec, aggregate)
            self.rounds_closed.append(closed)
            self.total_reports += aggregate.n_reports
            self._metric_rounds_closed.inc(kind=spec.kind)
            self.engine.open_round()
            await self._broadcast_open_round()
            return {**self._round_payload(), "closed": closed}

    async def _op_window(self, message: dict[str, Any]) -> dict[str, Any]:
        """Close the finished window, fold it into the run, open the next.

        The coordinator keeps no data plane to drain — by the time the last
        ``close_round`` answered, every worker's state is already merged into
        the engine — so this only advances the controller and re-broadcasts
        the successor window's first round to the workers.
        """
        assert self._lock is not None
        async with self._lock:
            if self.controller is None:
                raise ProtocolStateError(
                    "this coordinator is not running a continual (windowed) plan"
                )
            if self._ticket is None:
                raise ProtocolStateError("every window is already closed")
            if not self.engine.is_done:
                raise ProtocolStateError(
                    f"window {self._ticket.index} is still in stage "
                    f"{self.engine.stage!r}; close its rounds first"
                )
            closed = self.controller.close_window(self._ticket, self.engine)
            self._ticket = self.controller.next_ticket()
            if self._ticket is not None:
                self.engine = self.controller.build_engine(self._ticket)
                self.engine.open_round()
                await self._broadcast_open_round()
            self._result_payload = None
            return {
                "ok": True,
                "closed": closed,
                "done": self.controller.done,
                "window": None if self._ticket is None else self._ticket.to_dict(),
            }

    async def _status_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        cluster = self._live_cluster()
        health: list[dict[str, Any]] = []
        statuses = await asyncio.gather(
            *(
                self._worker_request(address, {"op": "status"})
                for address in cluster
            ),
            return_exceptions=True,
        )
        for address, outcome in zip(cluster, statuses):
            entry: dict[str, Any] = {
                "index": address.index,
                "host": address.host,
                "port": address.port,
                "pid": address.pid,
                "alive": not isinstance(outcome, BaseException),
            }
            if isinstance(outcome, BaseException):
                entry["error"] = str(outcome)
            else:
                entry["status"] = outcome["status"]
            health.append(entry)
        payload = {
            "role": "coordinator",
            "stage": self.engine.stage,
            "done": self.engine.is_done,
            "round": None if spec is None else spec.index,
            "kind": None if spec is None else spec.kind,
            "rounds_closed": len(self.rounds_closed),
            "total_reports": self.total_reports,
            "rejected_requests": self.rejected_requests,
            "n_users": self.n_users,
            "n_workers": cluster.n_workers,
            "workers": health,
            "epsilon": self.engine.config.epsilon,
            "uptime_seconds": time.monotonic() - self._started_at,
        }
        if self.supervisor is not None:
            payload["restarts"] = list(self.supervisor.restarts)
        if self.controller is not None:
            payload.update(
                {
                    "windowed": True,
                    "done": self.controller.done,
                    "window": None if self._ticket is None else self._ticket.index,
                    "window_attempt": None
                    if self._ticket is None
                    else self._ticket.attempt,
                    "window_mode": None if self._ticket is None else self._ticket.mode,
                    "windows_total": self.controller.plan.n_windows,
                    "windows_closed": len(self.controller.results),
                }
            )
        return payload

    def _op_result(self) -> dict[str, Any]:
        if self.controller is not None:
            if not self.controller.done:
                raise ProtocolStateError(
                    f"continual run still in stage {self.engine.stage!r} of window "
                    f"{self._ticket.index if self._ticket else '?'}; "
                    "close every window first"
                )
            if self._result_payload is None:
                self._result_payload = {
                    "windows": self.controller.results,
                    "accounting": self.controller.master_accounting(),
                    "base_seed": self.controller.base_seed,
                }
            return {"ok": True, "result": self._result_payload}
        if not self.engine.is_done:
            raise ProtocolStateError(
                f"protocol still in stage {self.engine.stage!r}; "
                "close every round first"
            )
        if self._result_payload is None:
            self._result_payload = result_payload(self.engine)
        return {"ok": True, "result": self._result_payload}

    # ---------------------------------------------------------------- HTTP

    async def _http_payload(self, path: str) -> tuple[int, dict[str, Any]]:
        if path == "/status":
            return 200, {"ok": True, "status": await self._status_payload()}
        if path == "/result":
            assert self._lock is not None
            async with self._lock:
                try:
                    return 200, self._op_result()
                except ReproError as exc:
                    return 409, {"ok": False, "error": str(exc)}
        return await super()._http_payload(path)
