"""Process supervision for the cluster's shard workers.

The :class:`Supervisor` owns the worker processes' lifecycle: it spawns N
:func:`~repro.cluster.worker.run_worker_process` children (``spawn`` context
— safe from threaded parents), waits for each to publish its ephemeral port
atomically, and then watches them from a monitor thread.  A worker that dies
— crash or ``SIGKILL`` — is respawned on its *recorded* port within one poll
interval; because the restart goes through :meth:`ShardWorker.boot`, the new
process resumes from the dead one's last atomic checkpoint, and because the
address is stable, clients simply reconnect and replay their slice.

Everything a worker persists lives under one supervisor directory::

    <directory>/worker-0.port      the atomically-published bound port
    <directory>/worker-0.pid       current pid (refreshed on restart)
    <directory>/worker-0/          the worker's checkpoint directory

``max_restarts`` bounds crash loops: a worker that keeps dying is declared
failed and left down, and :meth:`alive` / :meth:`failed` expose that to the
coordinator's health reporting.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import time
from pathlib import Path

from repro.cluster.spec import ClusterSpec, WorkerAddress
from repro.cluster.worker import run_worker_process
from repro.exceptions import ServerError
from repro.server.portfile import wait_for_port_file


class Supervisor:
    """Spawn, watch, and restart the shard-worker processes of one cluster."""

    def __init__(
        self,
        n_workers: int,
        directory: str | os.PathLike,
        *,
        host: str = "127.0.0.1",
        n_shards: int = 1,
        queue_depth: int = 64,
        checkpoint_every: int = 16,
        mp_context: str = "spawn",
        poll_interval: float = 0.2,
        max_restarts: int = 5,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = int(n_workers)
        self.directory = Path(directory)
        self.host = host
        self.n_shards = int(n_shards)
        self.queue_depth = int(queue_depth)
        self.checkpoint_every = int(checkpoint_every)
        self.poll_interval = float(poll_interval)
        self.max_restarts = int(max_restarts)
        self._context = multiprocessing.get_context(mp_context)
        self._lock = threading.Lock()
        self._processes: list[multiprocessing.process.BaseProcess | None] = [
            None
        ] * self.n_workers
        self._ports: list[int] = [0] * self.n_workers
        self._restarts = [0] * self.n_workers
        self._failed: set[int] = set()
        self._stopping = False
        self._monitor: threading.Thread | None = None

    # ----------------------------------------------------------------- paths

    def port_file(self, index: int) -> Path:
        return self.directory / f"worker-{index}.port"

    def pid_file(self, index: int) -> Path:
        return self.directory / f"worker-{index}.pid"

    def checkpoint_dir(self, index: int) -> Path:
        return self.directory / f"worker-{index}"

    # ------------------------------------------------------------- lifecycle

    def start(self, timeout: float = 60.0) -> "Supervisor":
        """Spawn every worker, wait for all ports, start the monitor thread."""
        self.directory.mkdir(parents=True, exist_ok=True)
        for index in range(self.n_workers):
            # Stale port files from a previous run would short-circuit the
            # wait below with a dead port.
            self.port_file(index).unlink(missing_ok=True)
            self._spawn(index, port=0)
        for index in range(self.n_workers):
            self._ports[index] = wait_for_port_file(self.port_file(index), timeout)
        self._monitor = threading.Thread(
            target=self._watch, name="cluster-supervisor", daemon=True
        )
        self._monitor.start()
        return self

    def _spawn(self, index: int, port: int) -> None:
        process = self._context.Process(
            target=run_worker_process,
            args=(self.host, port),
            kwargs={
                "worker_index": index,
                "n_shards": self.n_shards,
                "queue_depth": self.queue_depth,
                "checkpoint_dir": str(self.checkpoint_dir(index)),
                "checkpoint_every": self.checkpoint_every,
                "port_file": str(self.port_file(index)),
            },
            daemon=True,
            name=f"shard-worker-{index}",
        )
        process.start()
        self._processes[index] = process
        self._write_pid(index, process.pid)

    def _write_pid(self, index: int, pid: int | None) -> None:
        target = self.pid_file(index)
        temp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
        temp.write_text(f"{pid}\n", encoding="utf-8")
        os.replace(temp, target)

    def _watch(self) -> None:
        """Monitor loop: reap dead workers and respawn them on their port."""
        while not self._stopping:
            with self._lock:
                if self._stopping:
                    break
                for index, process in enumerate(self._processes):
                    if process is None or process.is_alive():
                        continue
                    if index in self._failed:
                        continue
                    process.join(0)
                    if self._restarts[index] >= self.max_restarts:
                        self._failed.add(index)
                        continue
                    self._restarts[index] += 1
                    # Same recorded port: the topology handed to clients
                    # stays valid across the restart; the new process
                    # resumes from the dead one's checkpoint.
                    self._spawn(index, port=self._ports[index])
            time.sleep(self.poll_interval)

    def stop(self) -> None:
        """Terminate every worker and the monitor thread (idempotent)."""
        self._stopping = True
        if self._monitor is not None:
            self._monitor.join(timeout=10.0)
            self._monitor = None
        with self._lock:
            for process in self._processes:
                if process is not None and process.is_alive():
                    process.terminate()
            for process in self._processes:
                if process is not None:
                    process.join(timeout=10.0)
                    if process.is_alive():  # pragma: no cover - defensive
                        process.kill()
                        process.join(timeout=10.0)

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # --------------------------------------------------------------- control

    def kill_worker(self, index: int) -> int:
        """SIGKILL worker ``index`` (crash injection for tests/examples)."""
        with self._lock:
            process = self._processes[index]
            if process is None or process.pid is None or not process.is_alive():
                raise ServerError(f"worker {index} is not running")
            os.kill(process.pid, signal.SIGKILL)
            return process.pid

    def ensure_alive(self, index: int, timeout: float = 30.0) -> None:
        """Block until worker ``index`` accepts connections again."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                process = self._processes[index]
                port = self._ports[index]
                running = process is not None and process.is_alive()
            if running:
                try:
                    with socket.create_connection((self.host, port), timeout=1.0):
                        return
                except OSError:
                    pass
            time.sleep(0.05)
        raise ServerError(f"worker {index} did not come back within {timeout:.0f}s")

    # ------------------------------------------------------------- inspection

    @property
    def restarts(self) -> list[int]:
        """Per-worker restart counts so far."""
        with self._lock:
            return list(self._restarts)

    def failed(self) -> list[int]:
        """Workers abandoned after exceeding ``max_restarts``."""
        with self._lock:
            return sorted(self._failed)

    def alive(self) -> list[bool]:
        """Per-worker liveness right now."""
        with self._lock:
            return [
                process is not None and process.is_alive()
                for process in self._processes
            ]

    def pids(self) -> list[int | None]:
        """Current per-worker pids (refreshed across restarts)."""
        with self._lock:
            return [
                None if process is None else process.pid
                for process in self._processes
            ]

    def cluster_spec(self) -> ClusterSpec:
        """The current topology (stable ports, live pids)."""
        with self._lock:
            return ClusterSpec(
                tuple(
                    WorkerAddress(
                        index=index,
                        host=self.host,
                        port=self._ports[index],
                        pid=None if process is None else process.pid,
                    )
                    for index, process in enumerate(self._processes)
                )
            )
