"""Dynamic time warping (DTW) distance.

DTW is the default distance for the clustering task (Symbols dataset) and is
also used to match extracted shapes to ground-truth centroids in the figures.
The implementation is a vectorized O(n·m) dynamic program with an optional
Sakoe–Chiba band to bound warping.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_time_series


def dtw_distance(
    series_a,
    series_b,
    window: int | None = None,
    squared: bool = False,
) -> float:
    """Return the DTW distance between two numeric series.

    Parameters
    ----------
    series_a, series_b:
        1-D numeric sequences (possibly of different lengths).
    window:
        Optional Sakoe–Chiba band half-width.  ``None`` means unconstrained
        warping.
    squared:
        If True, accumulate squared point-wise differences and return the
        square root of the total (the common "DTW with squared local cost"
        convention).  If False (default), accumulate absolute differences.
    """
    a = check_time_series(series_a, "series_a")
    b = check_time_series(series_b, "series_b")
    n, m = a.size, b.size
    if window is not None:
        if window < 0:
            raise ValueError(f"window must be non-negative, got {window}")
        window = max(int(window), abs(n - m))

    inf = np.inf
    cost = np.full((n + 1, m + 1), inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        if window is None:
            j_start, j_end = 1, m
        else:
            j_start = max(1, i - window)
            j_end = min(m, i + window)
        row_a = a[i - 1]
        for j in range(j_start, j_end + 1):
            diff = row_a - b[j - 1]
            local = diff * diff if squared else abs(diff)
            best_prev = min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])
            cost[i, j] = local + best_prev

    total = cost[n, m]
    if not np.isfinite(total):
        raise RuntimeError("DTW window too narrow: no admissible warping path")
    return float(np.sqrt(total)) if squared else float(total)


def dtw_path(series_a, series_b) -> list[tuple[int, int]]:
    """Return one optimal warping path as a list of (i, j) index pairs.

    The path starts at ``(0, 0)`` and ends at ``(len(a) - 1, len(b) - 1)``.
    Used by :mod:`repro.mining.kmeans` to compute DTW barycenters.
    """
    a = check_time_series(series_a, "series_a")
    b = check_time_series(series_b, "series_b")
    n, m = a.size, b.size
    cost = np.full((n + 1, m + 1), np.inf)
    cost[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            local = abs(a[i - 1] - b[j - 1])
            cost[i, j] = local + min(cost[i - 1, j], cost[i, j - 1], cost[i - 1, j - 1])

    path = [(n - 1, m - 1)]
    i, j = n, m
    while (i, j) != (1, 1):
        moves = [
            (cost[i - 1, j - 1], (i - 1, j - 1)),
            (cost[i - 1, j], (i - 1, j)),
            (cost[i, j - 1], (i, j - 1)),
        ]
        _, (i, j) = min(moves, key=lambda item: item[0])
        path.append((i - 1, j - 1))
    path.reverse()
    return path
