"""Distance measures between time series and between symbolic shapes.

The paper measures shape similarity with three metrics — dynamic time warping
(DTW), string edit distance (SED), and Euclidean distance — and additionally
uses Hausdorff distance in its discussion of the sub-shape frequency lemma.
All four are implemented here for both numeric series and symbolic shapes
(symbolic shapes are mapped to numeric values via the SAX centroids when a
numeric metric is requested).
"""

from repro.distance.dtw import dtw_distance
from repro.distance.euclidean import euclidean_distance
from repro.distance.edit import edit_distance
from repro.distance.hausdorff import hausdorff_distance
from repro.distance.registry import (
    available_metrics,
    get_metric,
    shape_distance,
    similarity_score,
)

__all__ = [
    "dtw_distance",
    "euclidean_distance",
    "edit_distance",
    "hausdorff_distance",
    "available_metrics",
    "get_metric",
    "shape_distance",
    "similarity_score",
]
