"""Euclidean distance between (possibly different-length) series.

When the two series have different lengths, the shorter one is linearly
resampled onto the longer one's time axis before the point-wise comparison.
This mirrors how the paper compares compressed symbolic shapes of different
lengths under the Euclidean metric (Fig. 15, Tables III/IV).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_time_series


def resample_to_length(series, length: int) -> np.ndarray:
    """Linearly resample a 1-D series onto ``length`` evenly spaced points."""
    arr = check_time_series(series)
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if arr.size == length:
        return arr.copy()
    if arr.size == 1:
        return np.full(length, arr[0], dtype=float)
    old_positions = np.linspace(0.0, 1.0, arr.size)
    new_positions = np.linspace(0.0, 1.0, length)
    return np.interp(new_positions, old_positions, arr)


def euclidean_distance(series_a, series_b) -> float:
    """Euclidean distance after aligning both series to a common length."""
    a = check_time_series(series_a, "series_a")
    b = check_time_series(series_b, "series_b")
    target = max(a.size, b.size)
    a_aligned = resample_to_length(a, target)
    b_aligned = resample_to_length(b, target)
    return float(np.linalg.norm(a_aligned - b_aligned))
