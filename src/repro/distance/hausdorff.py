"""Hausdorff distance between time series viewed as point sets in (t, value) space.

The paper lists Hausdorff distance among the metrics that satisfy the relaxed
triangle-style inequality used in the sub-shape frequency proof; it is
provided here for completeness and for extra ablations on the distance metric.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_time_series


def _as_points(series) -> np.ndarray:
    """Embed a 1-D series into 2-D points (normalized index, value)."""
    arr = check_time_series(series)
    if arr.size == 1:
        positions = np.zeros(1)
    else:
        positions = np.linspace(0.0, 1.0, arr.size)
    return np.column_stack([positions, arr])


def hausdorff_distance(series_a, series_b) -> float:
    """Symmetric Hausdorff distance between two series in (t, value) space."""
    points_a = _as_points(series_a)
    points_b = _as_points(series_b)
    # Pairwise Euclidean distances between the two point sets.
    differences = points_a[:, None, :] - points_b[None, :, :]
    pairwise = np.sqrt((differences ** 2).sum(axis=2))
    forward = pairwise.min(axis=1).max()
    backward = pairwise.min(axis=0).max()
    return float(max(forward, backward))
