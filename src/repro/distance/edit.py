"""String edit distance (SED) between symbolic shapes.

SED (Levenshtein distance with unit costs) is the default metric for the
classification task on the Trace dataset and is one of the three metrics
swept in Fig. 15.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def edit_distance(sequence_a: Sequence, sequence_b: Sequence) -> float:
    """Levenshtein distance between two sequences of hashable elements.

    Insertions, deletions, and substitutions all cost 1.  Accepts strings,
    tuples of symbols, or any sequence of comparable elements.
    """
    a = list(sequence_a)
    b = list(sequence_b)
    n, m = len(a), len(b)
    if n == 0:
        return float(m)
    if m == 0:
        return float(n)

    previous = np.arange(m + 1, dtype=float)
    current = np.empty(m + 1, dtype=float)
    for i in range(1, n + 1):
        current[0] = i
        for j in range(1, m + 1):
            substitution_cost = 0.0 if a[i - 1] == b[j - 1] else 1.0
            current[j] = min(
                previous[j] + 1.0,        # deletion
                current[j - 1] + 1.0,     # insertion
                previous[j - 1] + substitution_cost,
            )
        previous, current = current, previous
    return float(previous[m])
