"""Metric registry and shape-level distance / similarity helpers.

Two kinds of objects need comparing throughout the library:

* numeric time series (raw data, reconstructed shapes) — compared directly
  with DTW / Euclidean / Hausdorff;
* symbolic shapes (tuples of SAX symbols such as ``('a', 'c', 'b')``) —
  compared with SED directly, or mapped onto the SAX symbol centroids first
  when a numeric metric is requested.

``similarity_score`` converts a distance into the normalized ``[0, 1]`` score
the Exponential Mechanism consumes (Eq. (2) of the paper): a score of 1 means
identical shapes, a score of 0 means maximally dissimilar among plausible
shapes of that length.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Sequence

import numpy as np

from repro.distance.dtw import dtw_distance
from repro.distance.edit import edit_distance
from repro.distance.euclidean import euclidean_distance
from repro.distance.hausdorff import hausdorff_distance
from repro.sax.breakpoints import symbol_centroids

MetricFn = Callable[[Sequence, Sequence], float]

_NUMERIC_METRICS: dict[str, MetricFn] = {
    "dtw": dtw_distance,
    "euclidean": euclidean_distance,
    "hausdorff": hausdorff_distance,
}

_SYMBOLIC_METRICS: dict[str, MetricFn] = {
    "sed": edit_distance,
    "edit": edit_distance,
}


def available_metrics() -> list[str]:
    """Names accepted by :func:`get_metric` and :func:`shape_distance`."""
    return sorted(set(_NUMERIC_METRICS) | set(_SYMBOLIC_METRICS))


def get_metric(name: str) -> MetricFn:
    """Look up a raw metric function by name (case-insensitive)."""
    key = name.lower()
    if key in _NUMERIC_METRICS:
        return _NUMERIC_METRICS[key]
    if key in _SYMBOLIC_METRICS:
        return _SYMBOLIC_METRICS[key]
    raise KeyError(f"unknown metric {name!r}; available: {available_metrics()}")


def _symbols_to_numeric(shape: Sequence[str], alphabet_size: int) -> np.ndarray:
    """Map a symbolic shape onto the SAX symbol centroid values."""
    centroids = symbol_centroids(alphabet_size)
    return np.array([centroids[s] for s in shape], dtype=float)


@lru_cache(maxsize=262_144)
def _cached_shape_distance(
    shape_a: tuple[str, ...], shape_b: tuple[str, ...], metric: str, alphabet_size: int
) -> float:
    if metric in _SYMBOLIC_METRICS:
        return _SYMBOLIC_METRICS[metric](shape_a, shape_b)
    if metric in _NUMERIC_METRICS:
        values_a = _symbols_to_numeric(shape_a, alphabet_size)
        values_b = _symbols_to_numeric(shape_b, alphabet_size)
        return _NUMERIC_METRICS[metric](values_a, values_b)
    raise KeyError(f"unknown metric {metric!r}; available: {available_metrics()}")


def shape_distance(
    shape_a: Sequence[str],
    shape_b: Sequence[str],
    metric: str = "dtw",
    alphabet_size: int = 4,
) -> float:
    """Distance between two symbolic shapes under the named metric.

    SED compares the symbol sequences directly; numeric metrics compare the
    centroid-value reconstructions.  Results are memoized: the mechanisms call
    this for many users sharing the same compressed sequence, so repeated
    (shape, candidate) pairs are free.
    """
    key = metric.lower()
    if key not in _SYMBOLIC_METRICS and key not in _NUMERIC_METRICS:
        raise KeyError(f"unknown metric {metric!r}; available: {available_metrics()}")
    a = tuple(shape_a)
    b = tuple(shape_b)
    if not a and not b:
        return 0.0
    if not a or not b:
        # Numeric metrics cannot compare against an empty reconstruction; fall
        # back to the edit distance (all insertions).
        return float(max(len(a), len(b)))
    return _cached_shape_distance(a, b, key, int(alphabet_size))


def similarity_score(
    shape_a: Sequence[str],
    shape_b: Sequence[str],
    metric: str = "dtw",
    alphabet_size: int = 4,
) -> float:
    """Normalized similarity in ``[0, 1]`` used as the EM score function.

    The distance is mapped through ``1 / (1 + d / L)`` where ``L`` is the
    larger shape length — a monotone decreasing transform of the distance
    bounded in ``(0, 1]``, so the EM sensitivity is 1 as in the paper.
    """
    if len(shape_a) == 0 and len(shape_b) == 0:
        return 1.0
    distance = shape_distance(shape_a, shape_b, metric=metric, alphabet_size=alphabet_size)
    scale = max(len(shape_a), len(shape_b), 1)
    return float(1.0 / (1.0 + distance / scale))
