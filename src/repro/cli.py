"""Command-line interface for the PrivShape reproduction.

The canonical execution surface is ``repro run`` — one spec, one population,
one ``--backend`` — and ``repro sweep`` for grids:

* ``run``       — execute one experiment spec on a chosen backend
  (``inline`` / ``sharded`` / ``gateway`` / ``subprocess``) and print the
  structured :class:`~repro.api.results.RunResult` artifact;
* ``sweep``     — expand a :class:`~repro.api.sweep.SweepSpec` grid
  (epsilons × mechanisms × SAX parameters × datasets) on any backend, with
  optional ``--parallel`` fan-out, and print the
  :class:`~repro.api.sweep.SweepResult`;
* ``cluster``   — the paper's clustering-task evaluation for one mechanism;
* ``classify``  — the paper's classification-task evaluation;
* ``serve``     — run the network-facing collection gateway (NDJSON over TCP
  + HTTP ``/status`` / ``/result``), with optional durable checkpoints and
  ``--resume`` crash recovery;
* ``loadgen``   — hammer a running gateway with the synthetic population over
  the socket, optionally from multiple worker processes.

Two legacy sub-commands remain as deprecated shims over the same path:
``extract`` (= ``run --task extract``) and ``simulate``
(= ``run --dataset synthetic``); they keep their flags and emit a
``DeprecationWarning``.

Datasets are the built-in generators (``symbols``, ``trace``, ``waves``),
the constant-memory ``synthetic`` template stream, or a UCR-format file
passed with ``--ucr-file``.  Every sub-command accepts ``--json`` for
machine-readable output; run/cluster/classify/extract print one
:class:`RunResult` document (estimates, per-round accounting, timings,
backend metadata, spec echo) with normalized key names across sub-commands.

Examples
--------
::

    python -m repro.cli run --dataset trace --users 10000 --epsilon 4
    python -m repro.cli run --dataset synthetic --users 200000 --backend gateway --shards 4
    python -m repro.cli sweep --task extract --dataset synthetic --epsilons 1 2 4 --backend inline
    python -m repro.cli classify --dataset trace --mechanism privshape --epsilon 2
    python -m repro.cli cluster --ucr-file Symbols_TRAIN.tsv --epsilon 4 --alphabet-size 6
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import sys
import warnings
from pathlib import Path
from typing import Any, Sequence

from repro import __version__
from repro.api import (
    CollectionSpec,
    DataSpec,
    ExperimentSpec,
    PrivacySpec,
    RunResult,
    SAXSpec,
    SweepSpec,
    available_executors,
    available_mechanisms,
)
from repro.api.sweep import AXIS_ORDER
from repro.exceptions import ReproError
from repro.server import CollectionGateway, GatewayClient, publish_port, run_loadgen

#: Dataset sources selectable with --dataset (DataSpec sources).
DATASET_CHOICES = ("trace", "symbols", "waves", "synthetic")


#: One-shot guard: main() must not grow warnings.filters on every call when
#: embedded (tests, programmatic drivers invoke it repeatedly).
_deprecations_visible = False


def _ensure_deprecations_visible() -> None:
    """Show this CLI's DeprecationWarnings regardless of the entry point.

    Python's default filters only display DeprecationWarning raised from
    ``__main__``, which would hide the extract/simulate notices when the CLI
    runs through the installed ``repro`` console script (module
    ``repro.cli``).  Installed once per process, and never when the user
    configured warnings explicitly (``-W`` / ``PYTHONWARNINGS``) — e.g.
    ``-W error::DeprecationWarning`` must stay fatal.
    """
    global _deprecations_visible
    if not _deprecations_visible and not sys.warnoptions:
        warnings.filterwarnings(
            "default", category=DeprecationWarning,
            module=r"(repro\.cli|__main__)$",
        )
    _deprecations_visible = True


def _deprecated(old: str, new: str) -> None:
    """Emit one DeprecationWarning for a legacy CLI surface (kept working)."""
    warnings.warn(
        f"`repro {old}` is deprecated; use `repro {new}` instead "
        "(same results, structured RunResult output)",
        DeprecationWarning,
        stacklevel=3,
    )


def _emit(args: argparse.Namespace, payload: dict[str, Any], text: str) -> None:
    """Print the machine-readable or human-readable form of one result."""
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def _load_json_file(path: str, kind: str, parse) -> Any:
    """Load and parse one JSON document file with CLI-grade errors."""
    try:
        return parse(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read {kind} file {path!r}: {exc}") from exc
    except (json.JSONDecodeError, ReproError, TypeError, ValueError) as exc:
        # Malformed JSON, unknown fields (TypeError), or invalid values
        # (library ConfigurationError and friends).
        raise SystemExit(f"invalid {kind} file {path!r}: {exc}") from exc


def _load_spec(path: str) -> ExperimentSpec:
    """Load a serialized :class:`ExperimentSpec` from a JSON file."""
    return _load_json_file(path, "spec", ExperimentSpec.from_json)


# --------------------------------------------------------------- spec building


def _default_sax(args: argparse.Namespace) -> tuple[int, int]:
    """Dataset-appropriate SAX defaults when the user did not override them."""
    alphabet_size = args.alphabet_size
    segment_length = args.segment_length
    symbols = args.dataset == "symbols" and not args.ucr_file
    if alphabet_size is None:
        alphabet_size = 6 if symbols else 4
    if segment_length is None:
        segment_length = 25 if symbols else 10
    return alphabet_size, segment_length


def _spec_from_args(args: argparse.Namespace, default_metric: str) -> ExperimentSpec:
    """The experiment spec requested on the command line (file or flags)."""
    if args.spec:
        return _load_spec(args.spec)
    alphabet_size, segment_length = _default_sax(args)
    # Task-level knobs ride spec.options so they serialize with the spec
    # (surviving --backend subprocess and sweep grids).
    options: dict[str, Any] = {}
    for attr, key in (("n_shapelets", "n_shapelets"),
                      ("shapelet_min_length", "shapelet_min_length"),
                      ("shapelet_max_length", "shapelet_max_length")):
        value = getattr(args, attr, None)
        if value is not None:
            options[key] = value
    return ExperimentSpec(
        mechanism=args.mechanism,
        privacy=PrivacySpec(epsilon=args.epsilon),
        sax=SAXSpec(alphabet_size=alphabet_size, segment_length=segment_length),
        collection=CollectionSpec(
            top_k=args.top_k,
            metric=args.metric or default_metric,
        ),
        options=options,
    )


def _data_from_args(
    args: argparse.Namespace, source: str | None = None
) -> DataSpec:
    """The population description requested on the command line.

    ``source`` overrides ``--dataset`` (the sweep's ``--datasets`` axis
    builds one DataSpec per named source from the same remaining flags).
    """
    if source is None:
        if getattr(args, "data_spec", None):
            return _load_json_file(args.data_spec, "data spec", DataSpec.from_json)
        if args.ucr_file:
            return DataSpec(source="ucr", path=args.ucr_file)
        source = args.dataset
    return DataSpec(
        source=source,
        n_users=args.users,
        seed=args.seed,
        n_templates=getattr(args, "templates", 6),
        template_length=getattr(args, "template_length", 5),
        length_jitter=getattr(args, "length_jitter", 0.2),
        wave_length=getattr(args, "wave_length", 400),
    )


def _default_metric(data: DataSpec, task: str) -> str:
    """The task/data-appropriate distance metric default."""
    if data.source == "synthetic" or task in ("classify", "shapelet"):
        return "sed"
    return "dtw"


def _backend_options(args: argparse.Namespace, task: str) -> dict[str, Any]:
    """Backend options actually set on the command line, scoped to the task.

    ``evaluation_size`` only reaches the evaluation tasks and the collection
    knobs only reach extract runs, so an inert flag raises in `run_spec`
    instead of being forwarded and silently ignored.
    """
    options: dict[str, Any] = {}
    # Telemetry is accepted by every task/backend (run_spec pops it before
    # the per-backend option validation).
    if getattr(args, "telemetry", False):
        options["telemetry"] = True
    if getattr(args, "trace", None):
        options["trace"] = args.trace
    if task in ("cluster", "classify"):
        if getattr(args, "evaluation_size", None) is not None:
            options["evaluation_size"] = args.evaluation_size
        return options
    if task == "shapelet" and getattr(args, "evaluation_size", None) is not None:
        # Shapelet takes both: collection knobs drive the extraction phase,
        # evaluation_size bounds the labelled scoring pool.
        options["evaluation_size"] = args.evaluation_size
    for name in ("batch_size", "shards", "workers", "queue_depth",
                 "mp_context"):
        value = getattr(args, name, None)
        if value is not None:
            options[name] = value
    if getattr(args, "serialize", False):
        options["serialize"] = True
    return options


# ---------------------------------------------------------------- emitting


def _dataset_and_users(result: RunResult) -> tuple[Any, Any]:
    """The display (dataset name, user count) of one run, wherever stamped."""
    dataset = result.details.get(
        "dataset", result.data.get("name", result.data.get("source"))
    )
    users = result.details.get("n_users", result.data.get("n_users"))
    return dataset, users


def _run_payload(command: str, result: RunResult) -> dict[str, Any]:
    """One normalized ``--json`` document for a finished run.

    The document is the :class:`RunResult` serialization itself, plus a few
    flattened convenience keys every sub-command spells identically
    (``epsilon`` — never ``eps`` —, ``mechanism``, ``dataset``, ``users``,
    lowercase ``ari`` / ``accuracy``).
    """
    payload = {"command": command, **result.to_dict()}
    payload["mechanism"] = result.spec.mechanism
    payload["epsilon"] = float(result.spec.privacy.epsilon)
    payload["dataset"], payload["users"] = _dataset_and_users(result)
    payload["shapes"] = [dict(entry) for entry in result.estimates]
    if result.estimated_length is not None:
        payload["estimated_length"] = result.estimated_length
    for metric in ("ari", "accuracy", "elapsed_seconds"):
        if metric in result.metrics:
            payload[metric] = float(result.metrics[metric])
    grouped = result.shapes_by_class()
    if grouped:
        payload["shapes_by_class"] = {
            str(label): shapes for label, shapes in sorted(grouped.items())
        }
    return payload


def _accounting_lines(result: RunResult) -> list[str]:
    accounting = result.accounting
    if not accounting:
        return []
    lines = []
    per_population = accounting.get("per_population", {})
    if per_population:
        lines.append(
            "population budgets: "
            + ", ".join(f"{name}={value:g}" for name, value in per_population.items())
        )
    if "user_level_epsilon" in accounting:
        verdict = "within budget" if accounting.get("within_budget") else "OVER BUDGET"
        lines.append(
            f"effective user-level epsilon {accounting['user_level_epsilon']:g} "
            f"({verdict})"
        )
    return lines


def _run_text(result: RunResult) -> str:
    """Human-readable rendering of one RunResult."""
    dataset, users = _dataset_and_users(result)
    lines = [
        f"task: {result.task}  backend: {result.backend}",
        f"dataset: {dataset or '?'} ({users if users is not None else '?'} users)",
        f"mechanism: {result.spec.mechanism}, "
        f"epsilon = {result.spec.privacy.epsilon}",
    ]
    for metric in ("ari", "accuracy"):
        if metric in result.metrics:
            lines.append(f"{metric.upper() if metric == 'ari' else metric} = "
                         f"{result.metrics[metric]:.3f}")
    if "elapsed_seconds" in result.metrics:
        lines.append(f"elapsed = {result.metrics['elapsed_seconds']:.2f}s")
    if result.estimated_length is not None:
        lines.append(f"estimated frequent length: {result.estimated_length}")
    grouped = result.shapes_by_class()
    if grouped:
        lines.append("per-class shapes:")
        for label, shapes in sorted(grouped.items()):
            lines.append(f"  class {label}: {', '.join(shapes) if shapes else '-'}")
    elif result.estimates:
        lines.append("top shapes:")
        for entry in result.estimates:
            count = entry.get("estimated_count")
            suffix = "" if count is None else f" estimated count {count:12.1f}"
            lines.append(f"  {entry['shape']:<16}{suffix}")
    shapelets = result.details.get("shapelets")
    if result.task == "shapelet" and shapelets:
        lines.append("shapelets (gain / threshold):")
        for entry in shapelets:
            lines.append(
                f"  {entry['symbols']:<16} gain {entry['gain']:.3f}  "
                f"threshold {entry['threshold']:.4f}"
            )
    truth = result.details.get("ground_truth_shapes")
    if truth:
        lines.append(f"ground truth: {', '.join(truth)}")
    if result.timings.get("total_reports"):
        lines.append(
            f"total: {result.timings['total_reports']} reports in "
            f"{result.timings.get('total_seconds', 0.0):.2f}s "
            f"= {result.timings.get('reports_per_second', 0.0):,.0f} reports/sec"
        )
    lines.extend(_accounting_lines(result))
    return "\n".join(lines)


# --------------------------------------------------------------- sub-commands


def _execute(args: argparse.Namespace, task: str, backend: str) -> RunResult:
    """Shared spec-building + execution path of run/extract/cluster/classify."""
    data = _data_from_args(args)
    spec = _spec_from_args(args, _default_metric(data, task))
    try:
        return spec.run(
            data, backend=backend, task=task, seed=args.seed,
            **_backend_options(args, task),
        )
    except ReproError as exc:
        raise SystemExit(f"run failed: {exc}") from exc


def _command_run(args: argparse.Namespace) -> int:
    result = _execute(args, task=args.task, backend=args.backend)
    _emit(args, _run_payload("run", result), _run_text(result))
    return 0


def _windows_payload(sequence) -> dict[str, Any]:
    """One ``--json`` document for a finished continual run."""
    return {"command": "windows", **sequence.to_dict()}


def _windows_text(sequence) -> str:
    """Human-readable rendering of one RunSequence."""
    continual = sequence.continual
    lines = [
        f"continual run: {len(sequence)} closed windows "
        f"({len(sequence.final_results)} final) on backend "
        f"{continual.get('backend', '?')}"
    ]
    for result in sequence:
        data = result.data
        drift = result.details.get("drift") or {}
        mark = "final" if data.get("final") else "superseded"
        line = (
            f"  window {data['window']} [{data['start']}:{data['stop']}] "
            f"attempt {data['attempt']} {data['mode']:<7} {mark}: "
            + (", ".join(result.shapes) or "-")
        )
        if drift:
            line += f"  (l1 drift {drift.get('l1', 0.0):.3f}"
            if drift.get("fired"):
                line += ", re-extraction FIRED"
            line += ")"
        lines.append(line)
    accounting = continual.get("accounting", {})
    if accounting:
        verdict = (
            "within budget" if accounting.get("within_budget") else "OVER BUDGET"
        )
        lines.append(
            f"user-level epsilon {accounting.get('user_level_epsilon', 0.0):g} "
            f"over the whole stream; {accounting.get('user_horizon', '?')}-window "
            f"horizon epsilon "
            f"{accounting.get('user_level_epsilon_horizon', 0.0):g} ({verdict})"
        )
    return "\n".join(lines)


def _drifting_population(args: argparse.Namespace, spec: ExperimentSpec):
    """The scripted-drift synthetic stream the windows sub-command runs on.

    Template pool and base weights match the ``synthetic`` DataSpec source;
    every ``--breakpoint`` flips to the reversed popularity profile and back,
    so the dominant shape changes at each scripted arrival index.
    """
    from repro.service.population import DriftingShapeStream, default_templates

    alphabet = tuple(spec.sax.alphabet)
    templates = default_templates(
        alphabet,
        n_templates=args.templates,
        length=args.template_length,
        rng=args.seed,
    )
    base = tuple(1.0 / (rank + 1) for rank in range(len(templates)))
    breakpoints = tuple(sorted(int(b) for b in (args.breakpoints or [])))
    mixtures = tuple(
        base if segment % 2 == 0 else tuple(reversed(base))
        for segment in range(len(breakpoints) + 1)
    )
    return DriftingShapeStream(
        n_users=args.users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=base,
        seed=args.seed,
        length_jitter=args.length_jitter,
        breakpoints=breakpoints,
        mixtures=mixtures,
    )


def _command_windows(args: argparse.Namespace) -> int:
    from repro.continual import WindowSpec

    windows = WindowSpec(
        length=args.window_length,
        stride=args.stride,
        n_windows=args.n_windows,
        budget_renewal=args.budget_renewal,
        carry_over=not args.no_carry_over,
        decay=args.decay,
        refresh=args.refresh,
        refresh_fraction=args.refresh_fraction,
        drift_threshold=args.drift_threshold,
        churn_threshold=args.churn_threshold,
        hysteresis=args.hysteresis,
    )
    spec = dataclasses.replace(_spec_from_args(args, "sed"), windows=windows)
    population = _drifting_population(args, spec)
    # Live streams expose no sequence lengths, so resolve the open spec slots
    # the way the synthetic DataSpec source does.
    spec = spec.resolve(
        top_k=min(3, len(population.templates)),
        length_high=args.template_length,
    )
    try:
        sequence = spec.run(
            population, backend=args.backend, seed=args.seed,
            **_backend_options(args, "extract"),
        )
    except ReproError as exc:
        raise SystemExit(f"windows run failed: {exc}") from exc
    _emit(args, _windows_payload(sequence), _windows_text(sequence))
    return 0


def _command_extract(args: argparse.Namespace) -> int:
    _deprecated("extract", "run --task extract")
    result = _execute(args, task="extract", backend="inline")
    _emit(args, _run_payload("extract", result), _run_text(result))
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    result = _execute(args, task="cluster", backend="inline")
    _emit(args, _run_payload("cluster", result), _run_text(result))
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    result = _execute(args, task="classify", backend="inline")
    _emit(args, _run_payload("classify", result), _run_text(result))
    return 0


# ---------------------------------------------------------------------- sweep


def _sweep_from_args(args: argparse.Namespace) -> tuple[SweepSpec, DataSpec | None]:
    """The sweep grid requested on the command line (file or flags)."""
    if args.sweep_spec:
        sweep = _load_json_file(args.sweep_spec, "sweep spec", SweepSpec.from_json)
        return sweep, None if sweep.datasets else _data_from_args(args)
    data = _data_from_args(args)
    base = _spec_from_args(args, _default_metric(data, args.task))
    datasets: tuple[DataSpec, ...] = ()
    if args.datasets:
        datasets = tuple(
            _data_from_args(args, source=source) for source in args.datasets
        )
    sweep = SweepSpec(
        base=base,
        task=args.task,
        epsilons=tuple(args.epsilons or ()),
        mechanisms=tuple(args.mechanisms or ()),
        alphabet_sizes=tuple(args.alphabet_sizes or ()),
        segment_lengths=tuple(args.segment_lengths or ()),
        shapelet_counts=tuple(getattr(args, "shapelet_counts", None) or ()),
        shapelet_lengths=tuple(getattr(args, "shapelet_lengths", None) or ()),
        datasets=datasets,
    )
    return sweep, None if datasets else data


def _command_sweep(args: argparse.Namespace) -> int:
    sweep, data = _sweep_from_args(args)
    try:
        result = sweep.run(
            data,
            backend=args.backend,
            seed=args.seed,
            parallel=args.parallel,
            **_backend_options(args, sweep.task),
        )
    except ReproError as exc:
        raise SystemExit(f"sweep failed: {exc}") from exc

    metric_name = {"cluster": "ari", "classify": "accuracy",
                   "shapelet": "accuracy"}.get(sweep.task, "elapsed_seconds")
    points = []
    for point, run in zip(result.points, result.runs):
        record = {
            name: (value.name if isinstance(value, DataSpec) else value)
            for name, value in point.items()
        }
        record.update({name: float(value) for name, value in run.metrics.items()})
        points.append(record)
    payload = {
        "command": "sweep",
        **result.to_dict(),
        "task": sweep.task,
        "metric_name": metric_name,
        "points": points,
    }

    axis_names = [name for name in AXIS_ORDER if name in sweep.axes()]
    header = "  ".join(f"{name:>14}" for name in axis_names + [metric_name])
    lines = [
        f"sweep: task={sweep.task}, backend={result.backend}, "
        f"{len(result.runs)} point(s)",
        header,
        "-" * len(header),
    ]
    for record in points:
        cells = [f"{record.get(name, ''):>14}" for name in axis_names]
        cells.append(f"{record.get(metric_name, float('nan')):>14.3f}")
        lines.append("  ".join(cells))
    _emit(args, payload, "\n".join(lines))
    return 0


# ----------------------------------------------------- simulate / serve / loadgen


def _synthetic_stream(args: argparse.Namespace):
    """The deterministic synthetic population shared by serve and loadgen.

    Built through :meth:`DataSpec.build_population` — the same code path
    ``repro run --dataset synthetic`` uses — so serve + loadgen with the
    same seed/flags collect exactly the population the in-process run
    streams.  Returns ``(population, template_strings, alphabet_size)``.
    """
    alphabet_size = args.alphabet_size or 4
    data = _data_from_args(args, source="synthetic")
    spec = ExperimentSpec(sax=SAXSpec(alphabet_size=alphabet_size))
    population, meta, _, _ = data.build_population(spec)
    return population, meta["templates"], alphabet_size


def _serving_spec(args: argparse.Namespace, n_templates: int | None = None) -> ExperimentSpec:
    """The collection spec shared by ``simulate`` and ``serve``."""
    default_top_k = 3 if n_templates is None else min(3, n_templates)
    return ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=args.epsilon),
        sax=SAXSpec(alphabet_size=args.alphabet_size or 4),
        collection=CollectionSpec(
            top_k=args.top_k or default_top_k,
            metric=args.metric or "sed",
            length_low=1,
            length_high=args.template_length,
        ),
    )


def _command_simulate(args: argparse.Namespace) -> int:
    """Deprecated shim: stream the synthetic population through `run`."""
    _deprecated("simulate", "run --dataset synthetic")
    data = _data_from_args(args, source="synthetic")
    # top_k=None resolves to min(3, the *actual* template-pool size) at
    # realization, exactly like the pre-shim code that counted the generated
    # templates (a small alphabet can yield fewer than requested).
    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=args.epsilon),
        sax=SAXSpec(alphabet_size=args.alphabet_size or 4),
        collection=CollectionSpec(
            top_k=args.top_k,
            metric=args.metric or "sed",
            length_low=1,
            length_high=args.template_length,
        ),
    )
    try:
        result = spec.run(
            data,
            backend="inline",
            seed=args.seed,
            batch_size=args.batch_size,
            shards=args.shards,
            serialize=args.serialize,
        )
    except ReproError as exc:
        raise SystemExit(f"simulate failed: {exc}") from exc

    # Legacy envelope, now assembled from the structured artifact.
    payload = {
        "command": "simulate",
        **_run_payload("simulate", result),
        "batch_size": args.batch_size,
        "shards": args.shards,
        "serialize_reports": bool(args.serialize),
        "alphabet_size": result.spec.sax.alphabet_size,
        "templates": result.details.get("templates", []),
        "throughput": {
            **result.timings,
            # "participants" is the key DriverStats always emitted here;
            # keep it alongside the normalized "reports" for old consumers.
            "rounds": [
                {**record, "participants": record["reports"]}
                for record in result.rounds
            ],
        },
    }
    lines = [
        f"simulated population: {args.users} users "
        f"(batch size {args.batch_size}, {args.shards} shard(s), "
        f"wire serialization {'on' if args.serialize else 'off'})",
        f"templates: {', '.join(result.details.get('templates', []))}",
        "rounds:",
    ]
    for record in result.rounds:
        level = f" level {record['level']}" if record["kind"] == "expand" else ""
        lines.append(
            f"  round {record['round']}: {record['kind']}{level:<8} "
            f"{record['reports']:>9} reports in {record['elapsed_seconds']:6.2f}s "
            f"({record['reports_per_second']:>12,.0f} reports/sec)"
        )
    lines.append(
        f"total: {result.timings['total_reports']} reports in "
        f"{result.timings['total_seconds']:.2f}s "
        f"= {result.timings['reports_per_second']:,.0f} reports/sec"
    )
    lines.append(f"peak RSS: {result.timings['peak_rss_bytes'] / 1e6:.1f} MB")
    lines.append(f"estimated frequent length: {result.estimated_length}")
    lines.append("top shapes:")
    for entry in result.estimates:
        lines.append(
            f"  {entry['shape']:<16} estimated count {entry['estimated_count']:12.1f}"
        )
    lines.extend(_accounting_lines(result))
    _emit(args, payload, "\n".join(lines))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the network-facing collection gateway until stopped."""
    try:
        if args.resume:
            if not args.checkpoint_dir:
                raise SystemExit("--resume requires --checkpoint-dir")
            gateway = CollectionGateway.from_checkpoint(
                args.checkpoint_dir,
                queue_depth=args.queue_depth,
                checkpoint_every=args.checkpoint_every,
            )
        else:
            spec = _load_spec(args.spec) if args.spec else _serving_spec(args)
            gateway = CollectionGateway(
                spec,
                rng=args.seed,
                n_shards=args.shards,
                queue_depth=args.queue_depth or 64,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
            )
    except ReproError as exc:
        raise SystemExit(f"cannot start gateway: {exc}") from exc

    async def _serve() -> None:
        await gateway.start(args.host, args.port)
        if args.port_file:
            # Published only once the listener is bound, and atomically
            # (write-temp + rename), so scripts polling this file to learn an
            # ephemeral (--port 0) port can never read a torn write.
            publish_port(args.port_file, gateway.port)
        announcement = {
            "event": "listening",
            "host": gateway.host,
            "port": gateway.port,
            "shards": gateway.n_shards,
            "queue_depth": gateway.queue_depth,
            "checkpoint_dir": args.checkpoint_dir,
            "resumed": bool(args.resume),
            "stage": gateway.engine.stage,
        }
        _emit(
            args,
            announcement,
            f"collection gateway listening on {gateway.host}:{gateway.port} "
            f"({gateway.n_shards} shard(s), stage {gateway.engine.stage}"
            + (f", checkpoints in {args.checkpoint_dir}" if args.checkpoint_dir else "")
            + ")",
        )
        sys.stdout.flush()
        await gateway.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    """Drive a running gateway or cluster through a full collection run."""
    population, templates, alphabet_size = _synthetic_stream(args)

    def _drive():
        if args.cluster:
            from repro.cluster import ChaosKill, run_cluster_loadgen

            chaos = None
            if args.chaos_kill_round is not None:
                # Fault injection for smoke tests: SIGKILL one shard worker
                # mid-round and let the supervised recovery prove itself.
                chaos = ChaosKill(
                    round_index=args.chaos_kill_round,
                    worker_index=args.chaos_kill_worker,
                    after_batches=args.chaos_kill_after,
                )
            return run_cluster_loadgen(
                args.host,
                args.port,
                population,
                batch_size=args.batch_size,
                workers=args.workers,
                chaos=chaos,
            )
        return run_loadgen(
            args.host,
            args.port,
            population,
            batch_size=args.batch_size,
            workers=args.workers,
        )

    telemetry = None
    try:
        if args.telemetry or args.trace:
            from repro.obs import capture

            with capture() as cap:
                stats = _drive()
            telemetry = cap.summary()
            if args.trace:
                cap.write_chrome_trace(args.trace)
        else:
            stats = _drive()
        if args.stop_server:
            with GatewayClient(args.host, args.port) as client:
                client.stop()
    except ReproError as exc:
        raise SystemExit(f"load generation failed: {exc}") from exc

    result = stats.result or {}
    payload = {
        "command": "loadgen",
        "host": args.host,
        "port": args.port,
        "cluster": bool(args.cluster),
        "users": args.users,
        "batch_size": args.batch_size,
        "workers": args.workers,
        "alphabet_size": alphabet_size,
        "templates": list(templates),
        **stats.to_dict(),
    }
    if telemetry is not None:
        payload["telemetry"] = telemetry
    target = "cluster coordinator" if args.cluster else "gateway"
    lines = [
        f"load generation against {target} {args.host}:{args.port}: "
        f"{args.users} users, {args.workers or 'in-process'} worker(s), "
        f"batch size {args.batch_size}",
        "rounds:",
    ]
    for round_stats in stats.rounds:
        lines.append(
            f"  round {round_stats.index}: {round_stats.kind:<14} "
            f"{round_stats.reports:>9} reports in {round_stats.elapsed_seconds:6.2f}s "
            f"({round_stats.reports_per_second:>12,.0f} reports/sec)"
        )
    lines.append(
        f"total: {stats.total_reports} reports in {stats.total_seconds:.2f}s "
        f"= {stats.reports_per_second:,.0f} reports/sec over the socket "
        f"({stats.batches} batches, {stats.retries} retries)"
    )
    lines.append(f"estimated frequent length: {result.get('estimated_length')}")
    lines.append("top shapes (from GET /result):")
    for shape, frequency in zip(result.get("shapes", []), result.get("frequencies", [])):
        lines.append(f"  {shape:<16} estimated count {frequency:12.1f}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _command_cluster_serve(args: argparse.Namespace) -> int:
    """Boot a supervised worker fleet plus coordinator; serve until stopped."""
    import tempfile

    from repro.cluster import Coordinator, Supervisor

    try:
        spec = _load_spec(args.spec) if args.spec else _serving_spec(args)
    except ReproError as exc:
        raise SystemExit(f"cannot start cluster: {exc}") from exc
    cluster_dir = args.cluster_dir or tempfile.mkdtemp(prefix="repro-cluster-")
    supervisor = Supervisor(
        args.workers,
        cluster_dir,
        host=args.host,
        n_shards=args.shards,
        queue_depth=args.queue_depth or 64,
        checkpoint_every=args.checkpoint_every,
    )
    try:
        supervisor.start()
        coordinator = Coordinator(
            spec,
            supervisor.cluster_spec(),
            n_users=args.users,
            rng=args.seed,
            supervisor=supervisor,
        )

        async def _serve() -> None:
            await coordinator.start(args.host, args.port)
            if args.port_file:
                publish_port(args.port_file, coordinator.port)
            announcement = {
                "event": "listening",
                "host": coordinator.host,
                "port": coordinator.port,
                "n_workers": supervisor.n_workers,
                "n_users": args.users,
                "cluster_dir": cluster_dir,
                "worker_ports": [w.port for w in supervisor.cluster_spec()],
                "stage": coordinator.engine.stage,
            }
            _emit(
                args,
                announcement,
                f"cluster coordinator listening on "
                f"{coordinator.host}:{coordinator.port} "
                f"({supervisor.n_workers} worker(s), {args.users} users, "
                f"state in {cluster_dir})",
            )
            sys.stdout.flush()
            await coordinator.serve_until_stopped()

        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except ReproError as exc:
        raise SystemExit(f"cannot start cluster: {exc}") from exc
    finally:
        supervisor.stop()
    return 0


def _command_cluster_status(args: argparse.Namespace) -> int:
    """Print a running cluster's status (coordinator + per-worker health)."""
    try:
        with GatewayClient(args.host, args.port) as client:
            status = client.status()
    except ReproError as exc:
        raise SystemExit(f"cannot reach cluster: {exc}") from exc
    lines = [
        f"cluster at {args.host}:{args.port}: stage {status.get('stage')}, "
        f"round {status.get('round')}, "
        f"{status.get('rounds_closed', 0)} round(s) closed, "
        f"{status.get('total_reports', 0)} reports",
    ]
    for worker in status.get("workers", []):
        state = "alive" if worker.get("alive") else "DOWN"
        detail = worker.get("status", {})
        lines.append(
            f"  worker {worker['index']} @ {worker['host']}:{worker['port']} "
            f"[{state}] pid={worker.get('pid')} "
            f"reports={detail.get('total_reports', '?')} "
            f"checkpoint_lag={detail.get('checkpoint_lag_batches', '?')}"
        )
    if "restarts" in status:
        lines.append(f"restarts: {status['restarts']}")
    _emit(args, {"command": "cluster-status", "status": status}, "\n".join(lines))
    return 0


def _command_cluster_stop(args: argparse.Namespace) -> int:
    """Ask a running cluster coordinator to shut down."""
    try:
        with GatewayClient(args.host, args.port) as client:
            client.stop()
    except ReproError as exc:
        raise SystemExit(f"cannot reach cluster: {exc}") from exc
    _emit(
        args,
        {"command": "cluster-stop", "stopping": True},
        f"cluster at {args.host}:{args.port} is stopping",
    )
    return 0


# --------------------------------------------------------------------- parser


def _add_common_arguments(
    parser: argparse.ArgumentParser,
    datasets: Sequence[str] = ("symbols", "trace", "waves"),
) -> None:
    parser.add_argument("--dataset", choices=tuple(datasets), default="trace",
                        help="population source (default: trace)")
    parser.add_argument("--ucr-file", default=None,
                        help="path to a UCR-format file; overrides --dataset")
    parser.add_argument("--users", type=int, default=10000,
                        help="number of users for the synthetic datasets")
    parser.add_argument("--wave-length", type=int, default=400,
                        help="series length for the 'waves' dataset")
    parser.add_argument("--epsilon", type=float, default=4.0, help="user-level privacy budget")
    parser.add_argument("--mechanism", choices=available_mechanisms(),
                        default="privshape",
                        help="registered mechanism name (see repro.api.mechanisms)")
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="path to a serialized ExperimentSpec JSON document; "
                             "replaces --mechanism, --epsilon, --alphabet-size, "
                             "--segment-length, --metric and --top-k entirely "
                             "(dataset/evaluation/seed flags still apply)")
    parser.add_argument("--alphabet-size", type=int, default=None, help="SAX symbol size t")
    parser.add_argument("--segment-length", type=int, default=None, help="SAX segment length w")
    parser.add_argument("--metric", default=None,
                        help="distance metric (dtw / sed / euclidean); task-appropriate default")
    parser.add_argument("--top-k", type=int, default=None,
                        help="number of shapes to extract (default: number of classes)")
    parser.add_argument("--evaluation-size", type=int, default=500,
                        help="number of held-out series scored for ARI / accuracy")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--json", action="store_true",
                        help="print one machine-readable JSON document instead of prose")


def _add_synthetic_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs of the constant-memory synthetic template stream."""
    parser.add_argument("--templates", type=int, default=6,
                        help="number of template shapes in the synthetic pool")
    parser.add_argument("--template-length", type=int, default=5,
                        help="length of each template shape")
    parser.add_argument("--length-jitter", type=float, default=0.2,
                        help="fraction of users whose shape is one symbol shorter")


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-backend knobs of the run/sweep sub-commands."""
    parser.add_argument("--backend", choices=available_executors(), default="inline",
                        help="execution backend (see repro.api.executors)")
    parser.add_argument("--batch-size", type=int, default=None,
                        help="users per streamed batch (bounds peak memory)")
    parser.add_argument("--shards", type=int, default=None,
                        help="aggregation shards (inline/gateway) or worker "
                             "processes (sharded backend)")
    parser.add_argument("--workers", type=int, default=None,
                        help="gateway backend: load-generation worker processes")
    parser.add_argument("--queue-depth", type=int, default=None,
                        help="gateway backend: bounded per-shard queue depth")
    parser.add_argument("--mp-context", choices=("spawn", "fork", "forkserver"),
                        default=None,
                        help="multiprocessing start method for process fan-out")
    parser.add_argument("--data-spec", default=None, metavar="FILE",
                        help="serialized DataSpec JSON describing the population; "
                             "replaces the dataset flags")


def _add_shapelet_arguments(parser: argparse.ArgumentParser) -> None:
    """Knobs of the shapelet workload (spec-level: they ride spec.options)."""
    parser.add_argument("--n-shapelets", type=int, default=None,
                        help="task=shapelet: shapelets kept after overlap "
                             "pruning (default: 5)")
    parser.add_argument("--shapelet-min-length", type=int, default=None,
                        help="task=shapelet: shortest candidate window, in "
                             "symbols (default: 2)")
    parser.add_argument("--shapelet-max-length", type=int, default=None,
                        help="task=shapelet: longest candidate window, in "
                             "symbols (default: the full shape)")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Observability knobs (repro.obs) of the run/windows/loadgen commands."""
    parser.add_argument("--telemetry", action="store_true",
                        help="record spans + phase/kernel profile and attach "
                             "the summary to the result (wall-clock only; "
                             "fingerprints are unchanged)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="write recorded spans as Chrome-trace JSON "
                             "(open in Perfetto / chrome://tracing; implies "
                             "--telemetry)")


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivShape: shape extraction in time series under user-level LDP",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="execute one experiment spec on a chosen backend (RunResult out)",
    )
    _add_common_arguments(run, datasets=DATASET_CHOICES)
    _add_synthetic_arguments(run)
    _add_backend_arguments(run)
    run.add_argument("--task", choices=("extract", "cluster", "classify",
                                        "shapelet"),
                     default="extract",
                     help="what to execute: the collection itself, one of "
                          "the paper's evaluation tasks, or the shapelet "
                          "workload (default: extract)")
    _add_shapelet_arguments(run)
    run.add_argument("--serialize", action="store_true",
                     help="inline backend: push every report batch through the "
                          "wire format")
    _add_telemetry_arguments(run)
    run.set_defaults(handler=_command_run)

    windows = subparsers.add_parser(
        "windows",
        help="run a continual (sliding-window) collection over a scripted "
             "drifting synthetic stream (RunSequence out)",
    )
    _add_common_arguments(windows, datasets=("synthetic",))
    _add_synthetic_arguments(windows)
    _add_backend_arguments(windows)
    windows.add_argument("--window-length", type=int, required=True,
                         help="users per collection window")
    windows.add_argument("--stride", type=int, default=None,
                         help="window start offset (default: the length, i.e. "
                              "tumbling windows)")
    windows.add_argument("--n-windows", type=int, default=None,
                         help="cap on the number of windows (default: cover "
                              "the whole stream)")
    windows.add_argument("--budget-renewal", choices=("per_window", "global"),
                         default="per_window",
                         help="epsilon renews every window (event-level view) "
                              "or is split across all windows")
    windows.add_argument("--no-carry-over", action="store_true",
                         help="start every window's trie cold instead of "
                              "seeding it from the previous window")
    windows.add_argument("--decay", type=float, default=0.5,
                         help="carry-over frequency decay factor in (0, 1]")
    windows.add_argument("--refresh", action="store_true",
                         help="refine-only refresh windows (full re-extraction "
                              "only when drift fires)")
    windows.add_argument("--refresh-fraction", type=float, default=0.5,
                         help="fraction of the window budget spent by a "
                              "refresh probe")
    windows.add_argument("--drift-threshold", type=float, default=0.25,
                         help="L1 (total-variation) drift firing threshold")
    windows.add_argument("--churn-threshold", type=float, default=None,
                         help="top-k churn firing threshold (default: L1 only)")
    windows.add_argument("--hysteresis", type=int, default=1,
                         help="consecutive drifted windows before firing")
    windows.add_argument("--breakpoints", type=int, nargs="*", default=[],
                         metavar="USER_ID",
                         help="scripted drift: user ids where the stream's "
                              "template mixture flips")
    _add_telemetry_arguments(windows)
    windows.set_defaults(handler=_command_windows, dataset="synthetic")

    extract = subparsers.add_parser(
        "extract", help="[deprecated: use `run --task extract`]")
    _add_common_arguments(extract)
    extract.set_defaults(handler=_command_extract)

    cluster = subparsers.add_parser(
        "cluster",
        help="run the clustering-task evaluation, or manage a collection "
             "cluster (`cluster serve` / `cluster status` / `cluster stop`)",
    )
    _add_common_arguments(cluster)
    cluster.set_defaults(handler=_command_cluster)
    # Optional nested sub-commands: a bare `repro cluster` stays the paper's
    # clustering evaluation; `repro cluster serve/status/stop` manage the
    # multi-process collection cluster.
    cluster_sub = cluster.add_subparsers(dest="cluster_command")

    cluster_serve = cluster_sub.add_parser(
        "serve",
        help="boot a supervised coordinator/worker collection cluster",
    )
    cluster_serve.add_argument("--users", type=int, default=100_000,
                               help="population size the cluster is sized for")
    cluster_serve.add_argument("--workers", type=int, default=2,
                               help="shard-worker processes to supervise")
    cluster_serve.add_argument("--cluster-dir", default=None, metavar="DIR",
                               help="directory for worker state (ports, pids, "
                                    "checkpoints); default: a temp directory")
    cluster_serve.add_argument("--host", default="127.0.0.1",
                               help="interface to bind")
    cluster_serve.add_argument("--port", type=int, default=0,
                               help="coordinator TCP port (0 picks ephemeral)")
    cluster_serve.add_argument("--port-file", default=None, metavar="FILE",
                               help="atomically publish the coordinator port "
                                    "to FILE once listening")
    cluster_serve.add_argument("--epsilon", type=float, default=4.0,
                               help="user-level privacy budget")
    cluster_serve.add_argument("--metric", default=None,
                               help="distance metric (default: sed)")
    cluster_serve.add_argument("--top-k", type=int, default=None,
                               help="number of shapes to extract (default: 3)")
    cluster_serve.add_argument("--alphabet-size", type=int, default=None,
                               help="SAX symbol size t (default: 4)")
    cluster_serve.add_argument("--template-length", type=int, default=5,
                               help="length_high of the collection "
                                    "(matches loadgen templates)")
    cluster_serve.add_argument("--spec", default=None, metavar="FILE",
                               help="serialized ExperimentSpec JSON; replaces "
                                    "the spec flags")
    cluster_serve.add_argument("--shards", type=int, default=1,
                               help="aggregation shards per worker")
    cluster_serve.add_argument("--queue-depth", type=int, default=None,
                               help="bounded per-shard queue depth per worker")
    cluster_serve.add_argument("--checkpoint-every", type=int, default=16,
                               help="checkpoint each worker every N accepted "
                                    "batches (crash-recovery granularity)")
    cluster_serve.add_argument("--seed", type=int, default=0, help="random seed")
    cluster_serve.add_argument("--json", action="store_true",
                               help="print the listening announcement as JSON")
    cluster_serve.set_defaults(handler=_command_cluster_serve)

    cluster_status = cluster_sub.add_parser(
        "status", help="query a running cluster's coordinator + worker health")
    cluster_status.add_argument("--host", default="127.0.0.1")
    cluster_status.add_argument("--port", type=int, required=True)
    cluster_status.add_argument("--json", action="store_true",
                                help="print the raw status document as JSON")
    cluster_status.set_defaults(handler=_command_cluster_status)

    cluster_stop = cluster_sub.add_parser(
        "stop", help="shut a running cluster down (coordinator + workers)")
    cluster_stop.add_argument("--host", default="127.0.0.1")
    cluster_stop.add_argument("--port", type=int, required=True)
    cluster_stop.add_argument("--json", action="store_true",
                              help="print the acknowledgement as JSON")
    cluster_stop.set_defaults(handler=_command_cluster_stop)

    classify = subparsers.add_parser("classify", help="run the classification-task evaluation")
    _add_common_arguments(classify)
    classify.set_defaults(handler=_command_classify)

    sweep = subparsers.add_parser(
        "sweep",
        help="expand an experiment grid (SweepSpec) on any backend",
    )
    _add_common_arguments(sweep, datasets=DATASET_CHOICES)
    _add_synthetic_arguments(sweep)
    _add_backend_arguments(sweep)
    sweep.add_argument("--task", choices=("extract", "cluster", "classify",
                                          "shapelet"),
                       default="classify")
    _add_shapelet_arguments(sweep)
    sweep.add_argument("--shapelet-counts", type=int, nargs="+", default=None,
                       help="task=shapelet: shapelet-count axis of the grid")
    sweep.add_argument("--shapelet-lengths", type=int, nargs="+", default=None,
                       help="task=shapelet: max-window-length axis of the "
                            "grid (in symbols)")
    sweep.add_argument("--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0],
                       help="privacy-budget axis of the grid")
    sweep.add_argument("--mechanisms", nargs="+", choices=available_mechanisms(),
                       default=None, help="mechanism axis of the grid")
    sweep.add_argument("--alphabet-sizes", type=int, nargs="+", default=None,
                       help="SAX symbol-size axis of the grid")
    sweep.add_argument("--segment-lengths", type=int, nargs="+", default=None,
                       help="SAX segment-length axis of the grid")
    sweep.add_argument("--datasets", nargs="+", choices=DATASET_CHOICES,
                       default=None, help="dataset axis of the grid")
    sweep.add_argument("--parallel", type=int, default=1,
                       help="run up to N grid points concurrently")
    sweep.add_argument("--sweep-spec", default=None, metavar="FILE",
                       help="serialized SweepSpec JSON; replaces the grid flags")
    sweep.set_defaults(handler=_command_sweep)

    def _add_population_arguments(sub: argparse.ArgumentParser, default_users: int) -> None:
        """Synthetic-population knobs shared by simulate and loadgen."""
        sub.add_argument("--users", type=int, default=default_users,
                         help=f"population size to stream (default: {default_users:,})")
        sub.add_argument("--batch-size", type=int, default=65536,
                         help="users per streamed batch (bounds peak memory)")
        sub.add_argument("--alphabet-size", type=int, default=None,
                         help="SAX symbol size t (default: 4)")
        _add_synthetic_arguments(sub)
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--json", action="store_true",
                         help="print one machine-readable JSON document instead of prose")

    def _add_serving_spec_arguments(sub: argparse.ArgumentParser) -> None:
        """Collection-run knobs shared by simulate and serve."""
        sub.add_argument("--epsilon", type=float, default=4.0,
                         help="user-level privacy budget")
        sub.add_argument("--metric", default=None,
                         help="distance metric (default: sed)")
        sub.add_argument("--top-k", type=int, default=None,
                         help="number of shapes to extract (default: 3)")

    simulate = subparsers.add_parser(
        "simulate",
        help="[deprecated: use `run --dataset synthetic`]",
    )
    _add_population_arguments(simulate, default_users=1_000_000)
    _add_serving_spec_arguments(simulate)
    simulate.add_argument("--shards", type=int, default=1,
                          help="number of aggregator shards")
    simulate.add_argument("--serialize", action="store_true",
                          help="push every report batch through the wire format")
    simulate.set_defaults(handler=_command_simulate)

    serve = subparsers.add_parser(
        "serve",
        help="run the network-facing collection gateway (NDJSON over TCP + HTTP status)",
    )
    _add_serving_spec_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=7733,
                       help="TCP port to bind (0 picks an ephemeral port)")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write the bound port to FILE once listening "
                            "(for scripts using --port 0)")
    serve.add_argument("--spec", default=None, metavar="FILE",
                       help="serialized ExperimentSpec JSON describing the run; "
                            "must be concrete (top_k and length_high set); "
                            "replaces --epsilon/--metric/--top-k/--alphabet-size")
    serve.add_argument("--alphabet-size", type=int, default=None,
                       help="SAX symbol size t (default: 4)")
    serve.add_argument("--template-length", type=int, default=5,
                       help="length_high of the collection (matches loadgen templates)")
    serve.add_argument("--shards", type=int, default=1,
                       help="number of aggregation workers (bounded queue each)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="bounded per-shard queue depth (backpressure threshold; "
                            "default 64, or the checkpointed value with --resume)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for atomic JSON checkpoints (durability)")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="also checkpoint mid-round every N accepted batches")
    serve.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint in --checkpoint-dir")
    serve.add_argument("--seed", type=int, default=0, help="random seed")
    serve.add_argument("--json", action="store_true",
                       help="print the listening announcement as JSON")
    serve.set_defaults(handler=_command_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="hammer a running gateway with the synthetic population over the socket",
    )
    _add_population_arguments(loadgen, default_users=100_000)
    loadgen.add_argument("--host", default="127.0.0.1", help="gateway host")
    loadgen.add_argument("--port", type=int, required=True, help="gateway port")
    loadgen.add_argument("--workers", type=int, default=0,
                         help="load-generation worker processes (0 = in-process)")
    loadgen.add_argument("--cluster", action="store_true",
                         help="the target is a cluster coordinator: fetch the "
                              "worker topology and stream each user-id slice "
                              "straight to its owning shard worker")
    loadgen.add_argument("--chaos-kill-round", type=int, default=None,
                         metavar="ROUND",
                         help="cluster mode fault injection: SIGKILL one shard "
                              "worker during round ROUND and recover")
    loadgen.add_argument("--chaos-kill-worker", type=int, default=0,
                         metavar="INDEX",
                         help="which worker --chaos-kill-round kills (default 0)")
    loadgen.add_argument("--chaos-kill-after", type=int, default=1,
                         metavar="BATCHES",
                         help="kill after this many batches of the slice "
                              "(default 1)")
    loadgen.add_argument("--stop-server", action="store_true",
                         help="send a stop op to the server after the run")
    _add_telemetry_arguments(loadgen)
    loadgen.set_defaults(handler=_command_loadgen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    _ensure_deprecations_visible()
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream consumer (head, jq -e, ...) closed the pipe early; point
        # stdout at devnull so the interpreter's final flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
