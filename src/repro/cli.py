"""Command-line interface for the PrivShape reproduction.

Seven sub-commands mirror the library's main entry points:

* ``extract``   — run PrivShape (or the baseline) on a dataset and print the
  top-k frequent shapes with their estimated counts and the privacy audit;
* ``cluster``   — run the paper's clustering-task evaluation for one mechanism;
* ``classify``  — run the paper's classification-task evaluation;
* ``sweep``     — sweep the privacy budget for one task and print the curve;
* ``simulate``  — stream a large synthetic population through the round-based
  collection service in constant memory and report throughput;
* ``serve``     — run the network-facing collection gateway (NDJSON over TCP
  + HTTP ``/status`` / ``/result``), with optional durable checkpoints and
  ``--resume`` crash recovery;
* ``loadgen``   — hammer a running gateway with the synthetic population over
  the socket, optionally from multiple worker processes.

Datasets are either one of the built-in synthetic generators
(``symbols``, ``trace``, ``waves``) or a UCR-format file passed with
``--ucr-file``.  Every sub-command accepts ``--json`` for machine-readable
output (one JSON document on stdout).

Mechanisms are dispatched through the registry in
:mod:`repro.api.mechanisms`, so ``--mechanism`` accepts every registered
name (``privshape``, ``baseline``, ``patternldp``, ``pem``, ``pid``, ...).
Alternatively, ``--spec experiment.json`` loads a serialized
:class:`~repro.api.spec.ExperimentSpec` and overrides the per-flag
mechanism/privacy/SAX parameters.

Examples
--------
::

    python -m repro.cli extract --dataset symbols --users 10000 --epsilon 4
    python -m repro.cli classify --dataset trace --mechanism privshape --epsilon 2
    python -m repro.cli sweep --task classify --dataset trace --epsilons 0.5 1 2 4
    python -m repro.cli cluster --ucr-file Symbols_TRAIN.tsv --epsilon 4 --alphabet-size 6
    python -m repro.cli simulate --users 1000000 --batch-size 65536 --shards 4 --json
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import os
import sys
from pathlib import Path
from typing import Any, Sequence

from repro import __version__
from repro.api import (
    KIND_EXTRACTION,
    CollectionSpec,
    ExperimentSpec,
    PrivacySpec,
    SAXSpec,
    available_mechanisms,
    mechanism_registry,
)
from repro.core.pipeline import run_classification_task, run_clustering_task
from repro.exceptions import ReproError
from repro.datasets import (
    LabeledDataset,
    load_ucr_tsv,
    symbols_like,
    trace_like,
    trigonometric_waves,
)
from repro.sax.breakpoints import symbol_alphabet
from repro.server import CollectionGateway, GatewayClient, run_loadgen
from repro.service import ProtocolDriver, SyntheticShapeStream, default_templates


def _build_dataset(args: argparse.Namespace) -> LabeledDataset:
    """Resolve the dataset requested on the command line."""
    if args.ucr_file:
        return load_ucr_tsv(args.ucr_file)
    if args.dataset == "symbols":
        return symbols_like(n_instances=args.users, rng=args.seed)
    if args.dataset == "trace":
        return trace_like(n_instances=args.users, rng=args.seed)
    if args.dataset == "waves":
        return trigonometric_waves(n_instances=args.users, length=args.wave_length, rng=args.seed)
    raise SystemExit(f"unknown dataset {args.dataset!r}")


def _default_sax(args: argparse.Namespace) -> tuple[int, int]:
    """Dataset-appropriate SAX defaults when the user did not override them."""
    alphabet_size = args.alphabet_size
    segment_length = args.segment_length
    if alphabet_size is None:
        alphabet_size = 6 if args.dataset == "symbols" and not args.ucr_file else 4
    if segment_length is None:
        segment_length = 25 if args.dataset == "symbols" and not args.ucr_file else 10
    return alphabet_size, segment_length


def _emit(args: argparse.Namespace, payload: dict[str, Any], text: str) -> None:
    """Print the machine-readable or human-readable form of one result."""
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(text)


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("symbols", "trace", "waves"), default="trace",
                        help="built-in synthetic dataset (default: trace)")
    parser.add_argument("--ucr-file", default=None,
                        help="path to a UCR-format file; overrides --dataset")
    parser.add_argument("--users", type=int, default=10000,
                        help="number of users for the synthetic datasets")
    parser.add_argument("--wave-length", type=int, default=400,
                        help="series length for the 'waves' dataset")
    parser.add_argument("--epsilon", type=float, default=4.0, help="user-level privacy budget")
    parser.add_argument("--mechanism", choices=available_mechanisms(),
                        default="privshape",
                        help="registered mechanism name (see repro.api.mechanisms)")
    parser.add_argument("--spec", default=None, metavar="FILE",
                        help="path to a serialized ExperimentSpec JSON document; "
                             "replaces --mechanism, --epsilon, --alphabet-size, "
                             "--segment-length, --metric and --top-k entirely "
                             "(dataset/evaluation/seed flags still apply)")
    parser.add_argument("--alphabet-size", type=int, default=None, help="SAX symbol size t")
    parser.add_argument("--segment-length", type=int, default=None, help="SAX segment length w")
    parser.add_argument("--metric", default=None,
                        help="distance metric (dtw / sed / euclidean); task-appropriate default")
    parser.add_argument("--top-k", type=int, default=None,
                        help="number of shapes to extract (default: number of classes)")
    parser.add_argument("--evaluation-size", type=int, default=500,
                        help="number of held-out series scored for ARI / accuracy")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--json", action="store_true",
                        help="print one machine-readable JSON document instead of prose")


def _load_spec(path: str) -> ExperimentSpec:
    """Load a serialized :class:`ExperimentSpec` from a JSON file."""
    try:
        return ExperimentSpec.from_json(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"cannot read spec file {path!r}: {exc}") from exc
    except (json.JSONDecodeError, ReproError, TypeError, ValueError) as exc:
        # Malformed JSON, unknown fields (TypeError), or invalid values
        # (library ConfigurationError and friends).
        raise SystemExit(f"invalid spec file {path!r}: {exc}") from exc


def _spec_from_args(args: argparse.Namespace, default_metric: str) -> ExperimentSpec:
    """The experiment spec requested on the command line (file or flags)."""
    if args.spec:
        return _load_spec(args.spec)
    alphabet_size, segment_length = _default_sax(args)
    return ExperimentSpec(
        mechanism=args.mechanism,
        privacy=PrivacySpec(epsilon=args.epsilon),
        sax=SAXSpec(alphabet_size=alphabet_size, segment_length=segment_length),
        collection=CollectionSpec(
            top_k=args.top_k,
            metric=args.metric or default_metric,
        ),
    )


def _command_extract(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    spec = _spec_from_args(args, default_metric="dtw")
    entry = mechanism_registry.get(spec.mechanism)
    if entry.kind != KIND_EXTRACTION:
        raise SystemExit(
            f"mechanism {spec.mechanism!r} perturbs raw series instead of extracting "
            f"shapes; use the cluster/classify sub-commands "
            f"(extraction mechanisms: {available_mechanisms(KIND_EXTRACTION)})"
        )
    transformer = spec.sax.build_transformer()
    sequences = transformer.transform_dataset(dataset.series)

    lengths = sorted(len(s) for s in sequences)
    length_high = max(2, lengths[int(0.9 * (len(lengths) - 1))])
    resolved = spec.resolve(top_k=dataset.n_classes, length_high=length_high)
    extractor = entry.build(resolved)
    result = extractor.extract(sequences, rng=args.seed)

    payload = {
        "command": "extract",
        "dataset": dataset.name,
        "users": len(dataset),
        "mechanism": spec.mechanism,
        "epsilon": spec.privacy.epsilon,
        "estimated_length": result.estimated_length,
        "shapes": [
            {"shape": shape, "estimated_count": float(frequency)}
            for shape, frequency in zip(result.as_strings(), result.frequencies)
        ],
        "accounting": {
            "per_population": {
                name: float(total)
                for name, total in result.accountant.per_population().items()
            },
            "user_level_epsilon": float(result.accountant.user_level_epsilon()),
            "within_budget": result.accountant.is_valid(),
        },
    }
    lines = [
        f"dataset: {dataset.name} ({len(dataset)} users)",
        f"mechanism: {spec.mechanism}, epsilon = {spec.privacy.epsilon}",
        f"estimated frequent length: {result.estimated_length}",
        "top shapes:",
    ]
    for shape, frequency in zip(result.as_strings(), result.frequencies):
        lines.append(f"  {shape:<16} estimated count {frequency:10.1f}")
    lines.append("")
    lines.append(result.accountant.summary())
    _emit(args, payload, "\n".join(lines))
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    spec = _spec_from_args(args, default_metric="dtw")
    result = run_clustering_task(
        dataset,
        spec=spec,
        evaluation_size=args.evaluation_size,
        rng=args.seed,
    )
    payload = {
        "command": "cluster",
        "dataset": dataset.name,
        "users": len(dataset),
        "mechanism": result.mechanism,
        "epsilon": float(result.epsilon),
        "ari": float(result.ari),
        "elapsed_seconds": float(result.elapsed_seconds),
        "shapes": list(result.shapes),
        "ground_truth_shapes": list(result.ground_truth_shapes),
        "shape_measures": {k: float(v) for k, v in result.shape_measures.items()},
    }
    text = "\n".join(
        [
            f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {result.mechanism}",
            f"epsilon = {result.epsilon}  ARI = {result.ari:.3f}  "
            f"elapsed = {result.elapsed_seconds:.2f}s",
            f"extracted shapes: {', '.join(result.shapes)}",
            f"ground truth:     {', '.join(result.ground_truth_shapes)}",
            "shape distances to ground truth: "
            + ", ".join(f"{k}={v:.2f}" for k, v in result.shape_measures.items()),
        ]
    )
    _emit(args, payload, text)
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    spec = _spec_from_args(args, default_metric="sed")
    result = run_classification_task(
        dataset,
        spec=spec,
        evaluation_size=args.evaluation_size,
        rng=args.seed,
    )
    payload = {
        "command": "classify",
        "dataset": dataset.name,
        "users": len(dataset),
        "mechanism": result.mechanism,
        "epsilon": float(result.epsilon),
        "accuracy": float(result.accuracy),
        "elapsed_seconds": float(result.elapsed_seconds),
        "shapes_by_class": {
            str(label): list(shapes)
            for label, shapes in sorted(result.shapes_by_class.items())
        },
        "ground_truth_shapes": list(result.ground_truth_shapes),
    }
    lines = [
        f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {result.mechanism}",
        f"epsilon = {result.epsilon}  accuracy = {result.accuracy:.3f}  "
        f"elapsed = {result.elapsed_seconds:.2f}s",
        "per-class shapes:",
    ]
    for label, shapes in sorted(result.shapes_by_class.items()):
        lines.append(f"  class {label}: {', '.join(shapes) if shapes else '-'}")
    lines.append(f"ground truth: {', '.join(result.ground_truth_shapes)}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    base_spec = _spec_from_args(
        args, default_metric="dtw" if args.task == "cluster" else "sed"
    )
    header_metric = "ARI" if args.task == "cluster" else "accuracy"
    points = []
    for epsilon in args.epsilons:
        spec = dataclasses.replace(base_spec, privacy=PrivacySpec(epsilon=epsilon))
        if args.task == "cluster":
            result = run_clustering_task(
                dataset, spec=spec, evaluation_size=args.evaluation_size, rng=args.seed,
            )
            points.append({"epsilon": float(epsilon), header_metric: float(result.ari)})
        else:
            result = run_classification_task(
                dataset, spec=spec, evaluation_size=args.evaluation_size, rng=args.seed,
            )
            points.append({"epsilon": float(epsilon), header_metric: float(result.accuracy)})
    payload = {
        "command": "sweep",
        "dataset": dataset.name,
        "users": len(dataset),
        "mechanism": base_spec.mechanism,
        "task": args.task,
        "metric_name": header_metric,
        "points": points,
    }
    lines = [
        f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {base_spec.mechanism}, "
        f"task: {args.task}",
        f"{'epsilon':>8}  {header_metric}",
    ]
    for point in points:
        lines.append(f"{point['epsilon']:>8.2f}  {point[header_metric]:.3f}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _synthetic_stream(args: argparse.Namespace) -> tuple[SyntheticShapeStream, list, int]:
    """The deterministic synthetic population shared by simulate and loadgen.

    Template weights follow a geometric-ish popularity profile so the top
    templates are the ground truth the extraction should recover.  ``serve``
    + ``loadgen`` with the same seed/flags therefore collect exactly the
    population ``simulate`` streams in-process.
    """
    alphabet_size = args.alphabet_size or 4
    alphabet = symbol_alphabet(alphabet_size)
    templates = default_templates(
        alphabet,
        n_templates=args.templates,
        length=args.template_length,
        rng=args.seed,
    )
    weights = [1.0 / (rank + 1) for rank in range(len(templates))]
    population = SyntheticShapeStream(
        n_users=args.users,
        alphabet=tuple(alphabet),
        templates=tuple(templates),
        weights=tuple(weights),
        seed=args.seed,
        length_jitter=args.length_jitter,
    )
    return population, templates, alphabet_size


def _serving_spec(args: argparse.Namespace, n_templates: int | None = None) -> ExperimentSpec:
    """The collection spec shared by ``simulate`` and ``serve``."""
    default_top_k = 3 if n_templates is None else min(3, n_templates)
    return ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=args.epsilon),
        sax=SAXSpec(alphabet_size=args.alphabet_size or 4),
        collection=CollectionSpec(
            top_k=args.top_k or default_top_k,
            metric=args.metric or "sed",
            length_low=1,
            length_high=args.template_length,
        ),
    )


def _command_simulate(args: argparse.Namespace) -> int:
    """Stream a synthetic population through the round-based collection service."""
    population, templates, alphabet_size = _synthetic_stream(args)
    # The streaming service consumes the same composable spec as the offline
    # pipelines (ProtocolDriver coerces it to the engine-facing config).
    spec = _serving_spec(args, n_templates=len(templates))
    driver = ProtocolDriver(
        spec,
        population,
        batch_size=args.batch_size,
        n_shards=args.shards,
        serialize=args.serialize,
        rng=args.seed,
    )
    result = driver.run()
    stats = driver.stats

    payload = {
        "command": "simulate",
        "users": args.users,
        "batch_size": args.batch_size,
        "shards": args.shards,
        "serialize_reports": bool(args.serialize),
        "epsilon": args.epsilon,
        "alphabet_size": alphabet_size,
        "templates": ["".join(t) for t in templates],
        "estimated_length": result.estimated_length,
        "shapes": [
            {"shape": shape, "estimated_count": float(frequency)}
            for shape, frequency in zip(result.as_strings(), result.frequencies)
        ],
        "throughput": stats.to_dict(),
        "accounting": {
            "user_level_epsilon": float(result.accountant.user_level_epsilon()),
            "within_budget": result.accountant.is_valid(),
        },
    }
    lines = [
        f"simulated population: {args.users} users "
        f"(batch size {args.batch_size}, {args.shards} shard(s), "
        f"wire serialization {'on' if args.serialize else 'off'})",
        f"templates: {', '.join(''.join(t) for t in templates)}",
        "rounds:",
    ]
    for round_stats in stats.rounds:
        level = f" level {round_stats.level}" if round_stats.kind == "expand" else ""
        lines.append(
            f"  round {round_stats.index}: {round_stats.kind}{level:<8} "
            f"{round_stats.participants:>9} reports in {round_stats.elapsed_seconds:6.2f}s "
            f"({round_stats.reports_per_second:>12,.0f} reports/sec)"
        )
    lines.append(
        f"total: {stats.total_reports} reports in {stats.total_seconds:.2f}s "
        f"= {stats.reports_per_second:,.0f} reports/sec"
    )
    lines.append(f"peak RSS: {stats.peak_rss_bytes / 1e6:.1f} MB")
    lines.append(f"estimated frequent length: {result.estimated_length}")
    lines.append("top shapes:")
    for shape, frequency in zip(result.as_strings(), result.frequencies):
        lines.append(f"  {shape:<16} estimated count {frequency:12.1f}")
    _emit(args, payload, "\n".join(lines))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Run the network-facing collection gateway until stopped."""
    try:
        if args.resume:
            if not args.checkpoint_dir:
                raise SystemExit("--resume requires --checkpoint-dir")
            gateway = CollectionGateway.from_checkpoint(
                args.checkpoint_dir,
                queue_depth=args.queue_depth,
                checkpoint_every=args.checkpoint_every,
            )
        else:
            spec = _load_spec(args.spec) if args.spec else _serving_spec(args)
            gateway = CollectionGateway(
                spec,
                rng=args.seed,
                n_shards=args.shards,
                queue_depth=args.queue_depth or 64,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every=args.checkpoint_every,
            )
    except ReproError as exc:
        raise SystemExit(f"cannot start gateway: {exc}") from exc

    async def _serve() -> None:
        await gateway.start(args.host, args.port)
        if args.port_file:
            # Written only once the listener is bound, so scripts can poll
            # this file to learn an ephemeral (--port 0) port race-free.
            Path(args.port_file).write_text(f"{gateway.port}\n", encoding="utf-8")
        announcement = {
            "event": "listening",
            "host": gateway.host,
            "port": gateway.port,
            "shards": gateway.n_shards,
            "queue_depth": gateway.queue_depth,
            "checkpoint_dir": args.checkpoint_dir,
            "resumed": bool(args.resume),
            "stage": gateway.engine.stage,
        }
        _emit(
            args,
            announcement,
            f"collection gateway listening on {gateway.host}:{gateway.port} "
            f"({gateway.n_shards} shard(s), stage {gateway.engine.stage}"
            + (f", checkpoints in {args.checkpoint_dir}" if args.checkpoint_dir else "")
            + ")",
        )
        sys.stdout.flush()
        await gateway.serve_until_stopped()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _command_loadgen(args: argparse.Namespace) -> int:
    """Drive a running gateway through a full synthetic collection run."""
    population, templates, alphabet_size = _synthetic_stream(args)
    try:
        stats = run_loadgen(
            args.host,
            args.port,
            population,
            batch_size=args.batch_size,
            workers=args.workers,
        )
        if args.stop_server:
            with GatewayClient(args.host, args.port) as client:
                client.stop()
    except ReproError as exc:
        raise SystemExit(f"load generation failed: {exc}") from exc

    result = stats.result or {}
    payload = {
        "command": "loadgen",
        "host": args.host,
        "port": args.port,
        "users": args.users,
        "batch_size": args.batch_size,
        "workers": args.workers,
        "alphabet_size": alphabet_size,
        "templates": ["".join(t) for t in templates],
        **stats.to_dict(),
    }
    lines = [
        f"load generation against {args.host}:{args.port}: {args.users} users, "
        f"{args.workers or 'in-process'} worker(s), batch size {args.batch_size}",
        "rounds:",
    ]
    for round_stats in stats.rounds:
        lines.append(
            f"  round {round_stats.index}: {round_stats.kind:<14} "
            f"{round_stats.reports:>9} reports in {round_stats.elapsed_seconds:6.2f}s "
            f"({round_stats.reports_per_second:>12,.0f} reports/sec)"
        )
    lines.append(
        f"total: {stats.total_reports} reports in {stats.total_seconds:.2f}s "
        f"= {stats.reports_per_second:,.0f} reports/sec over the socket"
    )
    lines.append(f"estimated frequent length: {result.get('estimated_length')}")
    lines.append("top shapes (from GET /result):")
    for shape, frequency in zip(result.get("shapes", []), result.get("frequencies", [])):
        lines.append(f"  {shape:<16} estimated count {frequency:12.1f}")
    _emit(args, payload, "\n".join(lines))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivShape: shape extraction in time series under user-level LDP",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    extract = subparsers.add_parser("extract", help="extract top-k frequent shapes")
    _add_common_arguments(extract)
    extract.set_defaults(handler=_command_extract)

    cluster = subparsers.add_parser("cluster", help="run the clustering-task evaluation")
    _add_common_arguments(cluster)
    cluster.set_defaults(handler=_command_cluster)

    classify = subparsers.add_parser("classify", help="run the classification-task evaluation")
    _add_common_arguments(classify)
    classify.set_defaults(handler=_command_classify)

    sweep = subparsers.add_parser("sweep", help="sweep the privacy budget for one task")
    _add_common_arguments(sweep)
    sweep.add_argument("--task", choices=("cluster", "classify"), default="classify")
    sweep.add_argument("--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0])
    sweep.set_defaults(handler=_command_sweep)

    def _add_population_arguments(sub: argparse.ArgumentParser, default_users: int) -> None:
        """Synthetic-population knobs shared by simulate and loadgen."""
        sub.add_argument("--users", type=int, default=default_users,
                         help=f"population size to stream (default: {default_users:,})")
        sub.add_argument("--batch-size", type=int, default=65536,
                         help="users per streamed batch (bounds peak memory)")
        sub.add_argument("--alphabet-size", type=int, default=None,
                         help="SAX symbol size t (default: 4)")
        sub.add_argument("--templates", type=int, default=6,
                         help="number of template shapes in the synthetic pool")
        sub.add_argument("--template-length", type=int, default=5,
                         help="length of each template shape")
        sub.add_argument("--length-jitter", type=float, default=0.2,
                         help="fraction of users whose shape is one symbol shorter")
        sub.add_argument("--seed", type=int, default=0, help="random seed")
        sub.add_argument("--json", action="store_true",
                         help="print one machine-readable JSON document instead of prose")

    def _add_serving_spec_arguments(sub: argparse.ArgumentParser) -> None:
        """Collection-run knobs shared by simulate and serve."""
        sub.add_argument("--epsilon", type=float, default=4.0,
                         help="user-level privacy budget")
        sub.add_argument("--metric", default=None,
                         help="distance metric (default: sed)")
        sub.add_argument("--top-k", type=int, default=None,
                         help="number of shapes to extract (default: 3)")

    simulate = subparsers.add_parser(
        "simulate",
        help="stream a synthetic population through the round-based collection service",
    )
    _add_population_arguments(simulate, default_users=1_000_000)
    _add_serving_spec_arguments(simulate)
    simulate.add_argument("--shards", type=int, default=1,
                          help="number of aggregator shards")
    simulate.add_argument("--serialize", action="store_true",
                          help="push every report batch through the wire format")
    simulate.set_defaults(handler=_command_simulate)

    serve = subparsers.add_parser(
        "serve",
        help="run the network-facing collection gateway (NDJSON over TCP + HTTP status)",
    )
    _add_serving_spec_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=7733,
                       help="TCP port to bind (0 picks an ephemeral port)")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write the bound port to FILE once listening "
                            "(for scripts using --port 0)")
    serve.add_argument("--spec", default=None, metavar="FILE",
                       help="serialized ExperimentSpec JSON describing the run; "
                            "must be concrete (top_k and length_high set); "
                            "replaces --epsilon/--metric/--top-k/--alphabet-size")
    serve.add_argument("--alphabet-size", type=int, default=None,
                       help="SAX symbol size t (default: 4)")
    serve.add_argument("--template-length", type=int, default=5,
                       help="length_high of the collection (matches loadgen templates)")
    serve.add_argument("--shards", type=int, default=1,
                       help="number of aggregation workers (bounded queue each)")
    serve.add_argument("--queue-depth", type=int, default=None,
                       help="bounded per-shard queue depth (backpressure threshold; "
                            "default 64, or the checkpointed value with --resume)")
    serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="directory for atomic JSON checkpoints (durability)")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="also checkpoint mid-round every N accepted batches")
    serve.add_argument("--resume", action="store_true",
                       help="resume from the checkpoint in --checkpoint-dir")
    serve.add_argument("--seed", type=int, default=0, help="random seed")
    serve.add_argument("--json", action="store_true",
                       help="print the listening announcement as JSON")
    serve.set_defaults(handler=_command_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="hammer a running gateway with the synthetic population over the socket",
    )
    _add_population_arguments(loadgen, default_users=100_000)
    loadgen.add_argument("--host", default="127.0.0.1", help="gateway host")
    loadgen.add_argument("--port", type=int, required=True, help="gateway port")
    loadgen.add_argument("--workers", type=int, default=0,
                         help="load-generation worker processes (0 = in-process)")
    loadgen.add_argument("--stop-server", action="store_true",
                         help="send a stop op to the gateway after the run")
    loadgen.set_defaults(handler=_command_loadgen)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # Downstream consumer (head, jq -e, ...) closed the pipe early; point
        # stdout at devnull so the interpreter's final flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
