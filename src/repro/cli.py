"""Command-line interface for the PrivShape reproduction.

Four sub-commands mirror the library's main entry points:

* ``extract``   — run PrivShape (or the baseline) on a dataset and print the
  top-k frequent shapes with their estimated counts and the privacy audit;
* ``cluster``   — run the paper's clustering-task evaluation for one mechanism;
* ``classify``  — run the paper's classification-task evaluation;
* ``sweep``     — sweep the privacy budget for one task and print the curve.

Datasets are either one of the built-in synthetic generators
(``symbols``, ``trace``, ``waves``) or a UCR-format file passed with
``--ucr-file``.

Examples
--------
::

    python -m repro.cli extract --dataset symbols --users 10000 --epsilon 4
    python -m repro.cli classify --dataset trace --mechanism privshape --epsilon 2
    python -m repro.cli sweep --task classify --dataset trace --epsilons 0.5 1 2 4
    python -m repro.cli cluster --ucr-file Symbols_TRAIN.tsv --epsilon 4 --alphabet-size 6
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.pipeline import run_classification_task, run_clustering_task
from repro.core.config import PrivShapeConfig, BaselineConfig
from repro.core.baseline import BaselineMechanism
from repro.core.privshape import PrivShape
from repro.datasets import (
    LabeledDataset,
    load_ucr_tsv,
    symbols_like,
    trace_like,
    trigonometric_waves,
)
from repro.sax.compressive import CompressiveSAX


def _build_dataset(args: argparse.Namespace) -> LabeledDataset:
    """Resolve the dataset requested on the command line."""
    if args.ucr_file:
        return load_ucr_tsv(args.ucr_file)
    if args.dataset == "symbols":
        return symbols_like(n_instances=args.users, rng=args.seed)
    if args.dataset == "trace":
        return trace_like(n_instances=args.users, rng=args.seed)
    if args.dataset == "waves":
        return trigonometric_waves(n_instances=args.users, length=args.wave_length, rng=args.seed)
    raise SystemExit(f"unknown dataset {args.dataset!r}")


def _default_sax(args: argparse.Namespace) -> tuple[int, int]:
    """Dataset-appropriate SAX defaults when the user did not override them."""
    alphabet_size = args.alphabet_size
    segment_length = args.segment_length
    if alphabet_size is None:
        alphabet_size = 6 if args.dataset == "symbols" and not args.ucr_file else 4
    if segment_length is None:
        segment_length = 25 if args.dataset == "symbols" and not args.ucr_file else 10
    return alphabet_size, segment_length


def _add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("symbols", "trace", "waves"), default="trace",
                        help="built-in synthetic dataset (default: trace)")
    parser.add_argument("--ucr-file", default=None,
                        help="path to a UCR-format file; overrides --dataset")
    parser.add_argument("--users", type=int, default=10000,
                        help="number of users for the synthetic datasets")
    parser.add_argument("--wave-length", type=int, default=400,
                        help="series length for the 'waves' dataset")
    parser.add_argument("--epsilon", type=float, default=4.0, help="user-level privacy budget")
    parser.add_argument("--mechanism", choices=("privshape", "baseline", "patternldp"),
                        default="privshape")
    parser.add_argument("--alphabet-size", type=int, default=None, help="SAX symbol size t")
    parser.add_argument("--segment-length", type=int, default=None, help="SAX segment length w")
    parser.add_argument("--metric", default=None,
                        help="distance metric (dtw / sed / euclidean); task-appropriate default")
    parser.add_argument("--top-k", type=int, default=None,
                        help="number of shapes to extract (default: number of classes)")
    parser.add_argument("--evaluation-size", type=int, default=500,
                        help="number of held-out series scored for ARI / accuracy")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _command_extract(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    alphabet_size, segment_length = _default_sax(args)
    transformer = CompressiveSAX(alphabet_size=alphabet_size, segment_length=segment_length)
    sequences = transformer.transform_dataset(dataset.series)
    top_k = args.top_k or dataset.n_classes
    metric = args.metric or "dtw"

    lengths = sorted(len(s) for s in sequences)
    length_high = max(2, lengths[int(0.9 * (len(lengths) - 1))])
    if args.mechanism == "baseline":
        config = BaselineConfig(epsilon=args.epsilon, top_k=top_k, alphabet_size=alphabet_size,
                                metric=metric, length_high=length_high)
        extractor = BaselineMechanism(config)
    else:
        config = PrivShapeConfig(epsilon=args.epsilon, top_k=top_k, alphabet_size=alphabet_size,
                                 metric=metric, length_high=length_high)
        extractor = PrivShape(config)
    result = extractor.extract(sequences, rng=args.seed)

    print(f"dataset: {dataset.name} ({len(dataset)} users)")
    print(f"mechanism: {args.mechanism}, epsilon = {args.epsilon}")
    print(f"estimated frequent length: {result.estimated_length}")
    print("top shapes:")
    for shape, frequency in zip(result.as_strings(), result.frequencies):
        print(f"  {shape:<16} estimated count {frequency:10.1f}")
    print()
    print(result.accountant.summary())
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    alphabet_size, segment_length = _default_sax(args)
    result = run_clustering_task(
        dataset,
        mechanism=args.mechanism,
        epsilon=args.epsilon,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        metric=args.metric or "dtw",
        top_k=args.top_k,
        evaluation_size=args.evaluation_size,
        rng=args.seed,
    )
    print(f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {args.mechanism}")
    print(f"epsilon = {result.epsilon}  ARI = {result.ari:.3f}  elapsed = {result.elapsed_seconds:.2f}s")
    print(f"extracted shapes: {', '.join(result.shapes)}")
    print(f"ground truth:     {', '.join(result.ground_truth_shapes)}")
    print("shape distances to ground truth: "
          + ", ".join(f"{k}={v:.2f}" for k, v in result.shape_measures.items()))
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    alphabet_size, segment_length = _default_sax(args)
    result = run_classification_task(
        dataset,
        mechanism=args.mechanism,
        epsilon=args.epsilon,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        metric=args.metric or "sed",
        top_k=args.top_k,
        evaluation_size=args.evaluation_size,
        rng=args.seed,
    )
    print(f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {args.mechanism}")
    print(f"epsilon = {result.epsilon}  accuracy = {result.accuracy:.3f}  "
          f"elapsed = {result.elapsed_seconds:.2f}s")
    print("per-class shapes:")
    for label, shapes in sorted(result.shapes_by_class.items()):
        print(f"  class {label}: {', '.join(shapes) if shapes else '-'}")
    print(f"ground truth: {', '.join(result.ground_truth_shapes)}")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    alphabet_size, segment_length = _default_sax(args)
    print(f"dataset: {dataset.name} ({len(dataset)} users), mechanism: {args.mechanism}, "
          f"task: {args.task}")
    header_metric = "ARI" if args.task == "cluster" else "accuracy"
    print(f"{'epsilon':>8}  {header_metric}")
    for epsilon in args.epsilons:
        if args.task == "cluster":
            result = run_clustering_task(
                dataset, mechanism=args.mechanism, epsilon=epsilon,
                alphabet_size=alphabet_size, segment_length=segment_length,
                metric=args.metric or "dtw", evaluation_size=args.evaluation_size, rng=args.seed,
            )
            value = result.ari
        else:
            result = run_classification_task(
                dataset, mechanism=args.mechanism, epsilon=epsilon,
                alphabet_size=alphabet_size, segment_length=segment_length,
                metric=args.metric or "sed", evaluation_size=args.evaluation_size, rng=args.seed,
            )
            value = result.accuracy
        print(f"{epsilon:>8.2f}  {value:.3f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PrivShape: shape extraction in time series under user-level LDP",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    extract = subparsers.add_parser("extract", help="extract top-k frequent shapes")
    _add_common_arguments(extract)
    extract.set_defaults(handler=_command_extract)

    cluster = subparsers.add_parser("cluster", help="run the clustering-task evaluation")
    _add_common_arguments(cluster)
    cluster.set_defaults(handler=_command_cluster)

    classify = subparsers.add_parser("classify", help="run the classification-task evaluation")
    _add_common_arguments(classify)
    classify.set_defaults(handler=_command_classify)

    sweep = subparsers.add_parser("sweep", help="sweep the privacy budget for one task")
    _add_common_arguments(sweep)
    sweep.add_argument("--task", choices=("cluster", "classify"), default="classify")
    sweep.add_argument("--epsilons", type=float, nargs="+", default=[0.5, 1.0, 2.0, 4.0])
    sweep.set_defaults(handler=_command_sweep)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
