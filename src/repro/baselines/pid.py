"""PID-control importance scoring used by PatternLDP.

PatternLDP decides which points of a time series are "remarkable" (trend
changing) by running a PID controller over the prediction error: the
controller predicts the next value from the recent past, and points where the
combined proportional / integral / derivative error is large carry more shape
information and therefore receive a larger share of the privacy budget.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_time_series


@dataclass
class PIDImportanceScorer:
    """Computes a per-point importance score from PID prediction error.

    Parameters
    ----------
    kp, ki, kd:
        Proportional, integral, and derivative gains.
    integral_window:
        Number of recent errors summed for the integral term.
    """

    kp: float = 0.6
    ki: float = 0.2
    kd: float = 0.2
    integral_window: int = 5

    def errors(self, series) -> np.ndarray:
        """Raw PID error magnitude at every point (first point has zero error)."""
        arr = check_time_series(series)
        n = arr.size
        errors = np.zeros(n, dtype=float)
        history: list[float] = []
        previous_error = 0.0
        for i in range(1, n):
            predicted = arr[i - 1]
            error = arr[i] - predicted
            history.append(error)
            window = history[-self.integral_window:]
            integral = float(np.sum(window))
            derivative = error - previous_error
            errors[i] = abs(self.kp * error + self.ki * integral + self.kd * derivative)
            previous_error = error
        return errors

    def scores(self, series) -> np.ndarray:
        """Importance scores normalized to sum to 1 (uniform when all errors are 0)."""
        errors = self.errors(series)
        total = errors.sum()
        if total <= 0:
            return np.full(errors.size, 1.0 / errors.size)
        return errors / total

    def remarkable_points(self, series, n_points: int) -> np.ndarray:
        """Indices of the ``n_points`` highest-importance points, in time order.

        The first and last points are always included so the reconstructed
        series spans the full time axis.
        """
        arr = check_time_series(series)
        if n_points < 2:
            raise ValueError(f"n_points must be at least 2, got {n_points}")
        n_points = min(n_points, arr.size)
        errors = self.errors(arr)
        ranked = np.argsort(errors)[::-1]
        chosen = {0, arr.size - 1}
        for index in ranked:
            if len(chosen) >= n_points:
                break
            chosen.add(int(index))
        return np.asarray(sorted(chosen), dtype=int)
