"""Competitor mechanisms the paper compares against.

* :class:`PatternLDP` — the only prior shape-retaining LDP mechanism, adapted
  (as the paper does) from its original ω-event online setting to offline
  user-level LDP: PID-error importance scoring selects remarkable points, the
  single user-level budget is allocated across them proportionally to
  importance, and each selected value is perturbed with a bounded LDP value
  mechanism.
* :class:`PrefixExtendingMiner` — a PEM-style frequent-sequence miner used in
  the paper's discussion of why bit-oriented prefix extension does not carry
  over to large symbol alphabets; provided for ablation.
* :class:`PIDPerturbation` — PatternLDP with its importance-weighted budget
  allocation ablated to a uniform split (the ``"pid"`` mechanism).

All four are reachable end-to-end through the mechanism registry
(:mod:`repro.api.mechanisms`) and therefore through
``run_clustering_task`` / ``run_classification_task`` and the CLI.
"""

from repro.baselines.pid import PIDImportanceScorer
from repro.baselines.patternldp import PatternLDP, PatternLDPResult, PIDPerturbation
from repro.baselines.pem import PrefixExtendingMiner

__all__ = [
    "PIDImportanceScorer",
    "PatternLDP",
    "PatternLDPResult",
    "PIDPerturbation",
    "PrefixExtendingMiner",
]
