"""PatternLDP adapted to offline, user-level LDP.

PatternLDP (Wang et al., INFOCOM 2020) is the only prior LDP mechanism that
tries to preserve shapes.  In its original form it works online over an
ω-length window; the paper extends it to user-level privacy for a fair
comparison (Section V-B1):

1. a PID controller scores every point's importance;
2. the most important ("remarkable") points are sampled;
3. the *single user-level* budget ε is allocated across the sampled points in
   proportion to their importance scores;
4. every sampled value is perturbed with a bounded ε_i-LDP value mechanism;
5. the full-length series is reconstructed by linear interpolation between
   the perturbed samples so downstream models (KMeans, random forest) can
   consume it.

Because the entire series shares one ε, the per-point budgets become tiny and
the reconstructed series is heavily distorted — which is exactly the
behaviour the paper's evaluation shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.pid import PIDImportanceScorer
from repro.ldp.value import LaplaceMechanism, PiecewiseMechanism
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_epsilon, check_positive_int, check_time_series


@dataclass
class PatternLDPResult:
    """Per-user output of PatternLDP: sampled indices and their perturbed values."""

    indices: np.ndarray
    perturbed_values: np.ndarray
    reconstructed: np.ndarray
    per_point_epsilon: np.ndarray


@dataclass
class PatternLDP:
    """Offline, user-level adaptation of PatternLDP.

    Parameters
    ----------
    epsilon:
        User-level privacy budget shared by all sampled points of one series.
    sample_fraction:
        Fraction of the series length sampled as remarkable points (the
        original paper adaptively samples; a fixed fraction of the highest
        PID-error points reproduces its offline behaviour).
    min_points:
        Lower bound on the number of sampled points.
    perturbation:
        ``"piecewise"`` (default, as in the original paper) or ``"laplace"``.
    value_range:
        Clipping range of the (z-normalized) input values.
    """

    epsilon: float = 1.0
    sample_fraction: float = 0.1
    min_points: int = 8
    perturbation: str = "piecewise"
    value_range: tuple[float, float] = (-2.5, 2.5)
    scorer: PIDImportanceScorer = field(default_factory=PIDImportanceScorer)

    def __post_init__(self) -> None:
        self.epsilon = check_epsilon(self.epsilon)
        self.min_points = check_positive_int(self.min_points, "min_points")
        if not 0.0 < self.sample_fraction <= 1.0:
            raise ValueError(f"sample_fraction must be in (0, 1], got {self.sample_fraction}")
        if self.perturbation not in ("piecewise", "laplace"):
            raise ValueError(
                f"perturbation must be 'piecewise' or 'laplace', got {self.perturbation!r}"
            )

    # ------------------------------------------------------------------ client

    def _allocate_budget(self, scores: np.ndarray) -> np.ndarray:
        """Split ε across sampled points proportionally to importance (min share enforced)."""
        if scores.sum() <= 0:
            return np.full(scores.size, self.epsilon / scores.size)
        weights = scores / scores.sum()
        # Guard against near-zero shares that would make the perturbation unbounded.
        weights = np.maximum(weights, 0.1 / scores.size)
        weights = weights / weights.sum()
        return self.epsilon * weights

    def _perturb_value(self, value: float, epsilon_i: float, rng) -> float:
        low, high = self.value_range
        half_range = (high - low) / 2.0
        center = (high + low) / 2.0
        if self.perturbation == "laplace":
            mechanism = LaplaceMechanism(epsilon_i, low=low, high=high)
            return float(mechanism.perturb(value, rng))
        # Piecewise mechanism operates on [-1, 1]; rescale around the range center.
        mechanism = PiecewiseMechanism(epsilon_i)
        scaled = (float(value) - center) / half_range
        perturbed = mechanism.perturb(scaled, rng)
        return float(perturbed * half_range + center)

    def perturb_series(self, series, rng: RngLike = None) -> PatternLDPResult:
        """Perturb one user's series; returns sampled points and the reconstruction."""
        arr = check_time_series(series)
        generator = ensure_rng(rng)
        n_points = max(self.min_points, int(round(self.sample_fraction * arr.size)))
        n_points = min(n_points, arr.size)
        indices = self.scorer.remarkable_points(arr, n_points)
        scores = self.scorer.scores(arr)[indices]
        budgets = self._allocate_budget(scores)

        perturbed = np.array(
            [
                self._perturb_value(arr[index], budgets[i], generator)
                for i, index in enumerate(indices)
            ]
        )
        reconstructed = np.interp(np.arange(arr.size), indices, perturbed)
        return PatternLDPResult(
            indices=indices,
            perturbed_values=perturbed,
            reconstructed=reconstructed,
            per_point_epsilon=budgets,
        )

    # ------------------------------------------------------------------ server

    def perturb_dataset(self, dataset: Sequence, rng: RngLike = None) -> list[np.ndarray]:
        """Perturb every series in a dataset and return the reconstructed series."""
        generator = ensure_rng(rng)
        return [self.perturb_series(series, generator).reconstructed for series in dataset]


@dataclass
class PIDPerturbation(PatternLDP):
    """PID-sampled value perturbation with *uniform* per-point budgets.

    PatternLDP's second idea — allocating the user-level budget across the
    sampled points proportionally to PID importance — is ablated away here:
    the PID controller still picks the remarkable points, but every sampled
    point receives the same ε/m share.  Registered as the ``"pid"`` mechanism,
    it isolates how much of PatternLDP's utility comes from the importance-
    weighted allocation versus the trend-aware sampling itself.
    """

    def _allocate_budget(self, scores: np.ndarray) -> np.ndarray:
        return np.full(scores.size, self.epsilon / scores.size)
