"""PEM-style prefix-extending frequent-sequence miner under LDP.

The Prefix Extending Method (Wang et al., TDSC 2021) mines frequent values in
a large domain by splitting users into groups and extending frequent prefixes
a few symbols at a time, using a frequency oracle within each group.  The
paper argues PEM degrades when the per-step alphabet is large (t symbols
instead of 2 bits); this implementation lets that argument be verified
empirically and provides an additional baseline for the frequent-shape task.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np

from repro.exceptions import EmptyDatasetError
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sequences import chunk_evenly
from repro.utils.validation import check_epsilon, check_positive_int

Shape = tuple[str, ...]


@dataclass
class PrefixExtendingMiner:
    """Frequent symbolic-sequence mining by iterative prefix extension.

    Parameters
    ----------
    epsilon:
        Per-user privacy budget (each user reports once, in one group).
    alphabet:
        The SAX symbol alphabet.
    target_length:
        Length of the sequences to mine (number of extension rounds).
    top_k:
        Number of prefixes kept after every round.
    symbols_per_round:
        How many symbols are appended per round (PEM's "multiple levels in a
        single round"); 1 reproduces plain level-by-level extension.
    oracle:
        Name of the per-round frequency oracle (see
        :mod:`repro.api.oracles`); ``"auto"`` picks the minimum-variance
        oracle for each round's candidate-domain size analytically.

    After :meth:`mine`, :attr:`estimates_` holds the final round's estimated
    count of every returned prefix, and :attr:`round_oracles_` the concrete
    oracle name each round actually used (``"auto"`` resolved per round).
    """

    epsilon: float = 1.0
    alphabet: Sequence[str] = ("a", "b", "c", "d")
    target_length: int = 4
    top_k: int = 8
    symbols_per_round: int = 1
    oracle: str = "grr"

    def __post_init__(self) -> None:
        self.epsilon = check_epsilon(self.epsilon)
        self.alphabet = tuple(self.alphabet)
        self.target_length = check_positive_int(self.target_length, "target_length")
        self.top_k = check_positive_int(self.top_k, "top_k")
        self.symbols_per_round = check_positive_int(self.symbols_per_round, "symbols_per_round")
        self.oracle = str(self.oracle).lower()
        self.estimates_: dict[Shape, float] = {}
        self.round_oracles_: list[str] = []

    def _extensions(self, prefixes: list[Shape], width: int) -> list[Shape]:
        """All candidate sequences formed by appending ``width`` symbols to each prefix."""
        suffixes = list(product(self.alphabet, repeat=width))
        candidates: list[Shape] = []
        for prefix in prefixes:
            for suffix in suffixes:
                # Compressive SAX sequences never repeat a symbol consecutively.
                extended = prefix + suffix
                if any(extended[i] == extended[i + 1] for i in range(len(extended) - 1)):
                    continue
                candidates.append(extended)
        return candidates or [prefix + suffix for prefix in prefixes for suffix in suffixes]

    def _build_oracle(self, candidates: list[Shape], n_reports: int):
        """The round's frequency oracle over ``candidates + ["__other__"]``.

        The concrete name (``"auto"`` resolved against this round's domain
        size) is recorded in :attr:`round_oracles_` so callers can audit what
        was actually applied.
        """
        domain = candidates + ["__other__"]
        name = self.oracle
        if name == "auto":
            from repro.api.oracles import select_frequency_oracle

            name = select_frequency_oracle(self.epsilon, len(domain), n=max(n_reports, 1))
        self.round_oracles_.append(name)
        if name == "grr":
            # The historical default, constructed directly so seeded runs
            # predating the oracle registry stay byte-identical.
            return GeneralizedRandomizedResponse(self.epsilon, domain=domain)
        from repro.api.oracles import oracle_registry

        return oracle_registry.get(name).factory(self.epsilon, domain)

    def mine(self, sequences: Sequence[Shape], rng: RngLike = None) -> list[Shape]:
        """Mine the top-k frequent length-``target_length`` prefixes of ``sequences``."""
        sequences = [tuple(s) for s in sequences]
        if not sequences:
            raise EmptyDatasetError("sequences must not be empty")
        generator = ensure_rng(rng)

        n_rounds = int(np.ceil(self.target_length / self.symbols_per_round))
        user_groups = chunk_evenly(generator.permutation(len(sequences)), n_rounds)

        prefixes: list[Shape] = [()]
        self.estimates_ = {}
        self.round_oracles_ = []
        current_length = 0
        for round_index in range(n_rounds):
            width = min(self.symbols_per_round, self.target_length - current_length)
            candidates = self._extensions(prefixes, width)
            current_length += width
            oracle = self._build_oracle(candidates, len(user_groups[round_index]))

            reports = []
            for user_index in user_groups[round_index]:
                sequence = sequences[int(user_index)]
                prefix = sequence[:current_length]
                true_value = prefix if oracle.in_domain(prefix) else "__other__"
                reports.append(oracle.perturb(true_value, generator))
            if not reports:
                # No users left for this round; keep current prefixes unchanged.
                prefixes = candidates[: self.top_k]
                self.estimates_ = {prefix: 0.0 for prefix in prefixes}
                continue
            estimates = oracle.estimate_map(reports)
            estimates.pop("__other__", None)
            ranked = sorted(estimates.items(), key=lambda item: item[1], reverse=True)
            prefixes = [shape for shape, _ in ranked[: self.top_k]]
            self.estimates_ = {shape: float(count) for shape, count in ranked[: self.top_k]}
        return prefixes
