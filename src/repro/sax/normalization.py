"""z-score normalization of time series.

SAX assumes its input has been z-normalized (zero mean, unit variance); the
UCR datasets used by the paper ship pre-normalized, and the synthetic
generators in :mod:`repro.datasets` normalize through this function.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_time_series


def zscore_normalize(series, ddof: int = 0, epsilon: float = 1e-12) -> np.ndarray:
    """Return the z-normalized copy of ``series``.

    A (near-)constant series has no meaningful shape; rather than dividing by
    zero we return an all-zeros series of the same length, which SAX maps to a
    single repeated middle symbol (and Compressive SAX then collapses to one
    element).

    Parameters
    ----------
    series:
        1-D sequence of real values.
    ddof:
        Delta degrees of freedom for the standard deviation (0 = population).
    epsilon:
        Standard deviations below this threshold are treated as zero.
    """
    arr = check_time_series(series)
    std = arr.std(ddof=ddof)
    if std < epsilon:
        return np.zeros_like(arr)
    return (arr - arr.mean()) / std
