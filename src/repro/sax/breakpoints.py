"""SAX breakpoint ("lookup") tables derived from the standard normal distribution.

SAX assigns symbols by slicing the real line into ``t`` regions that are
equiprobable under N(0, 1); the cut points are the ``i/t`` quantiles of the
standard normal.  For ``t = 3`` this gives the lookup table quoted in the
paper: ``a: (-inf, -0.43), b: [-0.43, 0.43), c: [0.43, +inf)``.
"""

from __future__ import annotations

import string
from functools import lru_cache

import numpy as np
from scipy import stats

from repro.utils.validation import check_positive_int

#: Largest alphabet supported using single-character symbols a..z.
MAX_ALPHABET_SIZE = 26


@lru_cache(maxsize=None)
def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """Return the ``alphabet_size - 1`` interior breakpoints for SAX.

    Breakpoints are the ``i / alphabet_size`` quantiles of N(0, 1) for
    ``i = 1 .. alphabet_size - 1``, in increasing order.
    """
    t = check_positive_int(alphabet_size, "alphabet_size")
    if t < 2:
        raise ValueError(f"alphabet_size must be at least 2, got {t}")
    if t > MAX_ALPHABET_SIZE:
        raise ValueError(f"alphabet_size must be at most {MAX_ALPHABET_SIZE}, got {t}")
    quantiles = np.arange(1, t) / t
    return stats.norm.ppf(quantiles)


@lru_cache(maxsize=None)
def _cached_alphabet(alphabet_size: int) -> tuple[str, ...]:
    return tuple(string.ascii_lowercase[:alphabet_size])


def symbol_alphabet(alphabet_size: int) -> list[str]:
    """Return the symbols used for an alphabet of the given size: ``['a', 'b', ...]``."""
    t = check_positive_int(alphabet_size, "alphabet_size")
    if t > MAX_ALPHABET_SIZE:
        raise ValueError(f"alphabet_size must be at most {MAX_ALPHABET_SIZE}, got {t}")
    return list(_cached_alphabet(t))


@lru_cache(maxsize=None)
def symbol_centroids(alphabet_size: int) -> dict[str, float]:
    """Map each symbol to a representative numeric value (its region's N(0,1) mean).

    Used to reconstruct a numeric "essential shape" from a symbolic one so
    that extracted shapes can be compared against numeric ground truth with
    DTW / Euclidean distance (Tables III and IV).
    """
    t = check_positive_int(alphabet_size, "alphabet_size")
    breakpoints = gaussian_breakpoints(t)
    edges = np.concatenate([[-np.inf], breakpoints, [np.inf]])
    centroids = {}
    for symbol, (low, high) in zip(symbol_alphabet(t), zip(edges[:-1], edges[1:])):
        # Mean of a standard normal truncated to (low, high):
        # (phi(low) - phi(high)) / (Phi(high) - Phi(low)).
        phi_low = stats.norm.pdf(low) if np.isfinite(low) else 0.0
        phi_high = stats.norm.pdf(high) if np.isfinite(high) else 0.0
        mass = stats.norm.cdf(high) - stats.norm.cdf(low)
        centroids[symbol] = float((phi_low - phi_high) / mass)
    return centroids
