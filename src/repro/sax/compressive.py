"""Compressive SAX: SAX followed by run-length collapse of repeated symbols.

Compressive SAX is the dimensionality-reduction step that makes user-level
LDP tractable in the paper: ``"aaaccccccbbbbaaa" -> "acba"``.  The collapse is
deterministic (no privacy budget is consumed) and preserves the sequence of
trend changes while discarding how long each level was held — exactly the
"essential shape" the mechanism mines for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.sax.sax import SAXTransformer
from repro.utils.sequences import run_length_collapse


def compress_symbols(symbols: Sequence[str]) -> list[str]:
    """Collapse consecutive repeated symbols: ``['a','a','c','c'] -> ['a','c']``."""
    return run_length_collapse(symbols)


@dataclass
class CompressiveSAX:
    """SAX transform followed by run-length compression.

    Parameters mirror :class:`~repro.sax.sax.SAXTransformer`; ``compress``
    can be disabled to reproduce the "No Compression" ablation (Fig. 18(b)).
    """

    alphabet_size: int = 4
    segment_length: int = 10
    normalize: bool = True
    compress: bool = True

    def __post_init__(self) -> None:
        self._sax = SAXTransformer(
            alphabet_size=self.alphabet_size,
            segment_length=self.segment_length,
            normalize=self.normalize,
        )

    @property
    def alphabet(self) -> list[str]:
        """The symbol alphabet, e.g. ``['a', 'b', 'c', 'd']`` for t=4."""
        return self._sax.alphabet

    def transform(self, series) -> tuple[str, ...]:
        """Return the compressed symbolic shape of one series as a tuple of symbols."""
        symbols = self._sax.transform(series)
        if self.compress:
            symbols = compress_symbols(symbols)
        return tuple(symbols)

    def transform_dataset(self, dataset) -> list[tuple[str, ...]]:
        """Apply :meth:`transform` to every series in a dataset."""
        return [self.transform(series) for series in dataset]

    def transform_string(self, series) -> str:
        """Convenience wrapper returning the shape as a plain string like ``"acba"``."""
        return "".join(self.transform(series))
