"""Time-series transformation substrate: z-normalization, PAA, SAX, Compressive SAX.

The paper pre-processes every time series with Symbolic Aggregate
approXimation (SAX) and then collapses consecutive repeated symbols
("Compressive SAX") so that a long series becomes a short symbolic shape such
as ``"acba"``.  This package implements that pipeline plus the inverse mapping
from symbols back to representative values used for plotting and for
comparing extracted shapes against numeric ground truth.
"""

from repro.sax.normalization import zscore_normalize
from repro.sax.paa import piecewise_aggregate, segment_boundaries
from repro.sax.breakpoints import gaussian_breakpoints, symbol_alphabet, symbol_centroids
from repro.sax.sax import SAXTransformer
from repro.sax.compressive import CompressiveSAX, compress_symbols
from repro.sax.reconstruction import symbols_to_values

__all__ = [
    "zscore_normalize",
    "piecewise_aggregate",
    "segment_boundaries",
    "gaussian_breakpoints",
    "symbol_alphabet",
    "symbol_centroids",
    "SAXTransformer",
    "CompressiveSAX",
    "compress_symbols",
    "symbols_to_values",
]
