"""Reconstruction of numeric values from symbolic shapes.

Extracted shapes are symbol strings; to compare them against numeric ground
truth (Tables III / IV) or to plot them (Figs. 8 / 10 / 12) each symbol is
mapped back to the mean of its SAX region under N(0, 1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DomainError
from repro.sax.breakpoints import symbol_alphabet, symbol_centroids


def symbols_to_values(
    symbols: Sequence[str],
    alphabet_size: int,
    repeat: int = 1,
) -> np.ndarray:
    """Map a symbolic shape back to representative numeric values.

    Parameters
    ----------
    symbols:
        The symbolic shape, e.g. ``('a', 'c', 'b', 'a')``.
    alphabet_size:
        The SAX alphabet size the symbols were produced with.
    repeat:
        Number of numeric points emitted per symbol (useful to stretch a
        compressed shape back onto a time axis for plotting).
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    centroids = symbol_centroids(alphabet_size)
    valid = set(symbol_alphabet(alphabet_size))
    values: list[float] = []
    for symbol in symbols:
        if symbol not in valid:
            raise DomainError(
                f"symbol {symbol!r} is not in the alphabet of size {alphabet_size}"
            )
        values.extend([centroids[symbol]] * repeat)
    return np.asarray(values, dtype=float)
