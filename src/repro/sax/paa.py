"""Piecewise Aggregate Approximation (PAA).

Following the paper's notation, a time series of length ``m`` is segmented
into ``ceil(m / w)`` pieces of ``w`` consecutive points (the last piece may be
shorter), and each piece is replaced by its mean.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_positive_int, check_time_series


def segment_boundaries(length: int, segment_length: int) -> list[tuple[int, int]]:
    """Return the ``[start, end)`` index pairs of each PAA segment.

    The final segment absorbs the remainder when ``length`` is not divisible
    by ``segment_length``.
    """
    length = check_positive_int(length, "length")
    segment_length = check_positive_int(segment_length, "segment_length")
    n_segments = math.ceil(length / segment_length)
    boundaries = []
    for i in range(n_segments):
        start = i * segment_length
        end = min((i + 1) * segment_length, length)
        boundaries.append((start, end))
    return boundaries


def piecewise_aggregate(series, segment_length: int) -> np.ndarray:
    """Average ``series`` over consecutive windows of ``segment_length`` points.

    Returns a vector of ``ceil(len(series) / segment_length)`` means.
    """
    arr = check_time_series(series)
    boundaries = segment_boundaries(arr.size, segment_length)
    return np.array([arr[start:end].mean() for start, end in boundaries], dtype=float)
