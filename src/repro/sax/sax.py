"""Symbolic Aggregate approXimation (SAX) transformer."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sax.breakpoints import gaussian_breakpoints, symbol_alphabet
from repro.sax.normalization import zscore_normalize
from repro.sax.paa import piecewise_aggregate
from repro.utils.validation import check_positive_int, check_time_series


@dataclass
class SAXTransformer:
    """Transforms a numeric time series into a symbolic sequence.

    Parameters
    ----------
    alphabet_size:
        ``t`` in the paper — the number of symbols.
    segment_length:
        ``w`` in the paper — the number of raw points averaged per symbol.
    normalize:
        Whether to z-normalize before PAA.  The UCR datasets are already
        normalized but normalizing again is harmless; synthetic data relies
        on this flag.

    Examples
    --------
    >>> sax = SAXTransformer(alphabet_size=3, segment_length=8)
    >>> symbols = sax.transform([0.0] * 8 + [3.0] * 8 + [-3.0] * 8)
    >>> "".join(symbols)
    'bca'
    """

    alphabet_size: int = 4
    segment_length: int = 10
    normalize: bool = True
    breakpoints: np.ndarray = field(init=False, repr=False)
    alphabet: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.alphabet_size = check_positive_int(self.alphabet_size, "alphabet_size")
        self.segment_length = check_positive_int(self.segment_length, "segment_length")
        self.breakpoints = gaussian_breakpoints(self.alphabet_size)
        self.alphabet = symbol_alphabet(self.alphabet_size)

    def symbolize_values(self, values) -> list[str]:
        """Map already-aggregated numeric values to symbols via the breakpoints."""
        arr = np.asarray(values, dtype=float)
        indices = np.searchsorted(self.breakpoints, arr, side="right")
        return [self.alphabet[i] for i in indices]

    def transform(self, series) -> list[str]:
        """Full SAX pipeline for one series: normalize -> PAA -> symbolize."""
        arr = check_time_series(series)
        if self.normalize:
            arr = zscore_normalize(arr)
        aggregated = piecewise_aggregate(arr, self.segment_length)
        return self.symbolize_values(aggregated)

    def transform_dataset(self, dataset) -> list[list[str]]:
        """Apply :meth:`transform` to every series in a dataset."""
        return [self.transform(series) for series in dataset]
