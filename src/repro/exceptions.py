"""Exception hierarchy for the PrivShape reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class.  More specific subclasses are raised where the
failure mode is actionable (bad configuration, invalid privacy budget,
malformed data, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this library."""


class ConfigurationError(ReproError):
    """A mechanism or pipeline was configured with inconsistent parameters."""


class PrivacyBudgetError(ConfigurationError):
    """The privacy budget ``epsilon`` is not a positive finite number."""


class DataShapeError(ReproError):
    """Input data does not have the expected shape, length, or dtype."""


class WireFormatError(DataShapeError):
    """A serialized payload received over the wire is malformed or hostile."""


class EmptyDatasetError(DataShapeError):
    """An operation that requires at least one time series received none."""


class DomainError(ReproError):
    """A value lies outside the declared perturbation or encoding domain."""


class EstimationError(ReproError):
    """Aggregation failed, e.g. no reports were collected for an estimator."""


class ProtocolStateError(ReproError):
    """A collection-service round was opened, closed, or finalized out of order."""


class ServerError(ReproError):
    """The collection gateway rejected a request or the connection failed."""


class ServerConnectionError(ServerError):
    """The transport to a server failed (connect, send, or receive).

    Distinct from a protocol-level rejection so retry loops can replay a
    slice after a worker crash without also retrying requests the server
    deliberately refused.
    """


class ExecutionError(ReproError):
    """An execution backend failed to run a spec to completion."""


class NotFittedError(ReproError):
    """A model (clusterer, classifier) was used before being fitted."""
