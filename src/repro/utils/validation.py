"""Input validation helpers shared across the library."""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    DataShapeError,
    EmptyDatasetError,
    PrivacyBudgetError,
)


def check_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a privacy budget: must be a positive, finite float."""
    try:
        value = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise PrivacyBudgetError(f"{name} must be a number, got {epsilon!r}") from exc
    if not math.isfinite(value) or value <= 0:
        raise PrivacyBudgetError(f"{name} must be positive and finite, got {value}")
    return value


def check_positive_int(value: int, name: str = "value") -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    result = int(value)
    if result <= 0:
        raise ValueError(f"{name} must be positive, got {result}")
    return result


def check_population_fractions(
    fractions: Sequence[float], n_groups: int = 4
) -> tuple[float, ...]:
    """Validate a population split: ``n_groups`` positive fractions summing to 1.

    Shared by the legacy config classes and the composable CollectionSpec so
    the two surfaces can never drift apart.
    """
    values = tuple(float(f) for f in fractions)
    if len(values) != n_groups:
        raise ConfigurationError(
            f"population_fractions must have exactly {n_groups} entries"
        )
    if any(f <= 0 for f in values):
        raise ConfigurationError("population fractions must all be positive")
    if abs(sum(values) - 1.0) > 1e-6:
        raise ConfigurationError(
            f"population_fractions must sum to 1, got {sum(values)}"
        )
    return values


def check_open_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies strictly inside (0, 1)."""
    result = float(value)
    if not 0.0 < result < 1.0:
        raise ConfigurationError(f"{name} must be in (0, 1)")
    return result


def check_optional_threshold(value: float | None, name: str) -> float | None:
    """Validate an optional non-negative threshold (None means 'derive')."""
    if value is None:
        return None
    result = float(value)
    if result < 0:
        raise ConfigurationError(f"{name} must be non-negative or None")
    return result


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1]."""
    result = float(value)
    if not 0.0 <= result <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {result}")
    return result


def check_time_series(series: Sequence[float], name: str = "series") -> np.ndarray:
    """Coerce a single time series to a 1-D float array and validate it."""
    arr = np.asarray(series, dtype=float)
    if arr.ndim != 1:
        raise DataShapeError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise DataShapeError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise DataShapeError(f"{name} contains NaN or infinite values")
    return arr


def check_time_series_dataset(
    dataset: Sequence[Sequence[float]], name: str = "dataset"
) -> list[np.ndarray]:
    """Validate a collection of (possibly variable-length) time series.

    Returns a list of 1-D float arrays.  An empty collection raises
    :class:`EmptyDatasetError`.
    """
    series_list = [check_time_series(series, name=f"{name}[{i}]") for i, series in enumerate(dataset)]
    if not series_list:
        raise EmptyDatasetError(f"{name} must contain at least one time series")
    return series_list
