"""Counter-based pseudo-random function for per-user report randomness.

The round-based collection service derives every random draw a client makes
from ``(round key, user id, draw slot)`` through a vectorized SplitMix64-style
mixer.  Because a report's randomness is a pure function of those three
values, the realized reports do not depend on how the population is batched,
sharded, or ordered — the streaming :class:`~repro.service.driver.ProtocolDriver`
and the offline :class:`~repro.core.privshape.PrivShape` path therefore
produce *byte-identical* aggregates from the same master seed.

This is simulation plumbing, not cryptography: SplitMix64 passes standard
statistical batteries, which is all a reproducible LDP simulation needs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

_MASK64 = (1 << 64) - 1
#: 2^64 / golden ratio; the standard SplitMix64 stream increment.
_GOLDEN = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
#: 2^-53, converts the top 53 bits of a draw into a double in [0, 1).
_INV_2_53 = float(2.0 ** -53)


def fresh_key(rng: RngLike = None) -> int:
    """Draw a new 63-bit round key from a master generator.

    Both execution paths (offline and streaming) draw their round keys from
    the master generator in the same order, which is the only generator state
    they consume — everything downstream is keyed PRF evaluation.
    """
    return int(ensure_rng(rng).integers(0, 2**63 - 1))


def _mix64(z: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer over a uint64 array (wraps modulo 2^64)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX_A)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX_B)
    return z ^ (z >> np.uint64(31))


def _mix_scalar(z: int) -> int:
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX_A) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_B) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def derive_key(key: int, salt: int) -> int:
    """Derive an independent sub-key, e.g. one per draw slot or matrix column."""
    return _mix_scalar((int(key) + (int(salt) + 1) * _GOLDEN) & _MASK64)


def prf_uint64(key: int, user_ids: np.ndarray, slot: int = 0) -> np.ndarray:
    """One 64-bit draw per user, as a uint64 array."""
    state = np.uint64(derive_key(key, slot))
    ids = np.asarray(user_ids).astype(np.uint64, copy=False)
    return _mix64(state + (ids + np.uint64(1)) * np.uint64(_GOLDEN))


def prf_uniforms(key: int, user_ids: np.ndarray, slot: int = 0) -> np.ndarray:
    """One double in [0, 1) per user."""
    return (prf_uint64(key, user_ids, slot) >> np.uint64(11)).astype(np.float64) * _INV_2_53


def prf_integers(key: int, user_ids: np.ndarray, high: int, slot: int = 0) -> np.ndarray:
    """One integer in ``[0, high)`` per user (int64).

    Uses the multiply-shift reduction of a 53-bit uniform; the modulo bias is
    below ``high / 2^53``, far beneath anything a frequency estimate can see.
    """
    if high <= 0:
        raise ValueError(f"high must be positive, got {high}")
    return np.minimum(
        (prf_uniforms(key, user_ids, slot) * high).astype(np.int64), high - 1
    )


def prf_uniform_matrix(key: int, user_ids: np.ndarray, n_columns: int, slot: int = 0) -> np.ndarray:
    """A ``(len(user_ids), n_columns)`` matrix of doubles in [0, 1).

    Column ``j`` is the independent stream ``slot + j``; every cell is still a
    pure function of (key, user id, column), so any sub-batch of rows equals
    the corresponding rows of the full-population matrix.
    """
    if n_columns <= 0:
        raise ValueError(f"n_columns must be positive, got {n_columns}")
    ids = np.asarray(user_ids).astype(np.uint64, copy=False)
    row_state = (ids + np.uint64(1)) * np.uint64(_GOLDEN)
    column_keys = np.array(
        [derive_key(key, slot + j) for j in range(n_columns)], dtype=np.uint64
    )
    draws = _mix64(row_state[:, None] + column_keys[None, :])
    return (draws >> np.uint64(11)).astype(np.float64) * _INV_2_53
