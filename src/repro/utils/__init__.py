"""Shared utilities: RNG handling, validation, and sequence helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
    check_time_series,
    check_time_series_dataset,
)
from repro.utils.sequences import (
    run_length_collapse,
    pad_or_truncate,
    split_population,
    chunk_evenly,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "check_epsilon",
    "check_positive_int",
    "check_probability",
    "check_time_series",
    "check_time_series_dataset",
    "run_length_collapse",
    "pad_or_truncate",
    "split_population",
    "chunk_evenly",
]
