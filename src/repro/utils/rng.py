"""Random-number-generator plumbing.

Every randomized component in the library accepts either ``None`` (fresh
entropy), an integer seed, or an existing :class:`numpy.random.Generator`.
``ensure_rng`` normalizes all three into a ``Generator`` so that experiments
are reproducible end to end when a seed is supplied.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator, or None.

    Parameters
    ----------
    rng:
        ``None`` for OS entropy, an ``int`` seed for reproducibility, or an
        existing generator which is returned unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or numpy.random.Generator, got {type(rng)!r}"
    )


def spawn_rngs(rng: RngLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used to give each user (or each benchmark trial) its own stream so that
    per-user randomness does not depend on iteration order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
