"""Sequence and population helpers used by the SAX and core packages."""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.utils.rng import RngLike, ensure_rng

T = TypeVar("T")


def run_length_collapse(sequence: Sequence[T]) -> list[T]:
    """Collapse consecutive repeated elements into a single occurrence.

    This is the "compression" step of Compressive SAX:
    ``"aaaccccccbbbbaaa" -> "acba"``.

    Examples
    --------
    >>> run_length_collapse("aaabba")
    ['a', 'b', 'a']
    """
    collapsed: list[T] = []
    for item in sequence:
        if not collapsed or collapsed[-1] != item:
            collapsed.append(item)
    return collapsed


def pad_or_truncate(sequence: Sequence[T], length: int, pad_value: T) -> list[T]:
    """Return ``sequence`` adjusted to exactly ``length`` elements.

    Longer sequences are truncated; shorter ones are right-padded with
    ``pad_value``.  This is the "padding-and-sampling" preprocessing used for
    sub-shape estimation.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    items = list(sequence)
    if len(items) >= length:
        return items[:length]
    return items + [pad_value] * (length - len(items))


def split_population(
    n: int,
    fractions: Sequence[float],
    rng: RngLike = None,
) -> list[np.ndarray]:
    """Randomly partition ``range(n)`` into groups with the given fractions.

    The fractions must sum to (approximately) one; the last group absorbs any
    rounding remainder so every index is assigned exactly once.

    Returns a list of index arrays, one per fraction, in the given order.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    fracs = [float(f) for f in fractions]
    if any(f < 0 for f in fracs):
        raise ValueError(f"fractions must be non-negative, got {fracs}")
    total = sum(fracs)
    if not np.isclose(total, 1.0, atol=1e-6):
        raise ValueError(f"fractions must sum to 1, got {total}")

    generator = ensure_rng(rng)
    permutation = generator.permutation(n)
    boundaries = np.cumsum([int(round(f * n)) for f in fracs[:-1]])
    boundaries = np.clip(boundaries, 0, n)
    return [np.sort(part) for part in np.split(permutation, boundaries)]


def chunk_evenly(indices: Sequence[int], n_chunks: int) -> list[np.ndarray]:
    """Split ``indices`` into ``n_chunks`` contiguous, nearly equal-sized chunks.

    Used to assign one group of users to each trie level.  Chunks may be empty
    when there are fewer indices than chunks.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    array = np.asarray(list(indices))
    return list(np.array_split(array, n_chunks))
