"""Local differential privacy substrate.

This package implements the LDP building blocks the paper relies on:

* Frequency oracles over finite domains: Generalized Randomized Response
  (:class:`GeneralizedRandomizedResponse`), Symmetric / Optimized Unary
  Encoding (:class:`UnaryEncoding`), and Optimized Local Hashing
  (:class:`OptimizedLocalHashing`).
* The Exponential Mechanism (:class:`ExponentialMechanism`) used by PrivShape
  to let each user privately select the closest candidate shape.
* Numeric value perturbation used by the PatternLDP competitor:
  :class:`LaplaceMechanism`, :class:`PiecewiseMechanism`, and
  :class:`DuchiMechanism`.
* Privacy accounting helpers implementing the sequential and parallel
  composition theorems (:class:`PrivacyAccountant`).
"""

from repro.ldp.base import FrequencyOracle, PerturbationMechanism
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.unary import UnaryEncoding
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.exponential import ExponentialMechanism
from repro.ldp.value import DuchiMechanism, LaplaceMechanism, PiecewiseMechanism
from repro.ldp.accounting import BudgetSpend, PrivacyAccountant

__all__ = [
    "FrequencyOracle",
    "PerturbationMechanism",
    "GeneralizedRandomizedResponse",
    "UnaryEncoding",
    "OptimizedLocalHashing",
    "ExponentialMechanism",
    "LaplaceMechanism",
    "PiecewiseMechanism",
    "DuchiMechanism",
    "BudgetSpend",
    "PrivacyAccountant",
]
