"""Optimized Local Hashing (OLH) frequency oracle.

OLH (Wang et al. 2017) hashes the true value into a small domain
``g = round(e^eps) + 1`` and applies GRR within the hashed domain.  It is not
required by the PrivShape algorithms themselves, but it is the standard large
-domain frequency oracle and is included so that the sub-shape estimation
step can be ablated against it (large symbol sizes make the sub-shape domain
``t*(t-1)`` large enough for OLH to become competitive).
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.prf import prf_integers, prf_uniforms
from repro.utils.rng import RngLike, ensure_rng

# A large prime used in the universal hash family ((a*x + b) mod P) mod g.
_PRIME = 2_147_483_647


class OptimizedLocalHashing(FrequencyOracle):
    """ε-LDP Optimized Local Hashing over an arbitrary finite domain.

    Each report is a pair ``(hash_seed, perturbed_hash_value)``.  The server
    aggregates by counting, for every candidate domain item, how many reports
    hash the item to the reported value.
    """

    def __init__(self, epsilon: float, domain: Sequence[Hashable], g: int | None = None) -> None:
        super().__init__(epsilon, domain)
        e_eps = np.exp(self.epsilon)
        self.g = int(g) if g is not None else max(2, int(round(e_eps)) + 1)
        if self.g < 2:
            raise ValueError(f"hash domain g must be >= 2, got {self.g}")
        self.p = e_eps / (e_eps + self.g - 1)
        self.q = 1.0 / self.g

    def _hash(self, index: int, seed: int) -> int:
        """Map a domain index into ``[0, g)`` with a seeded universal hash."""
        a = (seed * 2654435761 + 1) % _PRIME
        b = (seed * 40503 + 12345) % _PRIME
        return int(((a * (index + 1) + b) % _PRIME) % self.g)

    def _hash_array(self, indices: np.ndarray, seeds: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`_hash`: broadcastable over indices and seeds (int64 safe)."""
        seeds = np.asarray(seeds, dtype=np.int64)
        a = (seeds * 2654435761 + 1) % _PRIME
        b = (seeds * 40503 + 12345) % _PRIME
        return ((a * (np.asarray(indices, dtype=np.int64) + 1) + b) % _PRIME) % self.g

    def perturb(self, value: Hashable, rng: RngLike = None) -> Tuple[int, int]:
        """Return ``(hash_seed, perturbed_hashed_value)`` for the true value."""
        generator = ensure_rng(rng)
        seed = int(generator.integers(0, 2**31 - 1))
        hashed = self._hash(self.index_of(value), seed)
        if generator.random() < np.exp(self.epsilon) / (np.exp(self.epsilon) + self.g - 1):
            reported = hashed
        else:
            offset = int(generator.integers(1, self.g))
            reported = (hashed + offset) % self.g
        return seed, reported

    def perturb_batch(self, values: Sequence[Hashable], rng: RngLike = None) -> list[Tuple[int, int]]:
        """Vectorized :meth:`perturb`: batch draws instead of 3n scalar draws."""
        generator = ensure_rng(rng)
        indices = np.fromiter(
            (self.index_of(v) for v in values), dtype=np.int64, count=len(values)
        )
        seeds = generator.integers(0, 2**31 - 1, size=indices.size)
        reported = self._perturb_hashed(
            self._hash_array(indices, seeds),
            generator.random(indices.size),
            generator.integers(1, self.g, size=indices.size),
        )
        return [(int(s), int(r)) for s, r in zip(seeds, reported)]

    def _perturb_hashed(
        self, hashed: np.ndarray, uniforms: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        return np.where(uniforms < self.p, hashed, (hashed + offsets) % self.g).astype(np.int64)

    def encode_batch(
        self, indices: np.ndarray, user_ids: np.ndarray, key: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """PRF-keyed batch reports ``(seeds, perturbed hashed values)``.

        Each user's hash seed and perturbation are pure functions of
        ``(key, user id)``, making the reports batch-partition invariant.
        """
        seeds = prf_integers(key, user_ids, 2**31 - 1, slot=0)
        hashed = self._hash_array(np.asarray(indices, dtype=np.int64), seeds)
        reported = self._perturb_hashed(
            hashed,
            prf_uniforms(key, user_ids, slot=1),
            prf_integers(key, user_ids, self.g - 1, slot=2) + 1,
        )
        return seeds, reported

    def aggregate_batch(self, seeds: np.ndarray, reported: np.ndarray) -> np.ndarray:
        """Support counts per domain item (int64), vectorized over the batch."""
        seeds = np.asarray(seeds, dtype=np.int64)
        reported = np.asarray(reported, dtype=np.int64)
        support = np.empty(self.domain_size, dtype=np.int64)
        for index in range(self.domain_size):
            support[index] = int(np.sum(self._hash_array(index, seeds) == reported))
        return support

    def estimate_counts_from_support(self, support: np.ndarray, n_reports: int) -> np.ndarray:
        """Unbiased estimates from pre-aggregated per-item support counts."""
        p_star = np.exp(self.epsilon) / (np.exp(self.epsilon) + self.g - 1)
        return (np.asarray(support, dtype=float) - n_reports / self.g) / (
            p_star - 1.0 / self.g
        )

    def estimate_counts(self, reports: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Unbiased counts from ``(seed, value)`` reports."""
        reports = list(reports)
        if not reports:
            return np.zeros(self.domain_size, dtype=float)
        seeds = np.array([seed for seed, _ in reports], dtype=np.int64)
        reported = np.array([value for _, value in reports], dtype=np.int64)
        return self.estimate_counts_from_support(
            self.aggregate_batch(seeds, reported), len(reports)
        )

    def variance(self, n: int) -> float:
        """Approximate per-item estimator variance for ``n`` reports."""
        e_eps = np.exp(self.epsilon)
        return n * 4.0 * e_eps / (e_eps - 1.0) ** 2
