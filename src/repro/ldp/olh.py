"""Optimized Local Hashing (OLH) frequency oracle.

OLH (Wang et al. 2017) hashes the true value into a small domain
``g = round(e^eps) + 1`` and applies GRR within the hashed domain.  It is not
required by the PrivShape algorithms themselves, but it is the standard large
-domain frequency oracle and is included so that the sub-shape estimation
step can be ablated against it (large symbol sizes make the sub-shape domain
``t*(t-1)`` large enough for OLH to become competitive).
"""

from __future__ import annotations

from typing import Hashable, Sequence, Tuple

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RngLike, ensure_rng

# A large prime used in the universal hash family ((a*x + b) mod P) mod g.
_PRIME = 2_147_483_647


class OptimizedLocalHashing(FrequencyOracle):
    """ε-LDP Optimized Local Hashing over an arbitrary finite domain.

    Each report is a pair ``(hash_seed, perturbed_hash_value)``.  The server
    aggregates by counting, for every candidate domain item, how many reports
    hash the item to the reported value.
    """

    def __init__(self, epsilon: float, domain: Sequence[Hashable], g: int | None = None) -> None:
        super().__init__(epsilon, domain)
        e_eps = np.exp(self.epsilon)
        self.g = int(g) if g is not None else max(2, int(round(e_eps)) + 1)
        if self.g < 2:
            raise ValueError(f"hash domain g must be >= 2, got {self.g}")
        self.p = e_eps / (e_eps + self.g - 1)
        self.q = 1.0 / self.g

    def _hash(self, index: int, seed: int) -> int:
        """Map a domain index into ``[0, g)`` with a seeded universal hash."""
        a = (seed * 2654435761 + 1) % _PRIME
        b = (seed * 40503 + 12345) % _PRIME
        return int(((a * (index + 1) + b) % _PRIME) % self.g)

    def perturb(self, value: Hashable, rng: RngLike = None) -> Tuple[int, int]:
        """Return ``(hash_seed, perturbed_hashed_value)`` for the true value."""
        generator = ensure_rng(rng)
        seed = int(generator.integers(0, 2**31 - 1))
        hashed = self._hash(self.index_of(value), seed)
        if generator.random() < np.exp(self.epsilon) / (np.exp(self.epsilon) + self.g - 1):
            reported = hashed
        else:
            offset = int(generator.integers(1, self.g))
            reported = (hashed + offset) % self.g
        return seed, reported

    def estimate_counts(self, reports: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Unbiased counts from ``(seed, value)`` reports."""
        reports = list(reports)
        n = len(reports)
        support = np.zeros(self.domain_size, dtype=float)
        for seed, reported in reports:
            for index in range(self.domain_size):
                if self._hash(index, seed) == reported:
                    support[index] += 1.0
        p_star = np.exp(self.epsilon) / (np.exp(self.epsilon) + self.g - 1)
        return (support - n / self.g) / (p_star - 1.0 / self.g)

    def variance(self, n: int) -> float:
        """Approximate per-item estimator variance for ``n`` reports."""
        e_eps = np.exp(self.epsilon)
        return n * 4.0 * e_eps / (e_eps - 1.0) ** 2
