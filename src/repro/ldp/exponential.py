"""Exponential Mechanism used for private candidate-shape selection.

In both the baseline mechanism and PrivShape (Eq. (2) of the paper) each user
receives a list of candidate shapes from the server, computes a similarity
score in ``[0, 1]`` between her own sequence and each candidate, and samples
one candidate with probability proportional to ``exp(eps * score / (2 * Δ))``
with sensitivity ``Δ = 1`` since the score is normalized.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.exceptions import DomainError
from repro.ldp.base import PerturbationMechanism
from repro.utils.rng import RngLike, ensure_rng

Candidate = TypeVar("Candidate")


class ExponentialMechanism(PerturbationMechanism):
    """ε-LDP exponential mechanism over a finite candidate set.

    Parameters
    ----------
    epsilon:
        Privacy budget for one selection.
    sensitivity:
        Sensitivity of the score function.  The paper normalizes scores to
        ``[0, 1]`` which yields a sensitivity of 1 (the default).
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = float(sensitivity)

    def selection_probabilities(self, scores: Sequence[float]) -> np.ndarray:
        """Return the selection probability of every candidate given its score."""
        score_array = np.asarray(scores, dtype=float)
        if score_array.ndim != 1 or score_array.size == 0:
            raise DomainError("scores must be a non-empty 1-D sequence")
        exponents = self.epsilon * score_array / (2.0 * self.sensitivity)
        # Subtract the max exponent for numerical stability before exponentiating.
        exponents -= exponents.max()
        weights = np.exp(exponents)
        return weights / weights.sum()

    def perturb(self, scores: Sequence[float], rng: RngLike = None) -> int:
        """Sample a candidate index given per-candidate scores."""
        generator = ensure_rng(rng)
        probabilities = self.selection_probabilities(scores)
        return int(generator.choice(len(probabilities), p=probabilities))

    def select(
        self,
        candidates: Sequence[Candidate],
        score_fn: Callable[[Candidate], float],
        rng: RngLike = None,
    ) -> Candidate:
        """Privately select one candidate; ``score_fn`` must return values in [0, 1]."""
        candidate_list = list(candidates)
        if not candidate_list:
            raise DomainError("candidates must not be empty")
        scores = [float(score_fn(c)) for c in candidate_list]
        index = self.perturb(scores, rng)
        return candidate_list[index]
