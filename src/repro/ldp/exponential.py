"""Exponential Mechanism used for private candidate-shape selection.

In both the baseline mechanism and PrivShape (Eq. (2) of the paper) each user
receives a list of candidate shapes from the server, computes a similarity
score in ``[0, 1]`` between her own sequence and each candidate, and samples
one candidate with probability proportional to ``exp(eps * score / (2 * Δ))``
with sensitivity ``Δ = 1`` since the score is normalized.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.exceptions import DomainError
from repro.ldp.base import PerturbationMechanism
from repro.utils.rng import RngLike, ensure_rng

Candidate = TypeVar("Candidate")


class ExponentialMechanism(PerturbationMechanism):
    """ε-LDP exponential mechanism over a finite candidate set.

    Parameters
    ----------
    epsilon:
        Privacy budget for one selection.
    sensitivity:
        Sensitivity of the score function.  The paper normalizes scores to
        ``[0, 1]`` which yields a sensitivity of 1 (the default).
    """

    def __init__(self, epsilon: float, sensitivity: float = 1.0) -> None:
        super().__init__(epsilon)
        if sensitivity <= 0:
            raise ValueError(f"sensitivity must be positive, got {sensitivity}")
        self.sensitivity = float(sensitivity)

    def selection_probabilities(self, scores: Sequence[float]) -> np.ndarray:
        """Return the selection probability of every candidate given its score."""
        score_array = np.asarray(scores, dtype=float)
        if score_array.ndim != 1 or score_array.size == 0:
            raise DomainError("scores must be a non-empty 1-D sequence")
        exponents = self.epsilon * score_array / (2.0 * self.sensitivity)
        # Subtract the max exponent for numerical stability before exponentiating.
        exponents -= exponents.max()
        weights = np.exp(exponents)
        return weights / weights.sum()

    def selection_cdf(self, scores: Sequence[float]) -> np.ndarray:
        """Cumulative selection probabilities, for inverse-CDF batch sampling."""
        return np.cumsum(self.selection_probabilities(scores))

    @staticmethod
    def sample_from_cdf(cdf: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Sample candidate indices from a selection CDF given uniforms in [0, 1).

        ``searchsorted`` with one pre-drawn uniform per user is how the
        collection service vectorizes Exponential-Mechanism selection: the
        chosen index depends only on the user's own uniform and the shared
        CDF, so any batch partition of the users selects identically.
        """
        indices = np.searchsorted(cdf, np.asarray(uniforms, dtype=float), side="right")
        return np.minimum(indices, len(cdf) - 1).astype(np.int64)

    def perturb(self, scores: Sequence[float], rng: RngLike = None) -> int:
        """Sample a candidate index given per-candidate scores."""
        generator = ensure_rng(rng)
        probabilities = self.selection_probabilities(scores)
        return int(generator.choice(len(probabilities), p=probabilities))

    def select(
        self,
        candidates: Sequence[Candidate],
        score_fn: Callable[[Candidate], float],
        rng: RngLike = None,
    ) -> Candidate:
        """Privately select one candidate; ``score_fn`` must return values in [0, 1]."""
        candidate_list = list(candidates)
        if not candidate_list:
            raise DomainError("candidates must not be empty")
        scores = [float(score_fn(c)) for c in candidate_list]
        index = self.perturb(scores, rng)
        return candidate_list[index]
