"""Privacy accounting: sequential and parallel composition.

PrivShape's privacy argument rests on *parallel composition over users*: the
population is split into disjoint groups (Pa, Pb, Pc, Pd), each user reports
exactly once through exactly one ε-LDP mechanism, so the whole pipeline is
ε-LDP at the user level.  :class:`PrivacyAccountant` makes that argument
executable — mechanisms register their spends against named populations and
the accountant reports the effective user-level ε, and raises if a population
is (accidentally) charged twice in a way that would exceed the target budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import PrivacyBudgetError
from repro.utils.validation import check_epsilon


@dataclass(frozen=True)
class BudgetSpend:
    """A single privacy expenditure: ``epsilon`` charged to ``population``."""

    population: str
    epsilon: float
    mechanism: str = ""

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon, name="spend epsilon")


@dataclass
class PrivacyAccountant:
    """Tracks per-population budget spends and enforces a user-level target.

    Parameters
    ----------
    target_epsilon:
        The user-level budget ε the overall mechanism must not exceed.
    strict:
        If True (default), :meth:`spend` raises :class:`PrivacyBudgetError`
        as soon as any single population's sequential total exceeds the
        target.  If False, violations are only reported by :meth:`is_valid`.
    """

    target_epsilon: float
    strict: bool = True
    spends: List[BudgetSpend] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.target_epsilon = check_epsilon(self.target_epsilon, name="target_epsilon")

    def spend(self, population: str, epsilon: float, mechanism: str = "") -> BudgetSpend:
        """Record a spend of ``epsilon`` against ``population`` and return it."""
        record = BudgetSpend(population=population, epsilon=float(epsilon), mechanism=mechanism)
        self.spends.append(record)
        if self.strict and self.sequential_epsilon(population) > self.target_epsilon + 1e-12:
            self.spends.pop()
            raise PrivacyBudgetError(
                f"population {population!r} would spend "
                f"{self.sequential_epsilon(population) + epsilon:.4f} > target "
                f"{self.target_epsilon:.4f}"
            )
        return record

    def sequential_epsilon(self, population: str) -> float:
        """Total ε charged to one population (sequential composition)."""
        return sum(s.epsilon for s in self.spends if s.population == population)

    def per_population(self) -> Dict[str, float]:
        """Mapping of population name to its sequential ε total."""
        totals: Dict[str, float] = {}
        for spend in self.spends:
            totals[spend.population] = totals.get(spend.population, 0.0) + spend.epsilon
        return totals

    def user_level_epsilon(self) -> float:
        """Effective user-level ε under parallel composition across populations.

        Disjoint populations compose in parallel, so the user-level guarantee
        is the *maximum* sequential total over populations.
        """
        totals = self.per_population()
        return max(totals.values()) if totals else 0.0

    def is_valid(self) -> bool:
        """True when the user-level ε does not exceed the target budget."""
        return self.user_level_epsilon() <= self.target_epsilon + 1e-12

    def summary(self) -> str:
        """Human-readable accounting summary used in logs and examples."""
        lines = [f"target user-level epsilon: {self.target_epsilon:.4f}"]
        for population, total in sorted(self.per_population().items()):
            lines.append(f"  population {population}: epsilon = {total:.4f}")
        lines.append(f"effective user-level epsilon: {self.user_level_epsilon():.4f}")
        lines.append(f"within budget: {self.is_valid()}")
        return "\n".join(lines)
