"""Privacy accounting: sequential and parallel composition.

PrivShape's privacy argument rests on *parallel composition over users*: the
population is split into disjoint groups (Pa, Pb, Pc, Pd), each user reports
exactly once through exactly one ε-LDP mechanism, so the whole pipeline is
ε-LDP at the user level.  :class:`PrivacyAccountant` makes that argument
executable — mechanisms register their spends against named populations and
the accountant reports the effective user-level ε, and raises if a population
is (accidentally) charged twice in a way that would exceed the target budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.exceptions import PrivacyBudgetError
from repro.utils.validation import check_epsilon


@dataclass(frozen=True)
class BudgetSpend:
    """A single privacy expenditure: ``epsilon`` charged to ``population``.

    ``window`` scopes the spend to one collection window in continual mode.
    ``None`` (the default, and the only value the one-shot pipeline ever
    produces) means the spend is window-less and composes sequentially with
    every other spend against the same population.
    """

    population: str
    epsilon: float
    mechanism: str = ""
    window: int | None = None

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon, name="spend epsilon")
        if self.window is not None and self.window < 0:
            raise PrivacyBudgetError(f"window must be >= 0, got {self.window}")


@dataclass
class PrivacyAccountant:
    """Tracks per-population budget spends and enforces a user-level target.

    Parameters
    ----------
    target_epsilon:
        The user-level budget ε the overall mechanism must not exceed.
    strict:
        If True (default), :meth:`spend` raises :class:`PrivacyBudgetError`
        as soon as any single population's sequential total exceeds the
        target.  If False, violations are only reported by :meth:`is_valid`.
    """

    target_epsilon: float
    strict: bool = True
    spends: List[BudgetSpend] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.target_epsilon = check_epsilon(self.target_epsilon, name="target_epsilon")

    def spend(
        self,
        population: str,
        epsilon: float,
        mechanism: str = "",
        window: int | None = None,
    ) -> BudgetSpend:
        """Record a spend of ``epsilon`` against ``population`` and return it.

        Strict enforcement is scoped per ``(population, window)``: in continual
        mode each window's budget renews, so a spend only trips the cap when
        its *own window's* sequential total for that population exceeds the
        target.  Window-less spends (the one-shot pipeline) all share the
        ``None`` scope, which reproduces the original behaviour exactly.
        """
        record = BudgetSpend(
            population=population,
            epsilon=float(epsilon),
            mechanism=mechanism,
            window=window,
        )
        self.spends.append(record)
        scoped = self._scoped_epsilon(population, window)
        if self.strict and scoped > self.target_epsilon + 1e-12:
            self.spends.pop()
            raise PrivacyBudgetError(
                f"population {population!r}"
                + (f" in window {window}" if window is not None else "")
                + f" would spend {scoped:.4f} > target {self.target_epsilon:.4f}"
            )
        return record

    def _scoped_epsilon(self, population: str, window: int | None) -> float:
        """Sequential total for one ``(population, window)`` enforcement scope."""
        return sum(
            s.epsilon
            for s in self.spends
            if s.population == population and s.window == window
        )

    def sequential_epsilon(self, population: str) -> float:
        """Total ε charged to one population (sequential composition, all windows)."""
        return sum(s.epsilon for s in self.spends if s.population == population)

    def per_population(self) -> Dict[str, float]:
        """Mapping of population name to its sequential ε total."""
        totals: Dict[str, float] = {}
        for spend in self.spends:
            totals[spend.population] = totals.get(spend.population, 0.0) + spend.epsilon
        return totals

    def window_epsilons(self) -> Dict[int, float]:
        """Per-window event-level ε: max over populations within each window.

        Only window-tagged spends contribute; the one-shot pipeline (all
        spends window-less) yields an empty mapping.
        """
        per_window: Dict[int, Dict[str, float]] = {}
        for spend in self.spends:
            if spend.window is None:
                continue
            totals = per_window.setdefault(spend.window, {})
            totals[spend.population] = totals.get(spend.population, 0.0) + spend.epsilon
        return {
            window: max(totals.values())
            for window, totals in sorted(per_window.items())
        }

    def user_level_epsilon(self, horizon: int | None = None) -> float:
        """Effective user-level ε under parallel composition across populations.

        Disjoint populations compose in parallel, so within one enforcement
        scope the guarantee is the *maximum* sequential total over
        populations.  With window-tagged spends (continual mode) windows
        compose *sequentially* for a user present in all of them:

        - ``horizon=None``: worst case — the user participates in every
          window, so the window-level maxima sum over the whole stream (plus
          any window-less base spends).
        - ``horizon=h``: the user participates in at most ``h`` consecutive
          windows, so the guarantee is the worst sum over any ``h``
          consecutive recorded windows.

        Without window tags this reduces exactly to the original one-shot
        semantics regardless of ``horizon``.
        """
        base_totals: Dict[str, float] = {}
        for spend in self.spends:
            if spend.window is None:
                base_totals[spend.population] = (
                    base_totals.get(spend.population, 0.0) + spend.epsilon
                )
        base = max(base_totals.values()) if base_totals else 0.0
        windows = self.window_epsilons()
        if not windows:
            return base
        if horizon is not None and horizon <= 0:
            raise PrivacyBudgetError(f"horizon must be positive, got {horizon}")
        ordered = [windows[index] for index in sorted(windows)]
        if horizon is None or horizon >= len(ordered):
            return base + sum(ordered)
        worst = max(
            sum(ordered[i : i + horizon]) for i in range(len(ordered) - horizon + 1)
        )
        return base + worst

    def is_valid(self) -> bool:
        """True when every enforcement scope stays within the target budget.

        One-shot runs have a single ``None`` scope, so this coincides with
        ``user_level_epsilon() <= target``.  Continual runs renew the budget
        per window: each ``(population, window)`` scope is checked on its own.
        """
        scopes: Dict[tuple[str, int | None], float] = {}
        for spend in self.spends:
            key = (spend.population, spend.window)
            scopes[key] = scopes.get(key, 0.0) + spend.epsilon
        worst = max(scopes.values()) if scopes else 0.0
        return worst <= self.target_epsilon + 1e-12

    def summary(self) -> str:
        """Human-readable accounting summary used in logs and examples."""
        lines = [f"target user-level epsilon: {self.target_epsilon:.4f}"]
        for population, total in sorted(self.per_population().items()):
            lines.append(f"  population {population}: epsilon = {total:.4f}")
        lines.append(f"effective user-level epsilon: {self.user_level_epsilon():.4f}")
        lines.append(f"within budget: {self.is_valid()}")
        return "\n".join(lines)
