"""Generalized Randomized Response (GRR), a.k.a. k-ary randomized response.

GRR is the frequency oracle the paper uses for frequent-length estimation and
frequent sub-shape estimation (Section III-C and IV-B, citing Wang et al.
USENIX Security 2017).  With a domain of size ``d`` the client reports the
true value with probability ``p = e^eps / (e^eps + d - 1)`` and any other fixed
value with probability ``q = 1 / (e^eps + d - 1)``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.rng import RngLike, ensure_rng


class GeneralizedRandomizedResponse(FrequencyOracle):
    """ε-LDP k-ary randomized response over an arbitrary finite domain.

    Parameters
    ----------
    epsilon:
        Privacy budget for a single report.
    domain:
        Sequence of hashable category labels (symbols, lengths, sub-shapes...).
    """

    def __init__(self, epsilon: float, domain: Sequence[Hashable]) -> None:
        super().__init__(epsilon, domain)
        d = self.domain_size
        e_eps = np.exp(self.epsilon)
        self.p = e_eps / (e_eps + d - 1)
        self.q = 1.0 / (e_eps + d - 1)

    def perturb(self, value: Hashable, rng: RngLike = None) -> Hashable:
        """Perturb a single true category into a reported category."""
        generator = ensure_rng(rng)
        true_index = self.index_of(value)
        if generator.random() < self.p:
            return self.domain[true_index]
        # Report one of the d-1 other values uniformly at random.
        offset = int(generator.integers(1, self.domain_size))
        return self.domain[(true_index + offset) % self.domain_size]

    def perturb_many(self, values: Sequence[Hashable], rng: RngLike = None) -> list[Hashable]:
        """Perturb a sequence of values, one report per value."""
        generator = ensure_rng(rng)
        return [self.perturb(v, generator) for v in values]

    def estimate_counts(self, reports: Sequence[Hashable]) -> np.ndarray:
        """Unbiased count estimates: ``(observed - n*q) / (p - q)``."""
        reports = list(reports)
        observed = np.zeros(self.domain_size, dtype=float)
        for report in reports:
            observed[self.index_of(report)] += 1.0
        n = len(reports)
        return (observed - n * self.q) / (self.p - self.q)

    def variance(self, n: int) -> float:
        """Estimator variance per domain item for ``n`` reports (low-frequency limit)."""
        return n * self.q * (1 - self.q) / (self.p - self.q) ** 2
