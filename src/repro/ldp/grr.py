"""Generalized Randomized Response (GRR), a.k.a. k-ary randomized response.

GRR is the frequency oracle the paper uses for frequent-length estimation and
frequent sub-shape estimation (Section III-C and IV-B, citing Wang et al.
USENIX Security 2017).  With a domain of size ``d`` the client reports the
true value with probability ``p = e^eps / (e^eps + d - 1)`` and any other fixed
value with probability ``q = 1 / (e^eps + d - 1)``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.prf import prf_integers, prf_uniforms
from repro.utils.rng import RngLike, ensure_rng


class GeneralizedRandomizedResponse(FrequencyOracle):
    """ε-LDP k-ary randomized response over an arbitrary finite domain.

    Parameters
    ----------
    epsilon:
        Privacy budget for a single report.
    domain:
        Sequence of hashable category labels (symbols, lengths, sub-shapes...).
    """

    def __init__(self, epsilon: float, domain: Sequence[Hashable]) -> None:
        super().__init__(epsilon, domain)
        d = self.domain_size
        e_eps = np.exp(self.epsilon)
        self.p = e_eps / (e_eps + d - 1)
        self.q = 1.0 / (e_eps + d - 1)

    def perturb(self, value: Hashable, rng: RngLike = None) -> Hashable:
        """Perturb a single true category into a reported category."""
        generator = ensure_rng(rng)
        true_index = self.index_of(value)
        if generator.random() < self.p:
            return self.domain[true_index]
        # Report one of the d-1 other values uniformly at random.
        offset = int(generator.integers(1, self.domain_size))
        return self.domain[(true_index + offset) % self.domain_size]

    def perturb_many(self, values: Sequence[Hashable], rng: RngLike = None) -> list[Hashable]:
        """Perturb a sequence of values, one report per value."""
        generator = ensure_rng(rng)
        return [self.perturb(v, generator) for v in values]

    def perturb_batch(self, values: Sequence[Hashable], rng: RngLike = None) -> list[Hashable]:
        """Vectorized :meth:`perturb_many`: two array draws instead of 2n scalar draws.

        Distributionally identical to the scalar loop but orders of magnitude
        faster for large batches (see ``benchmarks/test_service_throughput.py``).
        """
        generator = ensure_rng(rng)
        indices = np.fromiter(
            (self.index_of(v) for v in values), dtype=np.int64, count=len(values)
        )
        reported = self._perturb_indices(
            indices,
            generator.random(indices.size),
            generator.integers(1, self.domain_size, size=indices.size),
        )
        return [self.domain[i] for i in reported]

    def _perturb_indices(
        self, indices: np.ndarray, uniforms: np.ndarray, offsets: np.ndarray
    ) -> np.ndarray:
        """Apply GRR to index-encoded values given pre-drawn randomness."""
        return np.where(
            uniforms < self.p, indices, (indices + offsets) % self.domain_size
        ).astype(np.int64)

    def encode_batch(self, indices: np.ndarray, user_ids: np.ndarray, key: int) -> np.ndarray:
        """Perturb index-encoded values with PRF randomness keyed per user.

        This is the collection-service client hot path: each user's report is
        a pure function of ``(key, user id, true index)``, so encoding a
        population in any batch partition yields the same reports.
        """
        indices = np.asarray(indices, dtype=np.int64)
        return self._perturb_indices(
            indices,
            prf_uniforms(key, user_ids, slot=0),
            prf_integers(key, user_ids, self.domain_size - 1, slot=1) + 1,
        )

    def aggregate_batch(self, reported_indices: np.ndarray) -> np.ndarray:
        """Observed report counts per domain index (int64, shard-mergeable by +)."""
        return np.bincount(
            np.asarray(reported_indices, dtype=np.int64), minlength=self.domain_size
        ).astype(np.int64)

    def estimate_counts_from_observed(self, observed: np.ndarray, n_reports: int) -> np.ndarray:
        """Unbiased estimates from pre-aggregated observed counts."""
        return (np.asarray(observed, dtype=float) - n_reports * self.q) / (self.p - self.q)

    def estimate_counts(self, reports: Sequence[Hashable]) -> np.ndarray:
        """Unbiased count estimates: ``(observed - n*q) / (p - q)``."""
        reports = list(reports)
        observed = np.zeros(self.domain_size, dtype=float)
        for report in reports:
            observed[self.index_of(report)] += 1.0
        return self.estimate_counts_from_observed(observed, len(reports))

    def variance(self, n: int) -> float:
        """Estimator variance per domain item for ``n`` reports (low-frequency limit)."""
        return n * self.q * (1 - self.q) / (self.p - self.q) ** 2
