"""Numeric value-perturbation mechanisms under LDP.

These are the building blocks of the PatternLDP competitor: once PatternLDP
has sampled the "remarkable" points of a time series and allocated a share of
the privacy budget to each, every sampled value is perturbed with a bounded
ε-LDP mechanism.  We provide three standard choices:

* :class:`LaplaceMechanism` — Laplace noise calibrated to the value range
  (ε-DP in the local model when values are clipped to the range);
* :class:`PiecewiseMechanism` — the Piecewise Mechanism of Wang et al.
  (ICDE 2019) for mean estimation of values in ``[-1, 1]``;
* :class:`DuchiMechanism` — Duchi et al.'s binary mechanism for ``[-1, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.ldp.base import PerturbationMechanism
from repro.utils.rng import RngLike, ensure_rng


class LaplaceMechanism(PerturbationMechanism):
    """Laplace perturbation of a bounded real value.

    The value is clipped into ``[low, high]`` and Laplace noise with scale
    ``(high - low) / epsilon`` is added, which satisfies ε-LDP for values in
    the declared range.
    """

    def __init__(self, epsilon: float, low: float = -1.0, high: float = 1.0) -> None:
        super().__init__(epsilon)
        if not high > low:
            raise ValueError(f"high must exceed low, got low={low}, high={high}")
        self.low = float(low)
        self.high = float(high)
        self.scale = (self.high - self.low) / self.epsilon

    def perturb(self, value: float, rng: RngLike = None) -> float:
        generator = ensure_rng(rng)
        clipped = float(np.clip(value, self.low, self.high))
        return clipped + float(generator.laplace(0.0, self.scale))


class PiecewiseMechanism(PerturbationMechanism):
    """Piecewise Mechanism (PM) for a single value in ``[-1, 1]``.

    The output domain is ``[-C, C]`` with ``C = (e^(eps/2) + 1) / (e^(eps/2) - 1)``.
    The estimate is unbiased and has lower variance than Laplace for
    moderate-to-large ε, which is why PatternLDP-style mechanisms favour it.
    """

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        e_half = np.exp(self.epsilon / 2.0)
        self.C = (e_half + 1.0) / (e_half - 1.0)
        self._p_high = (e_half - 1.0) / (2.0 * e_half + 2.0) * (self.C + 1.0)

    def perturb(self, value: float, rng: RngLike = None) -> float:
        generator = ensure_rng(rng)
        t = float(np.clip(value, -1.0, 1.0))
        e_half = np.exp(self.epsilon / 2.0)
        left = (self.C + 1.0) / 2.0 * t - (self.C - 1.0) / 2.0
        right = left + self.C - 1.0
        # Probability of reporting from the high-density central interval.
        p_center = e_half / (e_half + 1.0)
        if generator.random() < p_center:
            return float(generator.uniform(left, right))
        # Otherwise sample from the two low-density side intervals.
        length_left = left - (-self.C)
        length_right = self.C - right
        total = length_left + length_right
        if total <= 0:
            return float(generator.uniform(-self.C, self.C))
        if generator.random() < length_left / total:
            return float(generator.uniform(-self.C, left))
        return float(generator.uniform(right, self.C))


class DuchiMechanism(PerturbationMechanism):
    """Duchi et al.'s mechanism: reports one of two extreme values of ``[-1, 1]``."""

    def __init__(self, epsilon: float) -> None:
        super().__init__(epsilon)
        e_eps = np.exp(self.epsilon)
        self.magnitude = (e_eps + 1.0) / (e_eps - 1.0)

    def perturb(self, value: float, rng: RngLike = None) -> float:
        generator = ensure_rng(rng)
        t = float(np.clip(value, -1.0, 1.0))
        e_eps = np.exp(self.epsilon)
        p_positive = (e_eps - 1.0) / (2.0 * e_eps + 2.0) * t + 0.5
        if generator.random() < p_positive:
            return self.magnitude
        return -self.magnitude
