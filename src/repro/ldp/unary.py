"""Unary-encoding frequency oracles (SUE / OUE).

The paper's classification variant of PrivShape perturbs a user's
(candidate shape, class label) pair with Optimized Unary Encoding (OUE,
Wang et al. 2017) over ``c*k*k`` encoding cells (Section V-E).  Symmetric
Unary Encoding (SUE, basic RAPPOR) is provided as well for completeness and
for ablation studies.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.ldp.base import FrequencyOracle
from repro.utils.prf import prf_uniform_matrix
from repro.utils.rng import RngLike, ensure_rng


class UnaryEncoding(FrequencyOracle):
    """Unary-encoding frequency oracle.

    The true category is one-hot encoded into a bit vector of length
    ``domain_size``; each bit is then flipped independently.  With
    ``optimized=True`` (OUE) the keep/flip probabilities are
    ``p = 1/2`` and ``q = 1 / (e^eps + 1)``, which minimizes estimator
    variance.  With ``optimized=False`` (SUE) the symmetric probabilities
    ``p = e^(eps/2) / (e^(eps/2) + 1)`` and ``q = 1 - p`` are used.
    """

    def __init__(
        self,
        epsilon: float,
        domain: Sequence[Hashable],
        optimized: bool = True,
    ) -> None:
        super().__init__(epsilon, domain)
        self.optimized = bool(optimized)
        if self.optimized:
            self.p = 0.5
            self.q = 1.0 / (np.exp(self.epsilon) + 1.0)
        else:
            e_half = np.exp(self.epsilon / 2.0)
            self.p = e_half / (e_half + 1.0)
            self.q = 1.0 / (e_half + 1.0)

    def perturb(self, value: Hashable, rng: RngLike = None) -> np.ndarray:
        """Return a perturbed bit vector (dtype ``uint8``) for the true value."""
        generator = ensure_rng(rng)
        true_index = self.index_of(value)
        random_draws = generator.random(self.domain_size)
        bits = (random_draws < self.q).astype(np.uint8)
        bits[true_index] = np.uint8(generator.random() < self.p)
        return bits

    def perturb_batch(self, values: Sequence[Hashable], rng: RngLike = None) -> np.ndarray:
        """Vectorized batch perturbation: one ``(n, d)`` draw instead of n loops.

        Returns the stacked perturbed bit vectors, one row per value.
        """
        generator = ensure_rng(rng)
        indices = np.fromiter(
            (self.index_of(v) for v in values), dtype=np.int64, count=len(values)
        )
        return self._perturb_indices(
            indices, generator.random((indices.size, self.domain_size))
        )

    def _perturb_indices(self, indices: np.ndarray, uniforms: np.ndarray) -> np.ndarray:
        """Perturb one-hot rows given a pre-drawn uniform matrix.

        Every bit compares its own uniform against ``q``; the true-cell bit
        compares the same uniform against ``p`` instead, which is the same
        Bernoulli marginal as drawing a dedicated uniform for it.
        """
        bits = (uniforms < self.q).astype(np.uint8)
        rows = np.arange(indices.size)
        bits[rows, indices] = (uniforms[rows, indices] < self.p).astype(np.uint8)
        return bits

    def encode_batch(self, indices: np.ndarray, user_ids: np.ndarray, key: int) -> np.ndarray:
        """PRF-keyed batch of perturbed bit vectors, batch-partition invariant."""
        indices = np.asarray(indices, dtype=np.int64)
        return self._perturb_indices(
            indices, prf_uniform_matrix(key, user_ids, self.domain_size)
        )

    def aggregate_batch(self, bits: np.ndarray) -> np.ndarray:
        """Observed 1-bit counts per cell (int64, shard-mergeable by +)."""
        return np.asarray(bits, dtype=np.int64).sum(axis=0)

    def estimate_counts_from_observed(self, observed: np.ndarray, n_reports: int) -> np.ndarray:
        """Unbiased estimates from pre-aggregated per-cell 1-bit counts."""
        return (np.asarray(observed, dtype=float) - n_reports * self.q) / (self.p - self.q)

    def estimate_counts(self, reports: Sequence[np.ndarray]) -> np.ndarray:
        """Unbiased counts from a stack of perturbed bit vectors."""
        reports = list(reports)
        n = len(reports)
        if n == 0:
            return np.zeros(self.domain_size, dtype=float)
        stacked = np.asarray(reports, dtype=float)
        if stacked.shape != (n, self.domain_size):
            raise ValueError(
                f"expected reports of shape ({n}, {self.domain_size}), got {stacked.shape}"
            )
        return self.estimate_counts_from_observed(stacked.sum(axis=0), n)

    def variance(self, n: int) -> float:
        """Estimator variance per domain item for ``n`` reports (low-frequency limit)."""
        return n * self.q * (1 - self.q) / (self.p - self.q) ** 2
