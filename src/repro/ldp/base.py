"""Abstract interfaces shared by the LDP mechanisms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.exceptions import DomainError
from repro.utils.rng import RngLike
from repro.utils.validation import check_epsilon


class PerturbationMechanism(ABC):
    """Base class for any ε-LDP mechanism.

    Sub-classes store their privacy budget in :attr:`epsilon` and implement
    :meth:`perturb`.  The type of the value being perturbed is
    mechanism-specific (a category, a bit vector, a real number, ...).
    """

    def __init__(self, epsilon: float) -> None:
        self.epsilon = check_epsilon(epsilon)

    @abstractmethod
    def perturb(self, value, rng: RngLike = None):
        """Return a randomized version of ``value`` satisfying ε-LDP."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(epsilon={self.epsilon})"


class FrequencyOracle(PerturbationMechanism):
    """Base class for LDP frequency oracles over a finite categorical domain.

    A frequency oracle supports two operations:

    * client side: :meth:`perturb` a single true category into a report;
    * server side: :meth:`estimate_frequencies` / :meth:`estimate_counts`
      aggregate a collection of reports into unbiased frequency estimates for
      every category in the domain.
    """

    def __init__(self, epsilon: float, domain: Sequence[Hashable]) -> None:
        super().__init__(epsilon)
        items = list(domain)
        if len(items) < 2:
            raise DomainError(f"domain must contain at least 2 items, got {len(items)}")
        if len(set(items)) != len(items):
            raise DomainError("domain must not contain duplicate items")
        self.domain: list[Hashable] = items
        self._index: dict[Hashable, int] = {item: i for i, item in enumerate(items)}

    @property
    def domain_size(self) -> int:
        """Number of categories in the perturbation domain."""
        return len(self.domain)

    def in_domain(self, value: Hashable) -> bool:
        """True when ``value`` is part of the perturbation domain."""
        return value in self._index

    def index_of(self, value: Hashable) -> int:
        """Return the domain index of ``value`` or raise :class:`DomainError`."""
        try:
            return self._index[value]
        except KeyError as exc:
            raise DomainError(f"value {value!r} is not in the perturbation domain") from exc

    @abstractmethod
    def estimate_counts(self, reports: Sequence) -> np.ndarray:
        """Return unbiased estimated counts for every domain item (ordered)."""

    def estimate_frequencies(self, reports: Sequence) -> np.ndarray:
        """Return unbiased estimated relative frequencies for the domain."""
        reports = list(reports)
        counts = self.estimate_counts(reports)
        n = max(len(reports), 1)
        return counts / n

    def estimate_map(self, reports: Sequence) -> Mapping[Hashable, float]:
        """Return ``{domain item: estimated count}`` for every domain item."""
        counts = self.estimate_counts(list(reports))
        return {item: float(count) for item, count in zip(self.domain, counts)}
