"""Private shapelet discovery on top of PrivShape (the paper's stated future work).

A *shapelet* is a short subsequence whose distance to a series discriminates
between classes; classic discovery enumerates all subsequences of a training
set, which is impossible when the training series are private.  The extension
implemented here follows the paper's suggestion: the per-class frequent shapes
extracted by PrivShape under user-level LDP serve as the (private) candidate
pool, every window of their numeric reconstruction is a shapelet candidate,
and candidate quality is scored by information gain on a small *public*
evaluation set (public/held-out labelled data is the standard assumption in
shapelet evaluation; the sensitive population itself is only ever touched
through the ε-LDP extraction).

This module is now a thin compatibility shim: the per-window Python loops it
used to contain live on as vectorized kernels in
:mod:`repro.tasks.shapelet.transform` (stride-tricks subsequence extraction,
batched candidate × series distance matrices) and
:mod:`repro.tasks.shapelet.discovery` (cumulative-count information gain).
The public surface here is unchanged and result-compatible:

* :func:`sliding_min_distance` — re-exported vectorized kernel, bit-compatible
  with the old scalar loop in its default form.  The historical docstring
  claimed z-normalized distances but the implementation never normalized;
  pass ``normalize=True`` for actual z-normalized matching, which applies the
  documented σ_min floor (:data:`repro.tasks.shapelet.transform.SIGMA_MIN`) so
  constant/near-constant windows divide by 1.0 instead of ~0 and always yield
  finite distances;
* :func:`enumerate_candidates` — windows of the reconstructed frequent shapes;
* :func:`best_information_gain` — optimal-threshold information gain of a
  candidate's distance profile;
* :class:`PrivateShapeletDiscovery` — end-to-end discovery pipeline;
* :class:`ShapeletTransformClassifier` — a shapelet-transform classifier that
  feeds min-distances to the discovered shapelets into the library's random
  forest.

New code should target ``task="shapelet"``
(:mod:`repro.tasks.shapelet`) instead, which runs the same pipeline through
the execution backends with RunResult artifacts and telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.core.trie import Shape
from repro.datasets.base import LabeledDataset
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.mining.forest import RandomForestClassifier
from repro.sax.compressive import CompressiveSAX
from repro.tasks.shapelet.discovery import (
    enumerate_windows,
    information_gain,
)
from repro.tasks.shapelet.transform import (
    SIGMA_MIN,
    min_distance_matrix,
    sliding_min_distance,
)
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "SIGMA_MIN",
    "Shapelet",
    "sliding_min_distance",
    "enumerate_candidates",
    "best_information_gain",
    "PrivateShapeletDiscovery",
    "ShapeletTransformClassifier",
]


@dataclass(frozen=True)
class Shapelet:
    """A discovered shapelet: numeric values, provenance, and quality score."""

    values: tuple[float, ...]
    source_shape: Shape
    source_class: int
    gain: float = 0.0
    threshold: float = 0.0

    @property
    def length(self) -> int:
        return len(self.values)


def enumerate_candidates(
    shapes_by_class: dict[int, list[Shape]],
    alphabet_size: int,
    min_length: int = 2,
    max_length: int | None = None,
    points_per_symbol: int = 8,
) -> list[Shapelet]:
    """Turn per-class frequent shapes into numeric shapelet candidates.

    Every contiguous window of ``min_length .. max_length`` symbols of every
    extracted shape becomes one candidate, reconstructed onto
    ``points_per_symbol`` numeric points per symbol.  Duplicates (same class
    and values) keep their first occurrence, in the historical enumeration
    order: classes in dict order, then shapes, then window length ascending,
    then start position.
    """
    shapes: list[Shape] = []
    labels: list[int] = []
    for label, class_shapes in shapes_by_class.items():
        for shape in class_shapes:
            shapes.append(tuple(shape))
            labels.append(int(label))
    return [
        Shapelet(
            values=candidate.values,
            source_shape=tuple(candidate.source_shape),
            source_class=int(candidate.label),
        )
        for candidate in enumerate_windows(
            shapes,
            alphabet_size,
            min_length=min_length,
            max_length=max_length,
            points_per_symbol=points_per_symbol,
            labels=labels,
        )
    ]


def best_information_gain(distances, labels) -> tuple[float, float]:
    """Best information gain over all distance thresholds, and that threshold.

    ``distances[i]`` is the shapelet's distance to series ``i`` with class
    ``labels[i]``; the returned threshold splits the series into "close" and
    "far" groups.  Delegates to the vectorized
    :func:`repro.tasks.shapelet.discovery.information_gain` (same tie and
    skip-equal-neighbours semantics as the scalar loop it replaced).
    """
    return information_gain(distances, labels)


@dataclass
class PrivateShapeletDiscovery:
    """Discover discriminative shapelets from a private user population.

    Parameters
    ----------
    epsilon:
        User-level LDP budget for the PrivShape extraction.
    alphabet_size, segment_length:
        Compressive-SAX parameters applied on every user's device.
    top_k_shapes:
        Number of frequent shapes extracted per class.
    n_shapelets:
        Number of shapelets returned after information-gain ranking.
    min_length / max_length:
        Candidate window sizes, in symbols.
    """

    epsilon: float = 4.0
    alphabet_size: int = 4
    segment_length: int = 10
    metric: str = "sed"
    top_k_shapes: int = 3
    n_shapelets: int = 5
    min_length: int = 2
    max_length: int | None = None
    candidate_factor: int = 3
    shapelets_: list[Shapelet] = field(default_factory=list, init=False)

    def discover(
        self,
        private_dataset: LabeledDataset,
        public_dataset: LabeledDataset,
        rng: RngLike = None,
    ) -> list[Shapelet]:
        """Run the full pipeline and return the top shapelets.

        ``private_dataset`` is only accessed through the ε-LDP PrivShape
        extraction; ``public_dataset`` (a small labelled reference set) is used
        to score candidate quality.
        """
        if len(public_dataset) == 0:
            raise EmptyDatasetError("public evaluation dataset must not be empty")
        generator = ensure_rng(rng)
        transformer = CompressiveSAX(
            alphabet_size=self.alphabet_size, segment_length=self.segment_length
        )
        sequences = transformer.transform_dataset(private_dataset.series)
        lengths = sorted(len(s) for s in sequences)
        length_high = max(2, lengths[int(0.9 * (len(lengths) - 1))])
        config = PrivShapeConfig(
            epsilon=self.epsilon,
            top_k=self.top_k_shapes,
            alphabet_size=self.alphabet_size,
            metric=self.metric,
            length_high=length_high,
            candidate_factor=self.candidate_factor,
        )
        extraction = PrivShape(config).extract_labeled(
            sequences,
            private_dataset.labels,
            n_classes=private_dataset.n_classes,
            rng=generator,
        )

        candidates = enumerate_candidates(
            extraction.shapes_by_class,
            alphabet_size=self.alphabet_size,
            min_length=self.min_length,
            max_length=self.max_length,
        )
        if not candidates:
            raise EmptyDatasetError("no shapelet candidates were generated")

        # One batched candidate × series distance matrix replaces the old
        # per-candidate per-series scalar loop.
        matrix = min_distance_matrix(
            public_dataset.series,
            [np.asarray(candidate.values) for candidate in candidates],
        )
        labels = public_dataset.labels
        scored: list[Shapelet] = []
        for column, candidate in enumerate(candidates):
            gain, threshold = information_gain(matrix[:, column], labels)
            scored.append(
                Shapelet(
                    values=candidate.values,
                    source_shape=candidate.source_shape,
                    source_class=candidate.source_class,
                    gain=gain,
                    threshold=threshold,
                )
            )
        scored.sort(key=lambda s: (-s.gain, s.length))
        self.shapelets_ = scored[: self.n_shapelets]
        return self.shapelets_


@dataclass
class ShapeletTransformClassifier:
    """Shapelet-transform classifier: min-distance features + random forest."""

    shapelets: Sequence[Shapelet]
    n_estimators: int = 20
    rng: RngLike = None
    _forest: RandomForestClassifier | None = field(default=None, init=False, repr=False)

    def _features(self, dataset) -> np.ndarray:
        return min_distance_matrix(
            list(dataset),
            [np.asarray(shapelet.values) for shapelet in self.shapelets],
        )

    def fit(self, series_list, labels) -> "ShapeletTransformClassifier":
        """Fit the forest on the shapelet-distance features of labelled series."""
        if not list(self.shapelets):
            raise EmptyDatasetError("cannot fit a classifier with no shapelets")
        features = self._features(series_list)
        self._forest = RandomForestClassifier(n_estimators=self.n_estimators, rng=self.rng)
        self._forest.fit(features, np.asarray(labels, dtype=int))
        return self

    def predict(self, series_list) -> np.ndarray:
        """Predict class labels for raw series."""
        if self._forest is None:
            raise NotFittedError("ShapeletTransformClassifier must be fitted before predicting")
        return self._forest.predict(self._features(series_list))
