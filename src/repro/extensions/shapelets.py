"""Private shapelet discovery on top of PrivShape (the paper's stated future work).

A *shapelet* is a short subsequence whose distance to a series discriminates
between classes; classic discovery enumerates all subsequences of a training
set, which is impossible when the training series are private.  The extension
implemented here follows the paper's suggestion: the per-class frequent shapes
extracted by PrivShape under user-level LDP serve as the (private) candidate
pool, every window of their numeric reconstruction is a shapelet candidate,
and candidate quality is scored by information gain on a small *public*
evaluation set (public/held-out labelled data is the standard assumption in
shapelet evaluation; the sensitive population itself is only ever touched
through the ε-LDP extraction).

The module provides:

* :func:`enumerate_candidates` — windows of the reconstructed frequent shapes;
* :func:`best_information_gain` — optimal-threshold information gain of a
  candidate's distance profile;
* :class:`PrivateShapeletDiscovery` — end-to-end discovery pipeline;
* :class:`ShapeletTransformClassifier` — a shapelet-transform classifier that
  feeds min-distances to the discovered shapelets into the library's random
  forest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.core.trie import Shape
from repro.datasets.base import LabeledDataset
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.mining.forest import RandomForestClassifier
from repro.sax.compressive import CompressiveSAX
from repro.sax.reconstruction import symbols_to_values
from repro.utils.rng import RngLike, ensure_rng


@dataclass(frozen=True)
class Shapelet:
    """A discovered shapelet: numeric values, provenance, and quality score."""

    values: tuple[float, ...]
    source_shape: Shape
    source_class: int
    gain: float = 0.0
    threshold: float = 0.0

    @property
    def length(self) -> int:
        return len(self.values)


def sliding_min_distance(series, shapelet_values) -> float:
    """Minimum z-normalized Euclidean distance of a shapelet over all windows of ``series``.

    The series is compared window by window; when the series is shorter than
    the shapelet the whole series is compared against the shapelet's prefix.
    """
    series = np.asarray(series, dtype=float)
    values = np.asarray(shapelet_values, dtype=float)
    length = values.size
    if series.size < length:
        return float(np.linalg.norm(series - values[: series.size]) / max(series.size, 1))
    best = np.inf
    for start in range(series.size - length + 1):
        window = series[start : start + length]
        distance = float(np.linalg.norm(window - values))
        if distance < best:
            best = distance
    return best / length


def enumerate_candidates(
    shapes_by_class: dict[int, list[Shape]],
    alphabet_size: int,
    min_length: int = 2,
    max_length: int | None = None,
    points_per_symbol: int = 8,
) -> list[Shapelet]:
    """Turn per-class frequent shapes into numeric shapelet candidates.

    Every contiguous window of ``min_length .. max_length`` symbols of every
    extracted shape becomes one candidate, reconstructed onto
    ``points_per_symbol`` numeric points per symbol.
    """
    candidates: list[Shapelet] = []
    seen: set[tuple[int, tuple[float, ...]]] = set()
    for label, shapes in shapes_by_class.items():
        for shape in shapes:
            shape = tuple(shape)
            upper = max_length or len(shape)
            for window_length in range(min_length, min(upper, len(shape)) + 1):
                for start in range(len(shape) - window_length + 1):
                    window = shape[start : start + window_length]
                    values = tuple(
                        symbols_to_values(window, alphabet_size, repeat=points_per_symbol)
                    )
                    key = (int(label), values)
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(
                        Shapelet(values=values, source_shape=shape, source_class=int(label))
                    )
    return candidates


def _entropy(labels: np.ndarray) -> float:
    if labels.size == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / labels.size
    return float(-np.sum(proportions * np.log2(proportions)))


def best_information_gain(distances, labels) -> tuple[float, float]:
    """Best information gain over all distance thresholds, and that threshold.

    ``distances[i]`` is the shapelet's distance to series ``i`` with class
    ``labels[i]``; the returned threshold splits the series into "close" and
    "far" groups.
    """
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    if distances.size != labels.size or distances.size == 0:
        raise ValueError("distances and labels must be non-empty and equally long")
    order = np.argsort(distances)
    sorted_distances = distances[order]
    sorted_labels = labels[order]
    total_entropy = _entropy(sorted_labels)

    best_gain, best_threshold = 0.0, float(sorted_distances[0])
    for split in range(1, distances.size):
        if np.isclose(sorted_distances[split], sorted_distances[split - 1]):
            continue
        left = sorted_labels[:split]
        right = sorted_labels[split:]
        weighted = (left.size * _entropy(left) + right.size * _entropy(right)) / labels.size
        gain = total_entropy - weighted
        if gain > best_gain:
            best_gain = gain
            best_threshold = float((sorted_distances[split] + sorted_distances[split - 1]) / 2.0)
    return best_gain, best_threshold


@dataclass
class PrivateShapeletDiscovery:
    """Discover discriminative shapelets from a private user population.

    Parameters
    ----------
    epsilon:
        User-level LDP budget for the PrivShape extraction.
    alphabet_size, segment_length:
        Compressive-SAX parameters applied on every user's device.
    top_k_shapes:
        Number of frequent shapes extracted per class.
    n_shapelets:
        Number of shapelets returned after information-gain ranking.
    min_length / max_length:
        Candidate window sizes, in symbols.
    """

    epsilon: float = 4.0
    alphabet_size: int = 4
    segment_length: int = 10
    metric: str = "sed"
    top_k_shapes: int = 3
    n_shapelets: int = 5
    min_length: int = 2
    max_length: int | None = None
    candidate_factor: int = 3
    shapelets_: list[Shapelet] = field(default_factory=list, init=False)

    def discover(
        self,
        private_dataset: LabeledDataset,
        public_dataset: LabeledDataset,
        rng: RngLike = None,
    ) -> list[Shapelet]:
        """Run the full pipeline and return the top shapelets.

        ``private_dataset`` is only accessed through the ε-LDP PrivShape
        extraction; ``public_dataset`` (a small labelled reference set) is used
        to score candidate quality.
        """
        if len(public_dataset) == 0:
            raise EmptyDatasetError("public evaluation dataset must not be empty")
        generator = ensure_rng(rng)
        transformer = CompressiveSAX(
            alphabet_size=self.alphabet_size, segment_length=self.segment_length
        )
        sequences = transformer.transform_dataset(private_dataset.series)
        lengths = sorted(len(s) for s in sequences)
        length_high = max(2, lengths[int(0.9 * (len(lengths) - 1))])
        config = PrivShapeConfig(
            epsilon=self.epsilon,
            top_k=self.top_k_shapes,
            alphabet_size=self.alphabet_size,
            metric=self.metric,
            length_high=length_high,
            candidate_factor=self.candidate_factor,
        )
        extraction = PrivShape(config).extract_labeled(
            sequences,
            private_dataset.labels,
            n_classes=private_dataset.n_classes,
            rng=generator,
        )

        candidates = enumerate_candidates(
            extraction.shapes_by_class,
            alphabet_size=self.alphabet_size,
            min_length=self.min_length,
            max_length=self.max_length,
        )
        if not candidates:
            raise EmptyDatasetError("no shapelet candidates were generated")

        scored: list[Shapelet] = []
        labels = public_dataset.labels
        for candidate in candidates:
            distances = [
                sliding_min_distance(series, candidate.values) for series in public_dataset.series
            ]
            gain, threshold = best_information_gain(distances, labels)
            scored.append(
                Shapelet(
                    values=candidate.values,
                    source_shape=candidate.source_shape,
                    source_class=candidate.source_class,
                    gain=gain,
                    threshold=threshold,
                )
            )
        scored.sort(key=lambda s: (-s.gain, s.length))
        self.shapelets_ = scored[: self.n_shapelets]
        return self.shapelets_


@dataclass
class ShapeletTransformClassifier:
    """Shapelet-transform classifier: min-distance features + random forest."""

    shapelets: Sequence[Shapelet]
    n_estimators: int = 20
    rng: RngLike = None
    _forest: RandomForestClassifier | None = field(default=None, init=False, repr=False)

    def _features(self, dataset) -> np.ndarray:
        return np.array(
            [
                [sliding_min_distance(series, shapelet.values) for shapelet in self.shapelets]
                for series in dataset
            ],
            dtype=float,
        )

    def fit(self, series_list, labels) -> "ShapeletTransformClassifier":
        """Fit the forest on the shapelet-distance features of labelled series."""
        if not list(self.shapelets):
            raise EmptyDatasetError("cannot fit a classifier with no shapelets")
        features = self._features(series_list)
        self._forest = RandomForestClassifier(n_estimators=self.n_estimators, rng=self.rng)
        self._forest.fit(features, np.asarray(labels, dtype=int))
        return self

    def predict(self, series_list) -> np.ndarray:
        """Predict class labels for raw series."""
        if self._forest is None:
            raise NotFittedError("ShapeletTransformClassifier must be fitted before predicting")
        return self._forest.predict(self._features(series_list))
