"""Extensions beyond the paper's core evaluation.

The paper's conclusion names *shapelet discovery* as future work; this package
implements it on top of the PrivShape machinery: the privately extracted
per-class frequent shapes act as shapelet candidates, which are then scored by
information gain and used in a shapelet-transform classifier.
"""

from repro.extensions.shapelets import (
    PrivateShapeletDiscovery,
    Shapelet,
    ShapeletTransformClassifier,
    best_information_gain,
    enumerate_candidates,
)

__all__ = [
    "Shapelet",
    "enumerate_candidates",
    "best_information_gain",
    "PrivateShapeletDiscovery",
    "ShapeletTransformClassifier",
]
