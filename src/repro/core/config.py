"""Configuration objects for the baseline mechanism and PrivShape."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.sax.breakpoints import symbol_alphabet
from repro.utils.validation import (
    check_epsilon,
    check_open_fraction,
    check_optional_threshold,
    check_population_fractions,
    check_positive_int,
)


@dataclass
class MechanismConfig:
    """Parameters shared by the baseline mechanism and PrivShape.

    Attributes
    ----------
    epsilon:
        User-level privacy budget ε.
    top_k:
        Number of frequent shapes ``k`` to output.
    alphabet_size:
        SAX symbol size ``t``.
    metric:
        Distance metric used in the Exponential-Mechanism score and in
        post-processing ("dtw", "sed", "euclidean", "hausdorff").
    length_low / length_high:
        Clipping range ``[ℓ_low, ℓ_high]`` of the compressed sequence length
        used by frequent-length estimation.
    """

    epsilon: float = 1.0
    top_k: int = 3
    alphabet_size: int = 4
    metric: str = "dtw"
    length_low: int = 1
    length_high: int = 10
    rng_seed: int | None = None

    def __post_init__(self) -> None:
        self.epsilon = check_epsilon(self.epsilon)
        self.top_k = check_positive_int(self.top_k, "top_k")
        self.alphabet_size = check_positive_int(self.alphabet_size, "alphabet_size")
        self.length_low = check_positive_int(self.length_low, "length_low")
        self.length_high = check_positive_int(self.length_high, "length_high")
        if self.length_low > self.length_high:
            raise ConfigurationError(
                f"length_low ({self.length_low}) must not exceed length_high ({self.length_high})"
            )
        if self.alphabet_size < 2:
            raise ConfigurationError("alphabet_size must be at least 2")

    @property
    def alphabet(self) -> list[str]:
        """The SAX symbols corresponding to :attr:`alphabet_size`."""
        return symbol_alphabet(self.alphabet_size)


@dataclass
class BaselineConfig(MechanismConfig):
    """Configuration of the baseline mechanism (Algorithm 1).

    Attributes
    ----------
    prune_threshold:
        Absolute frequency threshold ``N`` used to prune trie candidates at
        every level.  ``None`` means "2% of the per-level user count", which
        matches the paper's N = 100 at its population scale.
    length_population_fraction:
        Fraction of users assigned to frequent-length estimation (Pa); the
        rest (Pb) drive trie expansion.
    max_candidates:
        Hard cap on the number of candidates kept per level, protecting the
        exponential worst case on small populations.
    """

    prune_threshold: float | None = None
    length_population_fraction: float = 0.02
    max_candidates: int = 512

    def __post_init__(self) -> None:
        super().__post_init__()
        self.length_population_fraction = check_open_fraction(
            self.length_population_fraction, "length_population_fraction"
        )
        self.max_candidates = check_positive_int(self.max_candidates, "max_candidates")
        self.prune_threshold = check_optional_threshold(
            self.prune_threshold, "prune_threshold"
        )


@dataclass
class PrivShapeConfig(MechanismConfig):
    """Configuration of PrivShape (Algorithm 2).

    Attributes
    ----------
    candidate_factor:
        The constant ``c`` (≥ 2 in the paper, default 3): every pruning step
        keeps the top ``c·k`` candidates / sub-shapes.
    population_fractions:
        Fractions of the user population assigned to (Pa, Pb, Pc, Pd) =
        (length estimation, sub-shape estimation, trie expansion, two-level
        refinement).  Defaults to the paper's (0.02, 0.08, 0.7, 0.2).
    refinement:
        Whether the two-level refinement (Pd re-estimation) is applied;
        disabling it is an ablation knob.
    postprocess:
        Whether the final similar-shape de-duplication (clustering of the
        candidate set into k groups) is applied.
    """

    candidate_factor: int = 3
    population_fractions: tuple[float, float, float, float] = (0.02, 0.08, 0.7, 0.2)
    refinement: bool = True
    postprocess: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        self.candidate_factor = check_positive_int(self.candidate_factor, "candidate_factor")
        self.population_fractions = check_population_fractions(self.population_fractions)

    @property
    def candidate_budget(self) -> int:
        """The ``c·k`` candidate count kept by every pruning step."""
        return self.candidate_factor * self.top_k
