"""Trie of candidate shapes.

The server grows a trie whose nodes are prefixes of candidate shapes
(sequences of SAX symbols with no consecutive repetition, since Compressive
SAX removes repeats).  Each node stores the estimated frequency collected from
the users assigned to its level.  Both the baseline mechanism and PrivShape
drive their level-by-level candidate generation through this structure; it
also exposes the per-level perturbation-domain sizes used in the utility
analysis (Theorem 4) benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import DomainError

Shape = tuple[str, ...]


@dataclass
class TrieNode:
    """A trie node: the shape prefix it represents and its estimated frequency."""

    shape: Shape
    frequency: float = 0.0
    pruned: bool = False

    @property
    def level(self) -> int:
        """Depth of the node; the root (empty shape) is level 0."""
        return len(self.shape)

    @property
    def last_symbol(self) -> str | None:
        """Final symbol of the prefix, or ``None`` for the root."""
        return self.shape[-1] if self.shape else None


class ShapeTrie:
    """Trie over shapes (symbol sequences without consecutive repeats).

    Parameters
    ----------
    alphabet:
        The SAX symbol alphabet, e.g. ``['a', 'b', 'c', 'd']``.
    """

    def __init__(self, alphabet: Sequence[str]) -> None:
        symbols = list(alphabet)
        if len(symbols) < 2:
            raise DomainError("alphabet must contain at least 2 symbols")
        if len(set(symbols)) != len(symbols):
            raise DomainError("alphabet must not contain duplicates")
        self.alphabet: list[str] = symbols
        self._nodes: dict[Shape, TrieNode] = {(): TrieNode(shape=())}

    # ------------------------------------------------------------------ basics

    def __contains__(self, shape: Sequence[str]) -> bool:
        return tuple(shape) in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def root(self) -> TrieNode:
        """The root node (empty shape)."""
        return self._nodes[()]

    def node(self, shape: Sequence[str]) -> TrieNode:
        """Return the node for ``shape`` or raise ``KeyError``."""
        return self._nodes[tuple(shape)]

    def add(self, shape: Sequence[str], frequency: float = 0.0) -> TrieNode:
        """Insert a shape (and any missing ancestors) and return its node."""
        shape = tuple(shape)
        for symbol in shape:
            if symbol not in self.alphabet:
                raise DomainError(f"symbol {symbol!r} is not in the trie alphabet")
        for i in range(1, len(shape)):
            if shape[i] == shape[i - 1]:
                raise DomainError(
                    f"shape {shape!r} repeats symbol {shape[i]!r} consecutively; "
                    "compressed shapes never do"
                )
        for prefix_length in range(1, len(shape)):
            prefix = shape[:prefix_length]
            if prefix not in self._nodes:
                self._nodes[prefix] = TrieNode(shape=prefix)
        node = self._nodes.get(shape)
        if node is None:
            node = TrieNode(shape=shape, frequency=frequency)
            self._nodes[shape] = node
        else:
            node.frequency = frequency if frequency else node.frequency
        return node

    def set_frequency(self, shape: Sequence[str], frequency: float) -> None:
        """Set the estimated frequency of an existing node (adding it if needed)."""
        shape = tuple(shape)
        if shape not in self._nodes:
            self.add(shape)
        self._nodes[shape].frequency = float(frequency)

    def increment(self, shape: Sequence[str], amount: float = 1.0) -> None:
        """Add ``amount`` to an existing node's frequency (adding the node if needed)."""
        shape = tuple(shape)
        if shape not in self._nodes:
            self.add(shape)
        self._nodes[shape].frequency += float(amount)

    # ------------------------------------------------------------- level views

    @property
    def height(self) -> int:
        """Deepest level present in the trie."""
        return max(node.level for node in self._nodes.values())

    def nodes_at_level(self, level: int, include_pruned: bool = False) -> list[TrieNode]:
        """All nodes at ``level`` (sorted by shape for determinism)."""
        nodes = [
            node
            for node in self._nodes.values()
            if node.level == level and (include_pruned or not node.pruned)
        ]
        return sorted(nodes, key=lambda n: n.shape)

    def shapes_at_level(self, level: int, include_pruned: bool = False) -> list[Shape]:
        """Shapes of all nodes at ``level``."""
        return [node.shape for node in self.nodes_at_level(level, include_pruned)]

    def domain_size_at_level(self, level: int) -> int:
        """Number of live (unpruned) candidates at ``level`` — the EM perturbation domain."""
        return len(self.nodes_at_level(level))

    def children(self, shape: Sequence[str]) -> list[TrieNode]:
        """Existing child nodes of ``shape``."""
        prefix = tuple(shape)
        return [
            node
            for node in self.nodes_at_level(len(prefix) + 1, include_pruned=True)
            if node.shape[: len(prefix)] == prefix
        ]

    # -------------------------------------------------------------- operations

    def possible_extensions(self, shape: Sequence[str]) -> list[str]:
        """Symbols a compressed shape can be extended with (anything but its last symbol)."""
        last = tuple(shape)[-1] if tuple(shape) else None
        return [symbol for symbol in self.alphabet if symbol != last]

    def expand(
        self,
        prefixes: Iterable[Sequence[str]],
        allowed_subshapes: Iterable[tuple[str, str]] | None = None,
    ) -> list[Shape]:
        """Expand each prefix by one symbol and add the children to the trie.

        Parameters
        ----------
        prefixes:
            Shapes at the current level to expand (typically the unpruned
            candidates).
        allowed_subshapes:
            When given (PrivShape's pruning), only the extensions whose
            ``(last symbol, new symbol)`` pair appears in this set are
            created.  When omitted (the baseline), all ``t - 1`` extensions
            are created (``t`` at the root).

        Returns the list of newly reachable child shapes, sorted.
        """
        allowed = set(allowed_subshapes) if allowed_subshapes is not None else None
        children: set[Shape] = set()
        for prefix in prefixes:
            prefix = tuple(prefix)
            last = prefix[-1] if prefix else None
            for symbol in self.possible_extensions(prefix):
                if allowed is not None and last is not None and (last, symbol) not in allowed:
                    continue
                child = prefix + (symbol,)
                self.add(child)
                children.add(child)
        return sorted(children)

    def prune_below_threshold(self, level: int, threshold: float) -> list[Shape]:
        """Mark nodes at ``level`` with frequency below ``threshold`` as pruned.

        Returns the surviving shapes.
        """
        survivors: list[Shape] = []
        for node in self.nodes_at_level(level, include_pruned=True):
            if node.frequency < threshold:
                node.pruned = True
            else:
                node.pruned = False
                survivors.append(node.shape)
        return survivors

    def prune_to_top(self, level: int, keep: int) -> list[Shape]:
        """Keep only the ``keep`` highest-frequency nodes at ``level``; prune the rest.

        Returns the surviving shapes ordered by decreasing frequency.
        """
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        nodes = self.nodes_at_level(level, include_pruned=True)
        ranked = sorted(nodes, key=lambda n: (-n.frequency, n.shape))
        survivors: list[Shape] = []
        for rank, node in enumerate(ranked):
            if rank < keep:
                node.pruned = False
                survivors.append(node.shape)
            else:
                node.pruned = True
        return survivors

    def top_shapes(self, level: int, k: int) -> list[tuple[Shape, float]]:
        """The ``k`` highest-frequency (shape, frequency) pairs at ``level``."""
        nodes = self.nodes_at_level(level)
        ranked = sorted(nodes, key=lambda n: (-n.frequency, n.shape))
        return [(node.shape, node.frequency) for node in ranked[:k]]

    def domain_sizes(self) -> dict[int, int]:
        """Perturbation-domain size per level — used by the Theorem 4 bench."""
        return {level: self.domain_size_at_level(level) for level in range(1, self.height + 1)}

    def export_carryover(self, decay: float = 0.5) -> list[tuple[Shape, float]]:
        """Export surviving shapes for seeding the next window's trie.

        Continual collection carries the previous window's candidate structure
        forward so early rounds don't re-pay for stable prefixes.  Every
        non-root, unpruned node is exported with its frequency multiplied by
        ``decay`` (0 < decay <= 1), so stale counts fade over successive
        windows instead of dominating fresh evidence.  Sorted by shape for
        deterministic replay.
        """
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        return sorted(
            (node.shape, node.frequency * decay)
            for node in self._nodes.values()
            if node.shape and not node.pruned
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShapeTrie(alphabet={self.alphabet}, nodes={len(self)}, height={self.height})"
        )
