"""The baseline mechanism (Algorithm 1 of the paper).

Pipeline: the population is split into Pa (frequent-length estimation) and Pb
(trie expansion).  The trie grows level by level; at every level the
candidates whose estimated frequency falls below a threshold are pruned, the
survivors are expanded to all possible next symbols, and a fresh group of Pb
users privately selects the closest expanded candidate with the Exponential
Mechanism.  The top-k frequent shapes are read off the leaf level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import BaselineConfig
from repro.core.length import estimate_frequent_length
from repro.core.refinement import assign_candidates_to_classes
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.selection import em_select_counts, oue_labeled_refine_counts
from repro.core.trie import Shape, ShapeTrie
from repro.exceptions import EmptyDatasetError
from repro.ldp.accounting import PrivacyAccountant
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sequences import chunk_evenly, split_population


@dataclass
class BaselineMechanism:
    """Trie-based frequent-shape extraction with threshold pruning (Algorithm 1).

    ``config`` is either a :class:`BaselineConfig` or a resolved
    :class:`~repro.api.spec.ExperimentSpec` (coerced on construction).
    """

    config: BaselineConfig

    def __post_init__(self) -> None:
        if not isinstance(self.config, BaselineConfig) and hasattr(
            self.config, "to_baseline_config"
        ):
            self.config = self.config.to_baseline_config()

    # ------------------------------------------------------------------ internals

    def _prune_threshold(self, per_level_users: int) -> float:
        """The frequency threshold N; defaults to 2% of the per-level user count."""
        if self.config.prune_threshold is not None:
            return float(self.config.prune_threshold)
        return 0.02 * per_level_users

    def _cap_for_expansion(self, survivors: list[Shape], trie: ShapeTrie) -> list[Shape]:
        """Limit the number of parents so the expanded level stays within max_candidates."""
        branching = max(len(self.config.alphabet) - 1, 1)
        max_parents = max(1, self.config.max_candidates // branching)
        if len(survivors) <= max_parents:
            return survivors
        ranked = sorted(
            survivors, key=lambda shape: (-trie.node(shape).frequency, shape)
        )
        return ranked[:max_parents]

    def _expand_and_estimate(
        self,
        trie: ShapeTrie,
        level: int,
        survivors: list[Shape],
        level_sequences: list[Shape],
        rng,
    ) -> None:
        """Expand ``survivors`` one level down and estimate child frequencies via EM."""
        children = trie.expand(survivors)
        if not children:
            return
        if level_sequences:
            counts = em_select_counts(
                level_sequences,
                children,
                epsilon=self.config.epsilon,
                metric=self.config.metric,
                alphabet_size=self.config.alphabet_size,
                rng=rng,
            )
            for child, count in counts.items():
                trie.set_frequency(child, count)

    # ------------------------------------------------------------------ extraction

    def extract(
        self, sequences: Sequence[Shape], rng: RngLike = None
    ) -> ShapeExtractionResult:
        """Extract the top-k frequent shapes from users' compressed sequences.

        ``sequences`` holds one Compressive-SAX sequence per user; the entire
        mechanism consumes a single user-level budget ε because every user
        reports exactly once.
        """
        sequences = [tuple(s) for s in sequences]
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)
        accountant = PrivacyAccountant(target_epsilon=self.config.epsilon)

        # Split the population into Pa (length estimation) and Pb (trie expansion).
        fraction_a = self.config.length_population_fraction
        population_a, population_b = split_population(
            len(sequences), [fraction_a, 1.0 - fraction_a], rng=generator
        )

        estimated_length = estimate_frequent_length(
            [len(sequences[i]) for i in population_a],
            epsilon=self.config.epsilon,
            length_low=self.config.length_low,
            length_high=self.config.length_high,
            rng=generator,
        )
        accountant.spend("Pa", self.config.epsilon, mechanism="GRR length estimation")

        trie = ShapeTrie(self.config.alphabet)
        # Randomly divide Pb into one group per level (shuffle first so groups
        # stay class-balanced even for class-ordered datasets).
        level_groups = chunk_evenly(
            generator.permutation(np.asarray(population_b)), max(estimated_length, 1)
        )
        per_level_users = max(len(population_b) // max(estimated_length, 1), 1)
        threshold = self._prune_threshold(per_level_users)

        for level in range(estimated_length):
            if level == 0:
                survivors = [()]
            else:
                survivors = trie.prune_below_threshold(level, threshold)
                if not survivors:
                    # Do not let noise wipe out the whole level; keep the top-k
                    # nodes at this level even though they fell below the
                    # threshold (ranked over all nodes, pruned included).
                    ranked = sorted(
                        trie.nodes_at_level(level, include_pruned=True),
                        key=lambda node: (-node.frequency, node.shape),
                    )
                    survivors = [node.shape for node in ranked[: self.config.top_k]]
                    for shape in survivors:
                        trie.node(shape).pruned = False
            survivors = self._cap_for_expansion(survivors, trie)
            level_sequences = [sequences[i] for i in level_groups[level]]
            self._expand_and_estimate(trie, level, survivors, level_sequences, generator)
            if level_sequences:
                accountant.spend(
                    f"Pb[level {level}]",
                    self.config.epsilon,
                    mechanism="Exponential Mechanism selection",
                )

        leaf_level = trie.height
        top = trie.top_shapes(leaf_level, self.config.top_k)
        shapes = [shape for shape, _ in top]
        frequencies = [frequency for _, frequency in top]
        return ShapeExtractionResult(
            shapes=shapes,
            frequencies=frequencies,
            estimated_length=estimated_length,
            trie=trie,
            accountant=accountant,
        )

    def extract_labeled(
        self,
        sequences: Sequence[Shape],
        labels: Sequence[int],
        n_classes: int | None = None,
        rng: RngLike = None,
    ) -> LabeledShapeExtractionResult:
        """Extract per-class frequent shapes (classification task).

        The trie expansion is label-agnostic; the users assigned to the final
        level jointly report (closest leaf candidate, own class label) through
        OUE, and the per-class top shapes are read from those counts.
        """
        sequences = [tuple(s) for s in sequences]
        labels = [int(label) for label in labels]
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must have the same length")
        if n_classes is None:
            n_classes = int(max(labels)) + 1 if labels else 0
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)

        # Reserve the final fifth of Pb for the labelled leaf estimation, and run
        # the plain extraction on the rest.
        indices = generator.permutation(len(sequences))
        n_labelled = max(len(sequences) // 5, 1)
        labelled_indices = indices[:n_labelled]
        expansion_indices = indices[n_labelled:]
        if expansion_indices.size == 0:
            expansion_indices = labelled_indices

        unlabeled = self.extract([sequences[i] for i in expansion_indices], rng=generator)
        leaf_level = unlabeled.trie.height
        leaf_candidates = [
            shape for shape, _ in unlabeled.trie.top_shapes(leaf_level, self.config.max_candidates)
        ]
        if not leaf_candidates:
            leaf_candidates = unlabeled.shapes or [tuple(self.config.alphabet[:1])]

        per_class_counts = oue_labeled_refine_counts(
            [sequences[i] for i in labelled_indices],
            [labels[i] for i in labelled_indices],
            leaf_candidates,
            n_classes=n_classes,
            epsilon=self.config.epsilon,
            metric=self.config.metric,
            alphabet_size=self.config.alphabet_size,
            rng=generator,
        )
        unlabeled.accountant.spend(
            "Pb[labelled leaves]", self.config.epsilon, mechanism="OUE labelled refinement"
        )

        shapes_by_class, frequencies_by_class = assign_candidates_to_classes(
            per_class_counts, top_k=self.config.top_k
        )
        return LabeledShapeExtractionResult(
            shapes_by_class=shapes_by_class,
            frequencies_by_class=frequencies_by_class,
            estimated_length=unlabeled.estimated_length,
            trie=unlabeled.trie,
            accountant=unlabeled.accountant,
        )
