"""Result containers returned by the shape-extraction mechanisms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.trie import Shape, ShapeTrie
from repro.ldp.accounting import PrivacyAccountant


@dataclass
class ShapeExtractionResult:
    """Output of an unlabelled shape extraction (clustering task).

    Attributes
    ----------
    shapes:
        The extracted top-k frequent shapes, ordered by decreasing estimated
        frequency.
    frequencies:
        The estimated frequency (count) of each extracted shape.
    estimated_length:
        The frequent compressed-sequence length ℓ_S used as the trie height.
    trie:
        The final trie, exposing per-level candidates and domain sizes.
    accountant:
        The privacy accountant recording every population's budget spend.
    subshape_candidates:
        PrivShape only: the top-c·k sub-shapes kept per level.
    """

    shapes: list[Shape]
    frequencies: list[float]
    estimated_length: int
    trie: ShapeTrie
    accountant: PrivacyAccountant
    subshape_candidates: dict[int, list[tuple[str, str]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.shapes = [tuple(s) for s in self.shapes]
        self.frequencies = [float(f) for f in self.frequencies]

    def as_strings(self) -> list[str]:
        """The extracted shapes as plain strings, e.g. ``["acba", "bdb"]``."""
        return ["".join(shape) for shape in self.shapes]

    def top(self, k: int) -> list[Shape]:
        """The ``k`` most frequent extracted shapes."""
        return self.shapes[:k]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ShapeExtractionResult(shapes={self.as_strings()}, "
            f"estimated_length={self.estimated_length})"
        )


@dataclass
class LabeledShapeExtractionResult:
    """Output of a labelled shape extraction (classification task).

    ``shapes_by_class`` maps every class label to its extracted shapes, most
    frequent first; ``frequencies_by_class`` holds the matching estimated
    counts.
    """

    shapes_by_class: dict[int, list[Shape]]
    frequencies_by_class: dict[int, list[float]]
    estimated_length: int
    trie: ShapeTrie
    accountant: PrivacyAccountant
    subshape_candidates: dict[int, list[tuple[str, str]]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.shapes_by_class = {
            int(label): [tuple(s) for s in shapes]
            for label, shapes in self.shapes_by_class.items()
        }
        self.frequencies_by_class = {
            int(label): [float(f) for f in freqs]
            for label, freqs in self.frequencies_by_class.items()
        }

    def flat_shapes(self) -> list[Shape]:
        """All extracted shapes across classes (most frequent per class first)."""
        flattened: list[Shape] = []
        for label in sorted(self.shapes_by_class):
            flattened.extend(self.shapes_by_class[label])
        return flattened

    def representative_shapes(self) -> dict[int, Shape]:
        """The single most frequent shape of every class."""
        return {
            label: shapes[0]
            for label, shapes in self.shapes_by_class.items()
            if shapes
        }

    def as_strings(self) -> dict[int, list[str]]:
        """Per-class shapes as plain strings."""
        return {
            label: ["".join(shape) for shape in shapes]
            for label, shapes in self.shapes_by_class.items()
        }
