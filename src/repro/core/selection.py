"""Private candidate selection shared by the baseline mechanism and PrivShape.

Each user who participates in one level of the trie expansion receives the
current candidate shapes from the server, scores every candidate against her
own compressed sequence with a normalized similarity in ``[0, 1]``, and
reports one candidate chosen by the Exponential Mechanism (Eq. (2)).  The
server simply counts the reports per candidate.  For the two-level refinement
each user instead reports her *closest* candidate (optionally joint with her
class label) through Optimized Unary Encoding, which gives unbiased counts.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.core.trie import Shape
from repro.distance.registry import shape_distance
from repro.ldp.exponential import ExponentialMechanism
from repro.ldp.unary import UnaryEncoding
from repro.utils.rng import RngLike, ensure_rng


def candidate_scores(
    sequence: Shape,
    candidates: Sequence[Shape],
    metric: str,
    alphabet_size: int,
) -> np.ndarray:
    """Normalized similarity scores in ``[0, 1]`` of every candidate for one user.

    Candidates at trie level ℓ are length-ℓ prefixes, so each candidate is
    compared against the *prefix of the same length* of the user's sequence
    (this is the prefix distance Lemma 1 reasons about).  Distances are mapped
    to scores with the paper's ``S ∝ 1 / dist`` rule, normalized so the
    closest candidate scores exactly 1: ``S_i = (d_min + δ) / (d_i + δ)`` with
    a small smoothing constant δ.  All scores lie in ``(0, 1]`` for every
    possible input, so the Exponential-Mechanism sensitivity remains 1 as in
    Eq. (2).
    """
    candidate_list = [tuple(c) for c in candidates]
    distances = np.array(
        [
            shape_distance(
                sequence[: max(len(candidate), 1)],
                candidate,
                metric=metric,
                alphabet_size=alphabet_size,
            )
            for candidate in candidate_list
        ],
        dtype=float,
    )
    smoothing = 0.5
    return (distances.min() + smoothing) / (distances + smoothing)


def em_select_counts(
    sequences: Sequence[Shape],
    candidates: Sequence[Shape],
    epsilon: float,
    metric: str,
    alphabet_size: int,
    rng: RngLike = None,
) -> dict[Shape, float]:
    """Counts of Exponential-Mechanism selections of each candidate.

    Every sequence in ``sequences`` belongs to one distinct user who reports
    exactly once; the full budget ``epsilon`` is spent on that single report.

    Users sharing the same compressed sequence have identical selection
    probabilities, so their reports are drawn jointly from a multinomial —
    distributionally identical to per-user sampling but far faster for the
    large populations the paper uses.
    """
    candidate_list = [tuple(c) for c in candidates]
    if not candidate_list:
        return {}
    generator = ensure_rng(rng)
    mechanism = ExponentialMechanism(epsilon)
    totals = np.zeros(len(candidate_list), dtype=float)
    # Only the prefix up to the longest candidate can influence any score, so
    # users may be grouped by that prefix without changing the distribution.
    prefix_length = max(max(len(c) for c in candidate_list), 1)
    groups = Counter(tuple(sequence[:prefix_length]) for sequence in sequences)
    for prefix, group_size in groups.items():
        scores = candidate_scores(prefix, candidate_list, metric, alphabet_size)
        probabilities = mechanism.selection_probabilities(scores)
        totals += generator.multinomial(group_size, probabilities)
    return {candidate: float(count) for candidate, count in zip(candidate_list, totals)}


def closest_candidate_index(
    sequence: Shape,
    candidates: Sequence[Shape],
    metric: str,
    alphabet_size: int,
) -> int:
    """Index of the candidate closest to ``sequence`` (deterministic, no budget spent)."""
    distances = [
        shape_distance(sequence, candidate, metric=metric, alphabet_size=alphabet_size)
        for candidate in candidates
    ]
    return int(np.argmin(distances))


def _oue_grouped_counts(
    cell_counts: Counter,
    n_cells: int,
    n_reports: int,
    epsilon: float,
    rng,
) -> np.ndarray:
    """Aggregate OUE reports for users grouped by their true cell.

    For a group of ``g`` users whose true cell is ``i``, the number of 1-bits
    observed in cell ``i`` is Binomial(g, p) and in every other cell
    Binomial(g, q) — identical in distribution to perturbing each user's
    one-hot vector individually, but sampled in O(#groups · #cells).  The
    returned counts are the unbiased OUE estimates.
    """
    oracle = UnaryEncoding(epsilon, domain=list(range(n_cells)), optimized=True)
    observed = np.zeros(n_cells, dtype=float)
    for cell, group_size in cell_counts.items():
        draws = rng.binomial(group_size, oracle.q, size=n_cells).astype(float)
        draws[cell] = rng.binomial(group_size, oracle.p)
        observed += draws
    return (observed - n_reports * oracle.q) / (oracle.p - oracle.q)


def oue_refine_counts(
    sequences: Sequence[Shape],
    candidates: Sequence[Shape],
    epsilon: float,
    metric: str,
    alphabet_size: int,
    rng: RngLike = None,
) -> dict[Shape, float]:
    """Re-estimate candidate frequencies with OUE from a fresh population.

    Each user deterministically finds her closest candidate and perturbs the
    one-hot encoding of that choice with Optimized Unary Encoding; the server
    aggregates unbiased counts.  This is the unlabelled form of the paper's
    two-level refinement.
    """
    candidate_list = [tuple(c) for c in candidates]
    sequences = [tuple(s) for s in sequences]
    if not candidate_list or not sequences:
        return {candidate: 0.0 for candidate in candidate_list}
    generator = ensure_rng(rng)
    if len(candidate_list) == 1:
        return {candidate_list[0]: float(len(sequences))}

    groups = Counter(sequences)
    cell_counts: Counter = Counter()
    for sequence, group_size in groups.items():
        index = closest_candidate_index(sequence, candidate_list, metric, alphabet_size)
        cell_counts[index] += group_size
    counts = _oue_grouped_counts(
        cell_counts, len(candidate_list), len(sequences), epsilon, generator
    )
    return {candidate: float(count) for candidate, count in zip(candidate_list, counts)}


def oue_labeled_refine_counts(
    sequences: Sequence[Shape],
    labels: Sequence[int],
    candidates: Sequence[Shape],
    n_classes: int,
    epsilon: float,
    metric: str,
    alphabet_size: int,
    rng: RngLike = None,
) -> dict[int, dict[Shape, float]]:
    """Labelled two-level refinement: OUE over ``len(candidates) * n_classes`` cells.

    Each user encodes the pair (closest candidate, own class label) into one
    of ``c·k·k`` cells — exactly the paper's classification variant — and the
    server returns per-class candidate counts.
    """
    candidate_list = [tuple(c) for c in candidates]
    sequences = [tuple(s) for s in sequences]
    labels = [int(label) for label in labels]
    per_class: dict[int, dict[Shape, float]] = {
        label: {candidate: 0.0 for candidate in candidate_list} for label in range(n_classes)
    }
    if not candidate_list or not sequences:
        return per_class
    generator = ensure_rng(rng)
    n_cells = len(candidate_list) * n_classes
    if n_cells == 1:
        per_class[0][candidate_list[0]] = float(len(sequences))
        return per_class

    groups = Counter(zip(sequences, labels))
    closest_cache: dict[Shape, int] = {}
    cell_counts: Counter = Counter()
    for (sequence, label), group_size in groups.items():
        if sequence not in closest_cache:
            closest_cache[sequence] = closest_candidate_index(
                sequence, candidate_list, metric, alphabet_size
            )
        cell = closest_cache[sequence] * n_classes + (label % n_classes)
        cell_counts[cell] += group_size
    counts = _oue_grouped_counts(cell_counts, n_cells, len(sequences), epsilon, generator)
    for cell, count in enumerate(counts):
        candidate = candidate_list[cell // n_classes]
        label = cell % n_classes
        per_class[label][candidate] = float(count)
    return per_class
