"""Post-processing of the candidate set: de-duplication of similar shapes.

After the two-level refinement many of the surviving candidates can be nearly
identical (e.g. ``"acba"`` and ``"acb"``), so naively taking the top-k by
frequency returns k variants of the same essential shape and hides the other
true shapes.  The paper's post-processing partitions the candidates into k
clusters by their pairwise distance and keeps the most frequent candidate of
each cluster.  This is deterministic post-processing of already-perturbed
data, so it consumes no privacy budget.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.trie import Shape
from repro.distance.registry import shape_distance


def _pairwise_distances(
    shapes: Sequence[Shape], metric: str, alphabet_size: int
) -> np.ndarray:
    n = len(shapes)
    matrix = np.zeros((n, n), dtype=float)
    for i in range(n):
        for j in range(i + 1, n):
            distance = shape_distance(
                shapes[i], shapes[j], metric=metric, alphabet_size=alphabet_size
            )
            matrix[i, j] = matrix[j, i] = distance
    return matrix


def cluster_shapes(
    shapes: Sequence[Shape],
    n_clusters: int,
    metric: str = "dtw",
    alphabet_size: int = 4,
) -> list[int]:
    """Partition shapes into ``n_clusters`` groups by agglomerative clustering.

    Average linkage is used: single linkage chains dissimilar shapes together
    through intermediate noisy candidates, which would merge two genuinely
    different frequent shapes into one cluster and drop one of them from the
    output.  Returns a cluster id per shape; when there are fewer shapes than
    clusters every shape is its own cluster.
    """
    shapes = [tuple(s) for s in shapes]
    n = len(shapes)
    if n == 0:
        return []
    n_clusters = max(1, min(int(n_clusters), n))

    distances = _pairwise_distances(shapes, metric, alphabet_size)
    # Average-linkage agglomerative clustering: repeatedly merge the two
    # clusters with the smallest mean pairwise distance until n_clusters remain.
    clusters: list[set[int]] = [{i} for i in range(n)]
    while len(clusters) > n_clusters:
        best_pair = None
        best_distance = np.inf
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                link = float(
                    np.mean([distances[i, j] for i in clusters[a] for j in clusters[b]])
                )
                if link < best_distance:
                    best_distance = link
                    best_pair = (a, b)
        a, b = best_pair
        clusters[a] |= clusters[b]
        del clusters[b]

    labels = np.zeros(n, dtype=int)
    for cluster_id, members in enumerate(clusters):
        for index in members:
            labels[index] = cluster_id
    return labels.tolist()


def assign_candidates_to_classes(
    per_class_counts: dict[int, dict[Shape, float]],
    top_k: int,
) -> tuple[dict[int, list[Shape]], dict[int, list[float]]]:
    """Partition leaf candidates across classes by their dominant class.

    The labelled two-level refinement produces an estimated count for every
    (candidate, class) pair.  Selecting each class's top candidates
    independently lets one globally popular candidate represent every class
    and destroys the classification criterion, so each candidate is first
    assigned to the class where its estimated count is highest, and each class
    then ranks only its own candidates.  A class that ends up without any
    candidate falls back to its highest-count candidate regardless of
    ownership.
    """
    classes = sorted(per_class_counts)
    candidates = sorted({shape for counts in per_class_counts.values() for shape in counts})
    owner: dict[Shape, int] = {}
    for candidate in candidates:
        owner[candidate] = max(
            classes, key=lambda label: per_class_counts[label].get(candidate, float("-inf"))
        )

    shapes_by_class: dict[int, list[Shape]] = {}
    frequencies_by_class: dict[int, list[float]] = {}
    for label in classes:
        owned = [c for c in candidates if owner[c] == label]
        ranked = sorted(owned, key=lambda c: (-per_class_counts[label].get(c, 0.0), c))
        if not ranked and candidates:
            ranked = sorted(
                candidates, key=lambda c: (-per_class_counts[label].get(c, 0.0), c)
            )[:1]
        shapes_by_class[label] = ranked[:top_k]
        frequencies_by_class[label] = [
            per_class_counts[label].get(c, 0.0) for c in shapes_by_class[label]
        ]
    return shapes_by_class, frequencies_by_class


def deduplicate_shapes(
    shapes: Sequence[Shape],
    frequencies: Sequence[float],
    k: int,
    metric: str = "dtw",
    alphabet_size: int = 4,
    threshold_factor: float = 0.4,
) -> tuple[list[Shape], list[float]]:
    """Select up to k mutually distinct shapes, most frequent first.

    This is the paper's post-processing ("group similar shapes, keep each
    group's most frequent member") implemented robustly: candidates are taken
    in decreasing frequency order and a candidate is skipped when it lies
    within a similarity threshold of an already-selected shape.  The threshold
    is ``threshold_factor`` times the mean pairwise candidate distance, so
    near-duplicates of a frequent shape are collapsed while genuinely distinct
    shapes are kept.  If fewer than ``k`` distinct shapes exist the remaining
    slots are filled with the most frequent skipped candidates, so a rare
    outlier can never displace a frequent true shape.
    """
    shapes = [tuple(s) for s in shapes]
    frequencies = [float(f) for f in frequencies]
    if len(shapes) != len(frequencies):
        raise ValueError("shapes and frequencies must have the same length")
    if not shapes:
        return [], []
    k = max(1, int(k))

    distances = _pairwise_distances(shapes, metric, alphabet_size)
    positive = distances[distances > 0]
    threshold = threshold_factor * float(positive.mean()) if positive.size else 0.0

    order = sorted(range(len(shapes)), key=lambda i: (-frequencies[i], shapes[i]))
    selected: list[int] = []
    skipped: list[int] = []
    for index in order:
        if len(selected) >= k:
            break
        if any(distances[index, chosen] <= threshold for chosen in selected):
            skipped.append(index)
            continue
        selected.append(index)
    for index in skipped:
        if len(selected) >= k:
            break
        selected.append(index)

    return [shapes[i] for i in selected], [frequencies[i] for i in selected]
