"""Core contribution: the Baseline mechanism (Algorithm 1) and PrivShape (Algorithm 2).

The public entry points are:

* :class:`BaselineMechanism` — trie expansion with threshold pruning and
  Exponential-Mechanism candidate selection (Section III of the paper);
* :class:`PrivShape` — the optimized mechanism with frequent-sub-shape
  trie-expansion pruning, two-level refinement, and post-processing
  de-duplication (Section IV);
* :func:`run_clustering_task` / :func:`run_classification_task` — end-to-end
  pipelines that transform a raw labelled dataset, run a mechanism (PrivShape,
  the baseline, or PatternLDP), evaluate the downstream task, and report the
  quantitative shape measures of Tables III / IV.
"""

from repro.core.config import BaselineConfig, PrivShapeConfig
from repro.core.trie import ShapeTrie, TrieNode
from repro.core.length import estimate_frequent_length
from repro.core.subshape import all_subshapes, estimate_frequent_subshapes
from repro.core.results import (
    LabeledShapeExtractionResult,
    ShapeExtractionResult,
)
from repro.core.baseline import BaselineMechanism
from repro.core.privshape import PrivShape
from repro.core.refinement import cluster_shapes, deduplicate_shapes
from repro.core.pipeline import (
    ClassificationTaskResult,
    ClusteringTaskResult,
    run_classification_task,
    run_clustering_task,
)
from repro.core.ablation import RawValueDiscretizer

__all__ = [
    "BaselineConfig",
    "PrivShapeConfig",
    "ShapeTrie",
    "TrieNode",
    "estimate_frequent_length",
    "all_subshapes",
    "estimate_frequent_subshapes",
    "ShapeExtractionResult",
    "LabeledShapeExtractionResult",
    "BaselineMechanism",
    "PrivShape",
    "cluster_shapes",
    "deduplicate_shapes",
    "ClusteringTaskResult",
    "ClassificationTaskResult",
    "run_clustering_task",
    "run_classification_task",
    "RawValueDiscretizer",
]
