"""PrivShape: the optimized mechanism (Algorithm 2 of the paper).

PrivShape improves the baseline with three ideas:

1. **Trie-expansion pruning** — a dedicated population (Pb) estimates the
   frequent *sub-shapes* (adjacent symbol pairs) at every level; only
   expansions along the top ``c·k`` sub-shapes are created, which shrinks the
   Exponential-Mechanism perturbation domain from ``t·(t-1)^(ℓ-1)`` to at most
   ``c²k²`` (Theorem 4).
2. **Two-level refinement** — the leaf candidates are pruned to the top
   ``c·k`` and their frequencies are re-estimated from a held-out population
   (Pd) with Optimized Unary Encoding, improving the decisive leaf counts.
3. **Post-processing** — near-duplicate candidates are clustered and only the
   most frequent member of each cluster is returned, so the final top-k
   contains k *distinct* essential shapes.

Execution is delegated to the round-based protocol engine in
:mod:`repro.service.protocol`: this class feeds every round with the whole
population in a single batch, while the streaming
:class:`~repro.service.driver.ProtocolDriver` feeds the same engine batch by
batch.  Client randomness is PRF-keyed per (round, user), so the two paths
produce byte-identical results from the same master seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.trie import Shape
from repro.exceptions import EmptyDatasetError
from repro.service.population import EncodedPopulation
from repro.service.protocol import PrivShapeEngine
from repro.service.rounds import accumulate, encode_reports, new_accumulator
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class PrivShape:
    """User-level LDP extraction of top-k frequent shapes (Algorithm 2).

    ``config`` is either a :class:`PrivShapeConfig` or a resolved
    :class:`~repro.api.spec.ExperimentSpec` (coerced on construction).
    """

    config: PrivShapeConfig

    def __post_init__(self) -> None:
        if not isinstance(self.config, PrivShapeConfig) and hasattr(
            self.config, "to_privshape_config"
        ):
            self.config = self.config.to_privshape_config()

    def _run_rounds(self, engine: PrivShapeEngine, population: EncodedPopulation) -> None:
        """Drive every protocol round with the full population as one batch."""
        user_ids = np.arange(len(population), dtype=np.int64)
        while (spec := engine.open_round()) is not None:
            aggregate = new_accumulator(spec)
            mask = engine.plan.participant_mask(spec, user_ids)
            if mask.any():
                participants = np.flatnonzero(mask)
                payload = encode_reports(
                    spec, population.take(participants), user_ids[participants]
                )
                accumulate(spec, aggregate, payload)
            engine.close_round(spec, aggregate)

    def extract(
        self, sequences: Sequence[Shape], rng: RngLike = None
    ) -> ShapeExtractionResult:
        """Extract the top-k frequent shapes from users' compressed sequences."""
        sequences = [tuple(s) for s in sequences]
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)

        engine = PrivShapeEngine(self.config, rng=generator)
        population = EncodedPopulation.from_sequences(sequences, self.config.alphabet)
        self._run_rounds(engine, population)
        return engine.finalize()

    def extract_labeled(
        self,
        sequences: Sequence[Shape],
        labels: Sequence[int],
        n_classes: int | None = None,
        rng: RngLike = None,
    ) -> LabeledShapeExtractionResult:
        """Extract per-class frequent shapes (classification task).

        The second level of the two-level refinement is replaced by a joint
        (candidate, class label) report through OUE over ``c·k·k`` cells, as
        described in Section V-E of the paper.
        """
        sequences = [tuple(s) for s in sequences]
        labels = [int(label) for label in labels]
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must have the same length")
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        if n_classes is None:
            n_classes = int(max(labels)) + 1
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)

        engine = PrivShapeEngine(
            self.config, rng=generator, labeled=True, n_classes=n_classes
        )
        population = EncodedPopulation.from_sequences(
            sequences, self.config.alphabet, labels=labels
        )
        self._run_rounds(engine, population)
        return engine.finalize_labeled()
