"""PrivShape: the optimized mechanism (Algorithm 2 of the paper).

PrivShape improves the baseline with three ideas:

1. **Trie-expansion pruning** — a dedicated population (Pb) estimates the
   frequent *sub-shapes* (adjacent symbol pairs) at every level; only
   expansions along the top ``c·k`` sub-shapes are created, which shrinks the
   Exponential-Mechanism perturbation domain from ``t·(t-1)^(ℓ-1)`` to at most
   ``c²k²`` (Theorem 4).
2. **Two-level refinement** — the leaf candidates are pruned to the top
   ``c·k`` and their frequencies are re-estimated from a held-out population
   (Pd) with Optimized Unary Encoding, improving the decisive leaf counts.
3. **Post-processing** — near-duplicate candidates are clustered and only the
   most frequent member of each cluster is returned, so the final top-k
   contains k *distinct* essential shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.length import estimate_frequent_length
from repro.core.refinement import assign_candidates_to_classes, deduplicate_shapes
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.selection import (
    em_select_counts,
    oue_labeled_refine_counts,
    oue_refine_counts,
)
from repro.core.subshape import estimate_frequent_subshapes
from repro.core.trie import Shape, ShapeTrie
from repro.exceptions import EmptyDatasetError
from repro.ldp.accounting import PrivacyAccountant
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sequences import chunk_evenly, split_population


@dataclass
class PrivShape:
    """User-level LDP extraction of top-k frequent shapes (Algorithm 2)."""

    config: PrivShapeConfig

    # ---------------------------------------------------------------- population

    def _split(self, n: int, rng) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Randomly split user indices into (Pa, Pb, Pc, Pd)."""
        groups = split_population(n, self.config.population_fractions, rng=rng)
        return groups[0], groups[1], groups[2], groups[3]

    # ---------------------------------------------------------------- expansion

    def _expand_trie(
        self,
        trie: ShapeTrie,
        estimated_length: int,
        subshapes: dict[int, list[tuple[str, str]]],
        sequences: Sequence[Shape],
        expansion_indices: np.ndarray,
        accountant: PrivacyAccountant,
        rng,
    ) -> None:
        """Grow the trie level by level using the Pc population (Algorithm 2, lines 7-10)."""
        # The population is randomly divided into one group per level; shuffling
        # first keeps every group class-balanced even when the input dataset is
        # ordered by class.
        shuffled = ensure_rng(rng).permutation(np.asarray(expansion_indices))
        level_groups = chunk_evenly(shuffled, max(estimated_length, 1))
        keep = self.config.candidate_budget

        for level in range(estimated_length):
            if level == 0:
                survivors: list[Shape] = [()]
                allowed = None
            else:
                survivors = trie.prune_to_top(level, keep)
                allowed = subshapes.get(level)
            children = trie.expand(survivors, allowed_subshapes=allowed)
            if not children:
                # All expansions were pruned away (can happen with noisy
                # sub-shape estimates); fall back to full expansion.
                children = trie.expand(survivors, allowed_subshapes=None)
            level_sequences = [sequences[i] for i in level_groups[level]]
            if level_sequences:
                counts = em_select_counts(
                    level_sequences,
                    children,
                    epsilon=self.config.epsilon,
                    metric=self.config.metric,
                    alphabet_size=self.config.alphabet_size,
                    rng=rng,
                )
                for child, count in counts.items():
                    trie.set_frequency(child, count)
                accountant.spend(
                    f"Pc[level {level}]",
                    self.config.epsilon,
                    mechanism="Exponential Mechanism selection",
                )

    # ---------------------------------------------------------------- extraction

    def _common_stages(
        self, sequences: list[Shape], rng
    ) -> tuple[int, dict[int, list[tuple[str, str]]], ShapeTrie, PrivacyAccountant, np.ndarray]:
        """Run length estimation, sub-shape estimation, and trie expansion.

        Returns ``(ℓ_S, sub-shapes, trie, accountant, Pd indices)`` so that the
        unlabelled and labelled extraction variants can share everything up to
        the two-level refinement.
        """
        accountant = PrivacyAccountant(target_epsilon=self.config.epsilon)
        population_a, population_b, population_c, population_d = self._split(
            len(sequences), rng
        )

        estimated_length = estimate_frequent_length(
            [len(sequences[i]) for i in population_a],
            epsilon=self.config.epsilon,
            length_low=self.config.length_low,
            length_high=self.config.length_high,
            rng=rng,
        )
        accountant.spend("Pa", self.config.epsilon, mechanism="GRR length estimation")

        if estimated_length >= 2:
            subshapes = estimate_frequent_subshapes(
                [sequences[i] for i in population_b],
                estimated_length=estimated_length,
                epsilon=self.config.epsilon,
                alphabet=self.config.alphabet,
                keep=self.config.candidate_budget,
                rng=rng,
            )
            accountant.spend("Pb", self.config.epsilon, mechanism="GRR sub-shape estimation")
        else:
            subshapes = {}

        trie = ShapeTrie(self.config.alphabet)
        self._expand_trie(
            trie,
            estimated_length,
            subshapes,
            sequences,
            population_c,
            accountant,
            rng,
        )
        return estimated_length, subshapes, trie, accountant, population_d

    def extract(
        self, sequences: Sequence[Shape], rng: RngLike = None
    ) -> ShapeExtractionResult:
        """Extract the top-k frequent shapes from users' compressed sequences."""
        sequences = [tuple(s) for s in sequences]
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)

        estimated_length, subshapes, trie, accountant, population_d = self._common_stages(
            sequences, generator
        )
        leaf_level = trie.height
        keep = self.config.candidate_budget
        leaf_shapes = trie.prune_to_top(leaf_level, keep)

        frequencies = {shape: trie.node(shape).frequency for shape in leaf_shapes}
        if self.config.refinement and len(population_d) > 0 and leaf_shapes:
            refined = oue_refine_counts(
                [sequences[i] for i in population_d],
                leaf_shapes,
                epsilon=self.config.epsilon,
                metric=self.config.metric,
                alphabet_size=self.config.alphabet_size,
                rng=generator,
            )
            accountant.spend("Pd", self.config.epsilon, mechanism="OUE two-level refinement")
            frequencies = refined
            for shape, count in refined.items():
                trie.set_frequency(shape, count)

        shapes = sorted(frequencies, key=lambda s: (-frequencies[s], s))
        counts = [frequencies[s] for s in shapes]
        if self.config.postprocess:
            shapes, counts = deduplicate_shapes(
                shapes,
                counts,
                k=self.config.top_k,
                metric=self.config.metric,
                alphabet_size=self.config.alphabet_size,
            )
        shapes = shapes[: self.config.top_k]
        counts = counts[: self.config.top_k]
        return ShapeExtractionResult(
            shapes=shapes,
            frequencies=counts,
            estimated_length=estimated_length,
            trie=trie,
            accountant=accountant,
            subshape_candidates=subshapes,
        )

    def extract_labeled(
        self,
        sequences: Sequence[Shape],
        labels: Sequence[int],
        n_classes: int | None = None,
        rng: RngLike = None,
    ) -> LabeledShapeExtractionResult:
        """Extract per-class frequent shapes (classification task).

        The second level of the two-level refinement is replaced by a joint
        (candidate, class label) report through OUE over ``c·k·k`` cells, as
        described in Section V-E of the paper.
        """
        sequences = [tuple(s) for s in sequences]
        labels = [int(l) for l in labels]
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels must have the same length")
        if not sequences:
            raise EmptyDatasetError("cannot extract shapes from an empty population")
        if n_classes is None:
            n_classes = int(max(labels)) + 1
        generator = ensure_rng(rng if rng is not None else self.config.rng_seed)

        estimated_length, subshapes, trie, accountant, population_d = self._common_stages(
            sequences, generator
        )
        leaf_level = trie.height
        keep = self.config.candidate_budget
        leaf_shapes = trie.prune_to_top(leaf_level, keep)
        if not leaf_shapes:
            leaf_shapes = [tuple(self.config.alphabet[:1])]

        per_class_counts = oue_labeled_refine_counts(
            [sequences[i] for i in population_d],
            [labels[i] for i in population_d],
            leaf_shapes,
            n_classes=n_classes,
            epsilon=self.config.epsilon,
            metric=self.config.metric,
            alphabet_size=self.config.alphabet_size,
            rng=generator,
        )
        if len(population_d) > 0:
            accountant.spend("Pd", self.config.epsilon, mechanism="OUE labelled refinement")

        shapes_by_class, frequencies_by_class = assign_candidates_to_classes(
            per_class_counts, top_k=self.config.top_k
        )
        return LabeledShapeExtractionResult(
            shapes_by_class=shapes_by_class,
            frequencies_by_class=frequencies_by_class,
            estimated_length=estimated_length,
            trie=trie,
            accountant=accountant,
            subshape_candidates=subshapes,
        )
