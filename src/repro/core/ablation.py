"""Ablation transformers: "Without SAX" and "No Compression" variants (Fig. 18).

The paper's ablations replace parts of the Compressive SAX pre-processing:

* **Without SAX** — values are not aggregated by PAA; instead, every
  (z-normalized) value is discretized directly into fixed-width bins
  (0.33-wide intervals clipped at ±0.99, i.e. eight segments), then the
  resulting symbol sequence is optionally compressed.  PrivShape still runs,
  but the symbols no longer average out noise, so utility drops.
* **No Compression** — plain SAX without the run-length collapse, obtained by
  constructing :class:`repro.sax.CompressiveSAX` with ``compress=False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import string

import numpy as np

from repro.sax.normalization import zscore_normalize
from repro.utils.sequences import run_length_collapse
from repro.utils.validation import check_positive_int, check_time_series


@dataclass
class RawValueDiscretizer:
    """Discretizes raw (z-normalized) values into symbols without PAA averaging.

    Parameters
    ----------
    bin_width:
        Width of each interior bin (paper: 0.33).
    clip:
        Values beyond ±clip land in the two outer bins (paper: 0.99).
    stride:
        Keep every ``stride``-th point before discretizing; 1 keeps all points
        (the paper's setting), larger values subsample for faster experiments.
    compress:
        Whether to collapse consecutive repeated symbols afterwards, matching
        Compressive SAX's final step.
    normalize:
        Whether to z-normalize the series first.
    """

    bin_width: float = 0.33
    clip: float = 0.99
    stride: int = 1
    compress: bool = True
    normalize: bool = True
    edges: np.ndarray = field(init=False, repr=False)
    alphabet: list[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {self.bin_width}")
        if self.clip <= 0:
            raise ValueError(f"clip must be positive, got {self.clip}")
        self.stride = check_positive_int(self.stride, "stride")
        interior = np.arange(-self.clip, self.clip + 1e-9, self.bin_width)
        self.edges = interior
        n_bins = interior.size + 1
        if n_bins > len(string.ascii_lowercase):
            raise ValueError(f"too many bins ({n_bins}); increase bin_width")
        self.alphabet = list(string.ascii_lowercase[:n_bins])

    @property
    def alphabet_size(self) -> int:
        """Number of symbols produced by the discretizer."""
        return len(self.alphabet)

    def transform(self, series) -> tuple[str, ...]:
        """Discretize one series into a (optionally compressed) symbol tuple."""
        arr = check_time_series(series)
        if self.normalize:
            arr = zscore_normalize(arr)
        arr = arr[:: self.stride]
        indices = np.searchsorted(self.edges, arr, side="right")
        symbols = [self.alphabet[i] for i in indices]
        if self.compress:
            symbols = run_length_collapse(symbols)
        return tuple(symbols)

    def transform_dataset(self, dataset) -> list[tuple[str, ...]]:
        """Apply :meth:`transform` to every series in a dataset."""
        return [self.transform(series) for series in dataset]
