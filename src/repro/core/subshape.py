"""Frequent sub-shape estimation (Algorithm 2, lines 2-5).

A sub-shape is an ordered pair of adjacent symbols ``(s_j, s_{j+1})`` of a
compressed sequence.  Users in population Pb pad-or-truncate their sequence to
the estimated length ℓ_S, pick one level ``j ∈ {1, .., ℓ_S - 1}`` uniformly at
random, and report ``(j, GRR((s_j, s_{j+1})))``.  The server aggregates the
reports per level and keeps the top ``c·k`` sub-shapes at every level; those
sub-shapes later gate the trie expansion (Theorem 2: sub-shapes of frequent
shapes are frequent).
"""

from __future__ import annotations

from itertools import permutations
from typing import Sequence


from repro.exceptions import EstimationError
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.sequences import pad_or_truncate
from repro.utils.validation import check_epsilon, check_positive_int

Shape = tuple[str, ...]
SubShape = tuple[str, str]

#: Symbol used to right-pad sequences shorter than ℓ_S.  It never matches a
#: real symbol pair in the GRR domain, so padded positions fall back to the
#: first domain element (uniform noise) rather than biasing a real sub-shape.
PAD_SYMBOL = "_"


def all_subshapes(alphabet: Sequence[str]) -> list[SubShape]:
    """The ``t·(t-1)`` ordered pairs of distinct symbols (the GRR domain)."""
    symbols = list(alphabet)
    return sorted(permutations(symbols, 2))


def rank_top_subshapes(counts: dict[SubShape, float], keep: int) -> list[SubShape]:
    """The ``keep`` highest-count sub-shapes (ties favour the smaller pair).

    Shared decision rule of the offline estimator and the collection service's
    sub-shape round, so both paths gate the trie expansion identically.
    """
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
    return [pair for pair, _ in ranked[:keep]]


def user_subshape_report(
    sequence: Shape,
    estimated_length: int,
    oracle: GeneralizedRandomizedResponse,
    rng: RngLike = None,
) -> tuple[int, SubShape]:
    """One user's padded-and-sampled sub-shape report: ``(level, perturbed pair)``.

    The level is chosen uniformly from ``{1, .., ℓ_S - 1}`` (1-indexed as in
    the paper).  When the sampled pair contains padding (the user's sequence
    is shorter than ℓ_S) the user still reports — a uniformly random domain
    element is perturbed, contributing only unbiased noise.
    """
    generator = ensure_rng(rng)
    if estimated_length < 2:
        raise EstimationError("estimated length must be at least 2 to hold a sub-shape")
    padded = pad_or_truncate(list(sequence), estimated_length, PAD_SYMBOL)
    level = int(generator.integers(1, estimated_length))  # j in {1, .., ℓ_S - 1}
    pair = (padded[level - 1], padded[level])
    if not oracle.in_domain(pair):  # padding or repeated symbols: report pure noise
        pair = oracle.domain[int(generator.integers(0, oracle.domain_size))]
    return level, oracle.perturb(pair, generator)


def estimate_frequent_subshapes(
    sequences: Sequence[Shape],
    estimated_length: int,
    epsilon: float,
    alphabet: Sequence[str],
    keep: int,
    rng: RngLike = None,
    return_counts: bool = False,
):
    """Estimate the top-``keep`` sub-shapes at every level from population Pb.

    Parameters
    ----------
    sequences:
        The compressed sequences of the Pb users.
    estimated_length:
        ℓ_S from frequent-length estimation; defines the number of levels.
    epsilon:
        Per-user privacy budget.
    alphabet:
        SAX symbol alphabet.
    keep:
        Number of sub-shapes retained per level (``c·k``).
    return_counts:
        When True, also return the raw estimated count maps per level.

    Returns
    -------
    ``{level: [sub-shape, ...]}`` for levels ``1 .. ℓ_S - 1`` (and optionally
    ``{level: {sub-shape: estimated count}}``).
    """
    epsilon = check_epsilon(epsilon)
    keep = check_positive_int(keep, "keep")
    sequences = [tuple(s) for s in sequences]
    if not sequences:
        raise EstimationError("no users were assigned to sub-shape estimation")
    if estimated_length < 2:
        # A single-symbol shape has no sub-shapes; nothing to estimate.
        return ({}, {}) if return_counts else {}

    generator = ensure_rng(rng)
    domain = all_subshapes(alphabet)
    oracle = GeneralizedRandomizedResponse(epsilon, domain=domain)

    reports_per_level: dict[int, list[SubShape]] = {
        level: [] for level in range(1, estimated_length)
    }
    for sequence in sequences:
        level, report = user_subshape_report(sequence, estimated_length, oracle, generator)
        reports_per_level[level].append(report)

    top_per_level: dict[int, list[SubShape]] = {}
    counts_per_level: dict[int, dict[SubShape, float]] = {}
    for level, reports in reports_per_level.items():
        if not reports:
            # No user sampled this level (tiny populations): keep everything.
            top_per_level[level] = list(domain)
            counts_per_level[level] = {pair: 0.0 for pair in domain}
            continue
        counts = oracle.estimate_map(reports)
        top_per_level[level] = rank_top_subshapes(counts, keep)
        counts_per_level[level] = {pair: float(count) for pair, count in counts.items()}

    if return_counts:
        return top_per_level, counts_per_level
    return top_per_level
