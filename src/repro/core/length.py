"""Frequent-length estimation (Algorithm 1, lines 1-4).

Users in population Pa clip their compressed-sequence length into
``[ℓ_low, ℓ_high]``, perturb it with a frequency-estimation mechanism (GRR by
default, as in the experiments), and the server takes the arg-max of the
estimated counts as the trie height ℓ_S (Eq. (1) of the paper).
"""

from __future__ import annotations

from typing import Sequence


from repro.exceptions import EstimationError
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_epsilon, check_positive_int


def clip_length(length: int, length_low: int, length_high: int) -> int:
    """Clip a sequence length into the declared range ``[length_low, length_high]``."""
    return int(min(max(int(length), length_low), length_high))


def select_modal_length(counts) -> int:
    """The arg-max length from an estimated count map (exact ties favour the shorter).

    Shared decision rule of the offline estimator and the collection service's
    length round, so both paths pick ℓ_S identically from the same counts.
    """
    return int(max(counts.items(), key=lambda item: (item[1], -item[0]))[0])


def estimate_frequent_length(
    lengths: Sequence[int],
    epsilon: float,
    length_low: int,
    length_high: int,
    rng: RngLike = None,
    return_counts: bool = False,
):
    """Estimate the most frequent (clipped) sequence length under ε-LDP.

    Parameters
    ----------
    lengths:
        The true compressed-sequence lengths of the users in Pa.
    epsilon:
        Per-user privacy budget for this report.
    length_low, length_high:
        The declared clipping range; the estimation domain is every integer in
        this range.
    return_counts:
        When True also return the estimated count per candidate length.

    Returns
    -------
    The estimated most frequent length ℓ_S (and optionally the count map).
    """
    epsilon = check_epsilon(epsilon)
    length_low = check_positive_int(length_low, "length_low")
    length_high = check_positive_int(length_high, "length_high")
    if length_low > length_high:
        raise ValueError("length_low must not exceed length_high")
    lengths = [int(length) for length in lengths]
    if not lengths:
        raise EstimationError("no users were assigned to length estimation")

    generator = ensure_rng(rng)
    domain = list(range(length_low, length_high + 1))
    if len(domain) == 1:
        estimated = domain[0]
        return (estimated, {domain[0]: float(len(lengths))}) if return_counts else estimated

    oracle = GeneralizedRandomizedResponse(epsilon, domain=domain)
    reports = [
        oracle.perturb(clip_length(length, length_low, length_high), generator)
        for length in lengths
    ]
    counts = oracle.estimate_map(reports)
    estimated = select_modal_length(counts)
    if return_counts:
        return estimated, {int(k): float(v) for k, v in counts.items()}
    return estimated
