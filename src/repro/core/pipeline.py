"""End-to-end task pipelines reproducing the paper's evaluation protocol.

Two pipelines are provided, matching the two applications in Section V:

* :func:`run_clustering_task` — Symbols-style evaluation: extract shapes with
  an extraction mechanism (PrivShape, the trie baseline, PEM), or perturb the
  raw data with a perturbation mechanism (PatternLDP, PID) + KMeans, assign
  every series to its closest shape, and score the partition with the
  Adjusted Rand Index.  Also reports the quantitative shape measures
  (DTW / SED / Euclidean against the ground-truth class shapes) of Table III.
* :func:`run_classification_task` — Trace-style evaluation: extract per-class
  shapes (or train a random forest on a perturbation mechanism's output) and
  score classification accuracy on held-out clean data; reports Table IV
  measures.

Both pipelines dispatch through the mechanism registry
(:mod:`repro.api.mechanisms`), so any registered mechanism — including ones
registered by downstream code — runs through the identical evaluation
protocol.  They accept either the legacy keyword parameters or one
:class:`~repro.api.spec.ExperimentSpec` (as the ``mechanism`` argument or the
``spec`` keyword); the keyword form is internally lifted into a spec, so both
forms share one code path.

Both functions return small result dataclasses that the benchmark harness
prints as the paper's rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.api.mechanisms import (
    KIND_PERTURBATION,
    MechanismEntry,
    available_mechanisms,
    mechanism_registry,
)
from repro.api.results import (
    RunResult,
    accounting_payload,
    estimates_from_extraction,
    estimates_from_labeled,
)
from repro.api.spec import CollectionSpec, ExperimentSpec, PrivacySpec, SAXSpec
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.trie import Shape
from repro.datasets.base import LabeledDataset
from repro.exceptions import ConfigurationError
from repro.mining.forest import RandomForestClassifier, series_to_matrix
from repro.mining.kmeans import TimeSeriesKMeans
from repro.mining.matching import shape_quality_measures
from repro.mining.metrics import accuracy_score, adjusted_rand_index
from repro.mining.nearest import NearestShapeClassifier, assign_to_shapes
from repro.sax.compressive import CompressiveSAX
from repro.utils.rng import RngLike, ensure_rng


#: Deprecated alias kept for callers that imported the old hand-written tuple;
#: the registry is the single source of truth now (an import-time snapshot —
#: call available_mechanisms() for a live view including late registrations).
MECHANISMS = available_mechanisms()


@dataclass
class ClusteringTaskResult:
    """Outcome of one clustering-task run (one mechanism, one parameter setting)."""

    mechanism: str
    epsilon: float
    ari: float
    shapes: list[str]
    ground_truth_shapes: list[str]
    shape_measures: dict[str, float]
    elapsed_seconds: float
    extraction: ShapeExtractionResult | None = None
    details: dict = field(default_factory=dict)
    #: Echo of the (resolved, where applicable) spec the run executed.
    spec: ExperimentSpec | None = None

    def to_run_result(self, *, backend: str = "inline", seed=None) -> RunResult:
        """This task outcome as the canonical structured artifact."""
        if self.extraction is not None:
            estimates = estimates_from_extraction(self.extraction)
            estimated_length = self.extraction.estimated_length
            accounting = accounting_payload(self.extraction.accountant)
        else:
            # Perturbation mechanisms have no frequency estimates; the shapes
            # are cluster-centre symbolizations (null counts survive JSON).
            estimates = [
                {"shape": shape, "estimated_count": None} for shape in self.shapes
            ]
            estimated_length = None
            accounting = {}
        spec = self.spec if self.spec is not None else ExperimentSpec(
            mechanism=self.mechanism, privacy=PrivacySpec(epsilon=self.epsilon)
        )
        return RunResult(
            task="cluster",
            spec=spec,
            backend=backend,
            seed=seed,
            estimates=estimates,
            estimated_length=estimated_length,
            metrics={
                "ari": float(self.ari),
                "elapsed_seconds": float(self.elapsed_seconds),
            },
            accounting=accounting,
            details={
                "ground_truth_shapes": list(self.ground_truth_shapes),
                "shape_measures": {
                    k: float(v) for k, v in self.shape_measures.items()
                },
                **self.details,
            },
        )


@dataclass
class ClassificationTaskResult:
    """Outcome of one classification-task run."""

    mechanism: str
    epsilon: float
    accuracy: float
    shapes_by_class: dict[int, list[str]]
    ground_truth_shapes: list[str]
    shape_measures: dict[str, float]
    elapsed_seconds: float
    extraction: LabeledShapeExtractionResult | None = None
    details: dict = field(default_factory=dict)
    #: Echo of the (resolved, where applicable) spec the run executed.
    spec: ExperimentSpec | None = None

    def to_run_result(self, *, backend: str = "inline", seed=None) -> RunResult:
        """This task outcome as the canonical structured artifact."""
        if self.extraction is not None:
            estimates = estimates_from_labeled(self.extraction)
            estimated_length = self.extraction.estimated_length
            accounting = accounting_payload(self.extraction.accountant)
        else:
            estimates = [
                {"shape": shape, "estimated_count": None, "label": int(label)}
                for label, shapes in sorted(self.shapes_by_class.items())
                for shape in shapes
            ]
            estimated_length = None
            accounting = {}
        spec = self.spec if self.spec is not None else ExperimentSpec(
            mechanism=self.mechanism, privacy=PrivacySpec(epsilon=self.epsilon)
        )
        return RunResult(
            task="classify",
            spec=spec,
            backend=backend,
            seed=seed,
            estimates=estimates,
            estimated_length=estimated_length,
            metrics={
                "accuracy": float(self.accuracy),
                "elapsed_seconds": float(self.elapsed_seconds),
            },
            accounting=accounting,
            details={
                "ground_truth_shapes": list(self.ground_truth_shapes),
                "shape_measures": {
                    k: float(v) for k, v in self.shape_measures.items()
                },
                **self.details,
            },
        )


# --------------------------------------------------------------------------- helpers


def ground_truth_shapes(
    dataset: LabeledDataset, transformer: CompressiveSAX
) -> dict[int, Shape]:
    """Per-class ground-truth shapes: Compressive SAX of each class's mean series."""
    prototypes = dataset.class_prototypes()
    return {label: transformer.transform(series) for label, series in prototypes.items()}


def _build_transformer(
    alphabet_size: int, segment_length: int, compress: bool
) -> CompressiveSAX:
    return CompressiveSAX(
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        normalize=True,
        compress=compress,
    )


def _resolve_transformer(transformer, spec: ExperimentSpec):
    return transformer if transformer is not None else _build_transformer(
        spec.sax.alphabet_size, spec.sax.segment_length, spec.sax.compress
    )


def _length_high_default(transformer, sequences: Sequence[Shape], requested: int | None) -> int:
    """Clip range upper bound: either the requested value or the 90th length percentile."""
    if requested is not None:
        return int(requested)
    lengths = [len(s) for s in sequences]
    return max(2, int(np.percentile(lengths, 90)))


def _transformer_alphabet_size(transformer) -> int:
    """Alphabet size of either a CompressiveSAX or a RawValueDiscretizer."""
    if hasattr(transformer, "alphabet_size"):
        return int(transformer.alphabet_size)
    return len(transformer.alphabet)


def _coerce_spec(
    mechanism,
    spec: ExperimentSpec | None,
    *,
    epsilon: float,
    alphabet_size: int,
    segment_length: int,
    metric: str,
    top_k: int | None,
    candidate_factor: int,
    length_high: int | None,
    compress: bool,
    options: dict,
) -> tuple[ExperimentSpec, MechanismEntry]:
    """Lift legacy keyword parameters into one ExperimentSpec (or pass one through)."""
    if isinstance(mechanism, ExperimentSpec):
        if spec is not None:
            raise ConfigurationError(
                "pass the ExperimentSpec either positionally or as spec=, not both"
            )
        spec = mechanism
    elif spec is not None:
        if not isinstance(spec, ExperimentSpec):
            raise ConfigurationError(
                f"spec must be an ExperimentSpec, got {type(spec).__name__}"
            )
        if mechanism not in ("privshape", spec.mechanism):
            # A non-default mechanism string alongside a conflicting spec is
            # a contradiction, not a tie-break; refuse rather than silently
            # ignore the explicit request.
            raise ConfigurationError(
                f"mechanism {mechanism!r} conflicts with spec.mechanism "
                f"{spec.mechanism!r}; set the mechanism inside the spec"
            )
    else:
        spec = ExperimentSpec(
            mechanism=mechanism,
            privacy=PrivacySpec(epsilon=epsilon),
            sax=SAXSpec(
                alphabet_size=alphabet_size,
                segment_length=segment_length,
                compress=compress,
            ),
            collection=CollectionSpec(
                top_k=int(top_k) if top_k is not None else None,
                metric=metric,
                length_high=int(length_high) if length_high is not None else None,
                candidate_factor=candidate_factor,
            ),
            options=options,
        )
    return spec, mechanism_registry.get(spec.mechanism)


# ------------------------------------------------------------------ clustering task


def run_clustering_task(
    dataset: LabeledDataset,
    mechanism: str | ExperimentSpec = "privshape",
    epsilon: float = 4.0,
    alphabet_size: int = 6,
    segment_length: int = 25,
    metric: str = "dtw",
    top_k: int | None = None,
    candidate_factor: int = 3,
    length_high: int | None = None,
    compress: bool = True,
    transformer=None,
    evaluation_size: int = 500,
    patternldp_sample_fraction: float = 0.1,
    rng: RngLike = None,
    spec: ExperimentSpec | None = None,
) -> ClusteringTaskResult:
    """Run the clustering-task evaluation for one mechanism (Fig. 9 / Table III).

    Parameters
    ----------
    dataset:
        Labelled raw time series (one per user); labels are only used for
        evaluation, never by the mechanisms.
    mechanism:
        A registered mechanism name (``repro.api.available_mechanisms()``:
        ``"privshape"``, ``"baseline"``, ``"patternldp"``, ``"pem"``,
        ``"pid"``, ...) — or a full :class:`ExperimentSpec`, in which case
        the remaining keyword parameters are ignored.
    epsilon, alphabet_size, segment_length, metric, top_k, candidate_factor:
        Mechanism and SAX parameters (paper defaults: ε=4, t=6, w=25, DTW,
        k = number of classes, c=3 for Symbols).
    compress / transformer:
        Ablation hooks — disable run-length compression, or supply a custom
        transformer (e.g. :class:`RawValueDiscretizer` for the Without-SAX
        ablation).
    evaluation_size:
        Number of series (stratified) used to compute the ARI; extraction
        always uses the full population.
    spec:
        Alternative to the keyword parameters: one composable
        :class:`ExperimentSpec` describing the whole run.  A spec is
        self-contained — it uses its *own* defaults (t=4, w=10, DTW), not
        this function's task-specific keyword defaults, so state the SAX
        parameters and metric explicitly when migrating a keyword call.
    """
    spec, entry = _coerce_spec(
        mechanism,
        spec,
        epsilon=epsilon,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        metric=metric,
        top_k=top_k,
        candidate_factor=candidate_factor,
        length_high=length_high,
        compress=compress,
        options={"sample_fraction": patternldp_sample_fraction},
    )
    generator = ensure_rng(rng if rng is not None else spec.rng_seed)
    resolved_top_k = (
        spec.collection.top_k if spec.collection.top_k is not None else dataset.n_classes
    )

    transformer = _resolve_transformer(transformer, spec)
    effective_alphabet = _transformer_alphabet_size(transformer)
    truth = ground_truth_shapes(
        dataset, _build_transformer(spec.sax.alphabet_size, spec.sax.segment_length, True)
    )
    truth_shapes = [truth[label] for label in sorted(truth)]

    evaluation = dataset.subsample(min(evaluation_size, len(dataset)), rng=generator)

    start = time.perf_counter()
    if entry.kind == KIND_PERTURBATION:
        perturber = entry.build(spec)
        perturbed = perturber.perturb_dataset(evaluation.series, rng=generator)
        kmeans = TimeSeriesKMeans(
            n_clusters=dataset.n_classes, metric="euclidean", rng=generator
        )
        predicted = kmeans.fit_predict(perturbed)
        elapsed = time.perf_counter() - start
        ari = adjusted_rand_index(evaluation.labels, predicted)
        center_transformer = _build_transformer(
            spec.sax.alphabet_size, spec.sax.segment_length, True
        )
        extracted_shapes = [
            center_transformer.transform(center) for center in kmeans.cluster_centers_
        ]
        measures = shape_quality_measures(
            extracted_shapes, truth_shapes, alphabet_size=spec.sax.alphabet_size
        )
        return ClusteringTaskResult(
            mechanism=spec.mechanism,
            epsilon=spec.privacy.epsilon,
            ari=ari,
            shapes=["".join(s) for s in extracted_shapes],
            ground_truth_shapes=["".join(s) for s in truth_shapes],
            shape_measures=measures,
            elapsed_seconds=elapsed,
            details={"n_evaluated": len(evaluation)},
            spec=spec,
        )

    sequences = transformer.transform_dataset(dataset.series)
    high = _length_high_default(transformer, sequences, spec.collection.length_high)
    resolved = spec.resolve(
        top_k=resolved_top_k, length_high=high, alphabet_size=effective_alphabet
    )
    extractor = entry.build(resolved)

    extraction = extractor.extract(sequences, rng=generator)
    elapsed = time.perf_counter() - start

    evaluation_sequences = transformer.transform_dataset(evaluation.series)
    if extraction.shapes:
        assignments = assign_to_shapes(
            evaluation_sequences,
            extraction.shapes,
            metric=resolved.collection.metric,
            alphabet_size=effective_alphabet,
        )
        ari = adjusted_rand_index(evaluation.labels, assignments)
    else:
        ari = 0.0
    measures = shape_quality_measures(
        extraction.shapes, truth_shapes, alphabet_size=effective_alphabet
    )
    return ClusteringTaskResult(
        mechanism=spec.mechanism,
        epsilon=spec.privacy.epsilon,
        ari=ari,
        shapes=extraction.as_strings(),
        ground_truth_shapes=["".join(s) for s in truth_shapes],
        shape_measures=measures,
        elapsed_seconds=elapsed,
        extraction=extraction,
        details={"estimated_length": extraction.estimated_length, "n_evaluated": len(evaluation)},
        spec=resolved,
    )


# -------------------------------------------------------------- classification task


def run_classification_task(
    dataset: LabeledDataset,
    mechanism: str | ExperimentSpec = "privshape",
    epsilon: float = 4.0,
    alphabet_size: int = 4,
    segment_length: int = 10,
    metric: str = "sed",
    top_k: int | None = None,
    candidate_factor: int = 3,
    length_high: int | None = None,
    compress: bool = True,
    transformer=None,
    evaluation_size: int = 500,
    test_fraction: float = 0.3,
    patternldp_sample_fraction: float = 0.1,
    patternldp_train_size: int = 1200,
    forest_size: int = 20,
    rng: RngLike = None,
    spec: ExperimentSpec | None = None,
) -> ClassificationTaskResult:
    """Run the classification-task evaluation for one mechanism (Fig. 11 / Table IV).

    Extraction mechanisms (PrivShape, the baseline, PEM) extract per-class
    shapes from the training users and classify held-out clean series by the
    nearest labelled shape.  Perturbation mechanisms (PatternLDP, PID)
    perturb the training series, train a random forest on them, and are
    evaluated on the same held-out clean series.  ``mechanism`` may also be a
    full :class:`ExperimentSpec` (see :func:`run_clustering_task`) — note a
    spec's own defaults include ``metric="dtw"``, not this task's ``"sed"``
    keyword default, so set the metric explicitly when migrating.
    """
    spec, entry = _coerce_spec(
        mechanism,
        spec,
        epsilon=epsilon,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        metric=metric,
        top_k=top_k,
        candidate_factor=candidate_factor,
        length_high=length_high,
        compress=compress,
        options={"sample_fraction": patternldp_sample_fraction},
    )
    generator = ensure_rng(rng if rng is not None else spec.rng_seed)
    # The paper sizes the OUE refinement at c*k*k cells — k candidates per the
    # k classes — so the per-class shape budget defaults to the class count.
    resolved_top_k = (
        spec.collection.top_k if spec.collection.top_k is not None else dataset.n_classes
    )

    transformer = _resolve_transformer(transformer, spec)
    effective_alphabet = _transformer_alphabet_size(transformer)
    truth = ground_truth_shapes(
        dataset, _build_transformer(spec.sax.alphabet_size, spec.sax.segment_length, True)
    )
    truth_shapes = [truth[label] for label in sorted(truth)]

    train, test = dataset.train_test_split(test_fraction=test_fraction, rng=generator)
    test = test.subsample(min(evaluation_size, len(test)), rng=generator)

    start = time.perf_counter()
    if entry.kind == KIND_PERTURBATION:
        # Value perturbation and the random-forest training are per-series
        # Python work, so the training population is capped; the extraction
        # mechanisms still see the full population.
        train_size = int(spec.options.get("train_size", patternldp_train_size))
        n_estimators = int(spec.options.get("forest_size", forest_size))
        train_subset = train.subsample(min(train_size, len(train)), rng=generator)
        perturber = entry.build(spec)
        perturbed_train = perturber.perturb_dataset(train_subset.series, rng=generator)
        forest = RandomForestClassifier(n_estimators=n_estimators, rng=generator)
        forest.fit_series(perturbed_train, train_subset.labels)
        predictions = forest.predict(series_to_matrix(test.series, length=forest.n_features_))
        elapsed = time.perf_counter() - start
        accuracy = accuracy_score(test.labels, predictions)

        center_transformer = _build_transformer(
            spec.sax.alphabet_size, spec.sax.segment_length, True
        )
        per_class_shapes: dict[int, list[str]] = {}
        extracted_for_measures: list[Shape] = []
        for label in train_subset.classes:
            members = [
                series
                for series, member_label in zip(perturbed_train, train_subset.labels)
                if member_label == label
            ]
            center = np.mean(np.vstack(members), axis=0)
            shape = center_transformer.transform(center)
            per_class_shapes[int(label)] = ["".join(shape)]
            extracted_for_measures.append(shape)
        measures = shape_quality_measures(
            extracted_for_measures, truth_shapes, alphabet_size=spec.sax.alphabet_size
        )
        return ClassificationTaskResult(
            mechanism=spec.mechanism,
            epsilon=spec.privacy.epsilon,
            accuracy=accuracy,
            shapes_by_class=per_class_shapes,
            ground_truth_shapes=["".join(s) for s in truth_shapes],
            shape_measures=measures,
            elapsed_seconds=elapsed,
            details={"n_train": len(train), "n_test": len(test)},
            spec=spec,
        )

    train_sequences = transformer.transform_dataset(train.series)
    high = _length_high_default(transformer, train_sequences, spec.collection.length_high)
    resolved = spec.resolve(
        top_k=resolved_top_k, length_high=high, alphabet_size=effective_alphabet
    )
    extractor = entry.build(resolved)

    extraction = extractor.extract_labeled(
        train_sequences, train.labels, n_classes=dataset.n_classes, rng=generator
    )
    elapsed = time.perf_counter() - start

    labelled_shapes = {
        label: shapes for label, shapes in extraction.shapes_by_class.items() if shapes
    }
    if labelled_shapes:
        classifier = NearestShapeClassifier(
            labelled_shapes=labelled_shapes,
            transformer=transformer,
            metric=resolved.collection.metric,
        )
        predictions = classifier.predict(test.series)
        accuracy = accuracy_score(test.labels, predictions)
    else:
        accuracy = 0.0

    representative = [
        extraction.shapes_by_class[label][0]
        for label in sorted(extraction.shapes_by_class)
        if extraction.shapes_by_class[label]
    ]
    measures = shape_quality_measures(
        representative, truth_shapes, alphabet_size=effective_alphabet
    )
    return ClassificationTaskResult(
        mechanism=spec.mechanism,
        epsilon=spec.privacy.epsilon,
        accuracy=accuracy,
        shapes_by_class=extraction.as_strings(),
        ground_truth_shapes=["".join(s) for s in truth_shapes],
        shape_measures=measures,
        elapsed_seconds=elapsed,
        extraction=extraction,
        details={
            "estimated_length": extraction.estimated_length,
            "n_train": len(train),
            "n_test": len(test),
        },
        spec=resolved,
    )
