"""End-to-end task pipelines reproducing the paper's evaluation protocol.

Two pipelines are provided, matching the two applications in Section V:

* :func:`run_clustering_task` — Symbols-style evaluation: extract shapes with
  PrivShape / the baseline (or perturb the raw data with PatternLDP + KMeans),
  assign every series to its closest shape, and score the partition with the
  Adjusted Rand Index.  Also reports the quantitative shape measures
  (DTW / SED / Euclidean against the ground-truth class shapes) of Table III.
* :func:`run_classification_task` — Trace-style evaluation: extract per-class
  shapes (or train a random forest on PatternLDP's perturbed output) and score
  classification accuracy on held-out clean data; reports Table IV measures.

Both functions return small result dataclasses that the benchmark harness
prints as the paper's rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.baselines.patternldp import PatternLDP
from repro.core.baseline import BaselineMechanism
from repro.core.config import BaselineConfig, PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.trie import Shape
from repro.datasets.base import LabeledDataset
from repro.exceptions import ConfigurationError
from repro.mining.forest import RandomForestClassifier, series_to_matrix
from repro.mining.kmeans import TimeSeriesKMeans
from repro.mining.matching import shape_quality_measures
from repro.mining.metrics import accuracy_score, adjusted_rand_index
from repro.mining.nearest import NearestShapeClassifier, assign_to_shapes
from repro.sax.compressive import CompressiveSAX
from repro.utils.rng import RngLike, ensure_rng

MECHANISMS = ("privshape", "baseline", "patternldp")


@dataclass
class ClusteringTaskResult:
    """Outcome of one clustering-task run (one mechanism, one parameter setting)."""

    mechanism: str
    epsilon: float
    ari: float
    shapes: list[str]
    ground_truth_shapes: list[str]
    shape_measures: dict[str, float]
    elapsed_seconds: float
    extraction: ShapeExtractionResult | None = None
    details: dict = field(default_factory=dict)


@dataclass
class ClassificationTaskResult:
    """Outcome of one classification-task run."""

    mechanism: str
    epsilon: float
    accuracy: float
    shapes_by_class: dict[int, list[str]]
    ground_truth_shapes: list[str]
    shape_measures: dict[str, float]
    elapsed_seconds: float
    extraction: LabeledShapeExtractionResult | None = None
    details: dict = field(default_factory=dict)


# --------------------------------------------------------------------------- helpers


def ground_truth_shapes(
    dataset: LabeledDataset, transformer: CompressiveSAX
) -> dict[int, Shape]:
    """Per-class ground-truth shapes: Compressive SAX of each class's mean series."""
    prototypes = dataset.class_prototypes()
    return {label: transformer.transform(series) for label, series in prototypes.items()}


def _build_transformer(
    alphabet_size: int, segment_length: int, compress: bool
) -> CompressiveSAX:
    return CompressiveSAX(
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        normalize=True,
        compress=compress,
    )


def _resolve_transformer(transformer, alphabet_size: int, segment_length: int, compress: bool):
    return transformer if transformer is not None else _build_transformer(
        alphabet_size, segment_length, compress
    )


def _length_high_default(transformer, sequences: Sequence[Shape], requested: int | None) -> int:
    """Clip range upper bound: either the requested value or the 90th length percentile."""
    if requested is not None:
        return int(requested)
    lengths = [len(s) for s in sequences]
    return max(2, int(np.percentile(lengths, 90)))


def _transformer_alphabet_size(transformer) -> int:
    """Alphabet size of either a CompressiveSAX or a RawValueDiscretizer."""
    if hasattr(transformer, "alphabet_size"):
        return int(transformer.alphabet_size)
    return len(transformer.alphabet)


# ------------------------------------------------------------------ clustering task


def run_clustering_task(
    dataset: LabeledDataset,
    mechanism: str = "privshape",
    epsilon: float = 4.0,
    alphabet_size: int = 6,
    segment_length: int = 25,
    metric: str = "dtw",
    top_k: int | None = None,
    candidate_factor: int = 3,
    length_high: int | None = None,
    compress: bool = True,
    transformer=None,
    evaluation_size: int = 500,
    patternldp_sample_fraction: float = 0.1,
    rng: RngLike = None,
) -> ClusteringTaskResult:
    """Run the clustering-task evaluation for one mechanism (Fig. 9 / Table III).

    Parameters
    ----------
    dataset:
        Labelled raw time series (one per user); labels are only used for
        evaluation, never by the mechanisms.
    mechanism:
        ``"privshape"``, ``"baseline"``, or ``"patternldp"``.
    epsilon, alphabet_size, segment_length, metric, top_k, candidate_factor:
        Mechanism and SAX parameters (paper defaults: ε=4, t=6, w=25, DTW,
        k = number of classes, c=3 for Symbols).
    compress / transformer:
        Ablation hooks — disable run-length compression, or supply a custom
        transformer (e.g. :class:`RawValueDiscretizer` for the Without-SAX
        ablation).
    evaluation_size:
        Number of series (stratified) used to compute the ARI; extraction
        always uses the full population.
    """
    if mechanism not in MECHANISMS:
        raise ConfigurationError(f"mechanism must be one of {MECHANISMS}, got {mechanism!r}")
    generator = ensure_rng(rng)
    top_k = int(top_k) if top_k is not None else dataset.n_classes

    transformer = _resolve_transformer(transformer, alphabet_size, segment_length, compress)
    effective_alphabet = _transformer_alphabet_size(transformer)
    truth = ground_truth_shapes(
        dataset, _build_transformer(alphabet_size, segment_length, True)
    )
    truth_shapes = [truth[label] for label in sorted(truth)]

    evaluation = dataset.subsample(min(evaluation_size, len(dataset)), rng=generator)

    start = time.perf_counter()
    if mechanism == "patternldp":
        perturber = PatternLDP(epsilon=epsilon, sample_fraction=patternldp_sample_fraction)
        perturbed = perturber.perturb_dataset(evaluation.series, rng=generator)
        kmeans = TimeSeriesKMeans(
            n_clusters=dataset.n_classes, metric="euclidean", rng=generator
        )
        predicted = kmeans.fit_predict(perturbed)
        elapsed = time.perf_counter() - start
        ari = adjusted_rand_index(evaluation.labels, predicted)
        center_transformer = _build_transformer(alphabet_size, segment_length, True)
        extracted_shapes = [
            center_transformer.transform(center) for center in kmeans.cluster_centers_
        ]
        measures = shape_quality_measures(
            extracted_shapes, truth_shapes, alphabet_size=alphabet_size
        )
        return ClusteringTaskResult(
            mechanism=mechanism,
            epsilon=epsilon,
            ari=ari,
            shapes=["".join(s) for s in extracted_shapes],
            ground_truth_shapes=["".join(s) for s in truth_shapes],
            shape_measures=measures,
            elapsed_seconds=elapsed,
            details={"n_evaluated": len(evaluation)},
        )

    sequences = transformer.transform_dataset(dataset.series)
    high = _length_high_default(transformer, sequences, length_high)
    if mechanism == "privshape":
        config = PrivShapeConfig(
            epsilon=epsilon,
            top_k=top_k,
            alphabet_size=effective_alphabet,
            metric=metric,
            length_low=1,
            length_high=high,
            candidate_factor=candidate_factor,
        )
        extractor = PrivShape(config)
    else:
        config = BaselineConfig(
            epsilon=epsilon,
            top_k=top_k,
            alphabet_size=effective_alphabet,
            metric=metric,
            length_low=1,
            length_high=high,
        )
        extractor = BaselineMechanism(config)

    extraction = extractor.extract(sequences, rng=generator)
    elapsed = time.perf_counter() - start

    evaluation_sequences = transformer.transform_dataset(evaluation.series)
    if extraction.shapes:
        assignments = assign_to_shapes(
            evaluation_sequences,
            extraction.shapes,
            metric=metric,
            alphabet_size=effective_alphabet,
        )
        ari = adjusted_rand_index(evaluation.labels, assignments)
    else:
        ari = 0.0
    measures = shape_quality_measures(
        extraction.shapes, truth_shapes, alphabet_size=effective_alphabet
    )
    return ClusteringTaskResult(
        mechanism=mechanism,
        epsilon=epsilon,
        ari=ari,
        shapes=extraction.as_strings(),
        ground_truth_shapes=["".join(s) for s in truth_shapes],
        shape_measures=measures,
        elapsed_seconds=elapsed,
        extraction=extraction,
        details={"estimated_length": extraction.estimated_length, "n_evaluated": len(evaluation)},
    )


# -------------------------------------------------------------- classification task


def run_classification_task(
    dataset: LabeledDataset,
    mechanism: str = "privshape",
    epsilon: float = 4.0,
    alphabet_size: int = 4,
    segment_length: int = 10,
    metric: str = "sed",
    top_k: int | None = None,
    candidate_factor: int = 3,
    length_high: int | None = None,
    compress: bool = True,
    transformer=None,
    evaluation_size: int = 500,
    test_fraction: float = 0.3,
    patternldp_sample_fraction: float = 0.1,
    patternldp_train_size: int = 1200,
    forest_size: int = 20,
    rng: RngLike = None,
) -> ClassificationTaskResult:
    """Run the classification-task evaluation for one mechanism (Fig. 11 / Table IV).

    PrivShape and the baseline extract per-class shapes from the training
    users and classify held-out clean series by the nearest labelled shape.
    PatternLDP perturbs the training series, trains a random forest on them,
    and is evaluated on the same held-out clean series.
    """
    if mechanism not in MECHANISMS:
        raise ConfigurationError(f"mechanism must be one of {MECHANISMS}, got {mechanism!r}")
    generator = ensure_rng(rng)
    # The paper sizes the OUE refinement at c*k*k cells — k candidates per the
    # k classes — so the per-class shape budget defaults to the class count.
    top_k = int(top_k) if top_k is not None else dataset.n_classes

    transformer = _resolve_transformer(transformer, alphabet_size, segment_length, compress)
    effective_alphabet = _transformer_alphabet_size(transformer)
    truth = ground_truth_shapes(
        dataset, _build_transformer(alphabet_size, segment_length, True)
    )
    truth_shapes = [truth[label] for label in sorted(truth)]

    train, test = dataset.train_test_split(test_fraction=test_fraction, rng=generator)
    test = test.subsample(min(evaluation_size, len(test)), rng=generator)

    start = time.perf_counter()
    if mechanism == "patternldp":
        # PatternLDP's value perturbation and the random-forest training are
        # per-series Python work, so its training population is capped; the
        # extraction mechanisms still see the full population.
        train_subset = train.subsample(min(patternldp_train_size, len(train)), rng=generator)
        perturber = PatternLDP(epsilon=epsilon, sample_fraction=patternldp_sample_fraction)
        perturbed_train = perturber.perturb_dataset(train_subset.series, rng=generator)
        forest = RandomForestClassifier(n_estimators=forest_size, rng=generator)
        forest.fit_series(perturbed_train, train_subset.labels)
        predictions = forest.predict(series_to_matrix(test.series, length=forest.n_features_))
        elapsed = time.perf_counter() - start
        accuracy = accuracy_score(test.labels, predictions)

        center_transformer = _build_transformer(alphabet_size, segment_length, True)
        per_class_shapes: dict[int, list[str]] = {}
        extracted_for_measures: list[Shape] = []
        for label in train_subset.classes:
            members = [
                series for series, l in zip(perturbed_train, train_subset.labels) if l == label
            ]
            center = np.mean(np.vstack(members), axis=0)
            shape = center_transformer.transform(center)
            per_class_shapes[int(label)] = ["".join(shape)]
            extracted_for_measures.append(shape)
        measures = shape_quality_measures(
            extracted_for_measures, truth_shapes, alphabet_size=alphabet_size
        )
        return ClassificationTaskResult(
            mechanism=mechanism,
            epsilon=epsilon,
            accuracy=accuracy,
            shapes_by_class=per_class_shapes,
            ground_truth_shapes=["".join(s) for s in truth_shapes],
            shape_measures=measures,
            elapsed_seconds=elapsed,
            details={"n_train": len(train), "n_test": len(test)},
        )

    train_sequences = transformer.transform_dataset(train.series)
    high = _length_high_default(transformer, train_sequences, length_high)
    if mechanism == "privshape":
        config = PrivShapeConfig(
            epsilon=epsilon,
            top_k=top_k,
            alphabet_size=effective_alphabet,
            metric=metric,
            length_low=1,
            length_high=high,
            candidate_factor=candidate_factor,
        )
        extractor = PrivShape(config)
    else:
        config = BaselineConfig(
            epsilon=epsilon,
            top_k=top_k,
            alphabet_size=effective_alphabet,
            metric=metric,
            length_low=1,
            length_high=high,
        )
        extractor = BaselineMechanism(config)

    extraction = extractor.extract_labeled(
        train_sequences, train.labels, n_classes=dataset.n_classes, rng=generator
    )
    elapsed = time.perf_counter() - start

    labelled_shapes = {
        label: shapes for label, shapes in extraction.shapes_by_class.items() if shapes
    }
    if labelled_shapes:
        classifier = NearestShapeClassifier(
            labelled_shapes=labelled_shapes,
            transformer=transformer,
            metric=metric,
        )
        predictions = classifier.predict(test.series)
        accuracy = accuracy_score(test.labels, predictions)
    else:
        accuracy = 0.0

    representative = [
        extraction.shapes_by_class[label][0]
        for label in sorted(extraction.shapes_by_class)
        if extraction.shapes_by_class[label]
    ]
    measures = shape_quality_measures(
        representative, truth_shapes, alphabet_size=effective_alphabet
    )
    return ClassificationTaskResult(
        mechanism=mechanism,
        epsilon=epsilon,
        accuracy=accuracy,
        shapes_by_class=extraction.as_strings(),
        ground_truth_shapes=["".join(s) for s in truth_shapes],
        shape_measures=measures,
        elapsed_seconds=elapsed,
        extraction=extraction,
        details={
            "estimated_length": extraction.estimated_length,
            "n_train": len(train),
            "n_test": len(test),
        },
    )
