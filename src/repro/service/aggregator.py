"""Sharded streaming aggregator for one collection round.

Each shard keeps its own integer :class:`~repro.service.rounds.RoundAccumulator`
and consumes report batches with vectorized merges (``bincount`` / column
sums) — no per-user Python loops on the hot path.  Because every shard state
is an int64 count vector, merging shards at :meth:`finalize_round` is exact
integer addition: a sharded aggregate equals the unsharded one bit for bit,
for any report routing and any batch sizes.
"""

from __future__ import annotations


from repro.exceptions import ProtocolStateError
from repro.service.plan import RoundSpec
from repro.service.reports import ReportBatch
from repro.service.rounds import RoundAccumulator, accumulate, new_accumulator


class ShardedAggregator:
    """Consumes report batches for one round across ``n_shards`` partitions."""

    def __init__(self, spec: RoundSpec, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.spec = spec
        self.n_shards = int(n_shards)
        self._shards = [new_accumulator(spec) for _ in range(self.n_shards)]
        self._finalized = False

    @property
    def n_reports(self) -> int:
        """Total reports consumed so far across all shards."""
        return sum(shard.n_reports for shard in self._shards)

    def consume(self, batch: ReportBatch) -> None:
        """Route a report batch to shards by user id and merge it (vectorized)."""
        if self._finalized:
            raise ProtocolStateError("aggregator already finalized")
        if batch.round_index != self.spec.index or batch.kind != self.spec.kind:
            raise ProtocolStateError(
                f"batch for round {batch.round_index} ({batch.kind}) does not "
                f"match open round {self.spec.index} ({self.spec.kind})"
            )
        if len(batch) == 0:
            return
        if self.n_shards == 1:
            accumulate(self.spec, self._shards[0], batch.payload)
            return
        shard_ids = batch.user_ids % self.n_shards
        for shard in range(self.n_shards):
            mask = shard_ids == shard
            if mask.any():
                accumulate(self.spec, self._shards[shard], batch.payload[mask])

    def finalize_round(self) -> RoundAccumulator:
        """Merge all shard states into the round's final aggregate (exact)."""
        self._finalized = True
        merged = new_accumulator(self.spec)
        for shard in self._shards:
            merged.merge(shard)
        return merged
