"""Sharded streaming aggregator for one collection round.

Each shard keeps its own integer :class:`~repro.service.rounds.RoundAccumulator`
and consumes report batches with vectorized merges (``bincount`` / column
sums) — no per-user Python loops on the hot path.  Because every shard state
is an int64 count vector, merging shards at :meth:`finalize_round` is exact
integer addition: a sharded aggregate equals the unsharded one bit for bit,
for any report routing and any batch sizes.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import ProtocolStateError
from repro.obs.tracing import trace_span
from repro.service.plan import RoundSpec
from repro.service.reports import ReportBatch
from repro.service.rounds import RoundAccumulator, accumulate, new_accumulator


class ShardedAggregator:
    """Consumes report batches for one round across ``n_shards`` partitions."""

    def __init__(self, spec: RoundSpec, n_shards: int = 1) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self.spec = spec
        self.n_shards = int(n_shards)
        self._shards = [new_accumulator(spec) for _ in range(self.n_shards)]
        self._finalized = False

    @property
    def n_reports(self) -> int:
        """Total reports consumed so far across all shards."""
        return sum(shard.n_reports for shard in self._shards)

    @property
    def finalized(self) -> bool:
        """True once :meth:`finalize_round` has been called."""
        return self._finalized

    def _check_open(self, batch: ReportBatch) -> None:
        if self._finalized:
            raise ProtocolStateError("aggregator already finalized")
        if batch.round_index != self.spec.index or batch.kind != self.spec.kind:
            raise ProtocolStateError(
                f"batch for round {batch.round_index} ({batch.kind}) does not "
                f"match open round {self.spec.index} ({self.spec.kind})"
            )

    def route(self, batch: ReportBatch) -> Iterator[tuple[int, ReportBatch]]:
        """Split a batch into its non-empty ``(shard index, sub-batch)`` parts.

        Routing is by ``user_id % n_shards``, the same partition
        :meth:`consume` applies; a server with one worker per shard uses this
        to hand each worker exactly the rows its shard owns.
        """
        if len(batch) == 0:
            return
        if self.n_shards == 1:
            yield 0, batch
            return
        shard_ids = batch.user_ids % self.n_shards
        for shard in range(self.n_shards):
            mask = shard_ids == shard
            if mask.any():
                yield shard, batch.take(mask)

    def consume_shard(self, shard: int, batch: ReportBatch) -> None:
        """Merge an already-routed sub-batch into one shard's state."""
        self._check_open(batch)
        accumulate(self.spec, self._shards[shard], batch.payload)

    def consume(self, batch: ReportBatch) -> None:
        """Route a report batch to shards by user id and merge it (vectorized)."""
        self._check_open(batch)
        for shard, sub_batch in self.route(batch):
            accumulate(self.spec, self._shards[shard], sub_batch.payload)

    # ---------------------------------------------------------------- snapshot

    def to_state(self) -> dict:
        """Loss-free plain-data snapshot of the mid-round aggregation state."""
        return {
            "spec": self.spec.to_dict(),
            "n_shards": self.n_shards,
            "finalized": self._finalized,
            "shards": [shard.to_state() for shard in self._shards],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardedAggregator":
        """Rebuild the exact aggregator serialized by :meth:`to_state`."""
        aggregator = cls(
            RoundSpec.from_dict(state["spec"]), n_shards=int(state["n_shards"])
        )
        aggregator._shards = [
            RoundAccumulator.from_state(shard) for shard in state["shards"]
        ]
        if len(aggregator._shards) != aggregator.n_shards:
            raise ProtocolStateError(
                f"snapshot carries {len(aggregator._shards)} shard states for "
                f"{aggregator.n_shards} shards"
            )
        aggregator._finalized = bool(state["finalized"])
        return aggregator

    def merged(self) -> RoundAccumulator:
        """An exact merged snapshot of all shard states, without finalizing.

        Cluster workers ship this to the coordinator at ``collect`` time: the
        aggregator stays open, so a replay after a coordinator-side failure
        can still add batches and be collected again.
        """
        merged = new_accumulator(self.spec)
        for shard in self._shards:
            merged.merge(shard)
        return merged

    def finalize_round(self) -> RoundAccumulator:
        """Merge all shard states into the round's final aggregate (exact)."""
        with trace_span(
            "aggregator.finalize_round",
            round=self.spec.index,
            kind=self.spec.kind,
            shards=self.n_shards,
        ):
            self._finalized = True
            return self.merged()
