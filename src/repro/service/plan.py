"""Collection plan: the frozen schedule of a round-based PrivShape run.

A :class:`CollectionPlan` freezes everything that is knowable before any user
reports: how the population is partitioned into the four disjoint groups
(Pa — length estimation, Pb — sub-shape estimation, Pc — trie expansion,
Pd — two-level refinement), how Pc users are assigned to one trie level each,
and the per-phase privacy budget.  Group membership is a pure PRF function of
the user id, so a client can determine *locally* which round it participates
in and the server never materializes per-user assignment state — memory stays
independent of population size.

A :class:`RoundSpec` is what the server publishes to open one round: the
round kind, its PRF key, the perturbation domain, and everything else a
stateless client needs to produce its report.  Specs are plain data and
serializable (``to_dict``/``from_dict``) so they can cross a wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any, Mapping

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.trie import Shape
from repro.utils.prf import prf_integers, prf_uniforms

#: Population group indices, in the paper's (Pa, Pb, Pc, Pd) order.
GROUP_LENGTH = 0
GROUP_SUBSHAPE = 1
GROUP_EXPAND = 2
GROUP_REFINE = 3

GROUP_NAMES = ("Pa", "Pb", "Pc", "Pd")

#: Round kinds, in protocol order.
KIND_LENGTH = "length"
KIND_SUBSHAPE = "subshape"
KIND_EXPAND = "expand"
KIND_REFINE = "refine"
KIND_REFINE_LABELED = "refine_labeled"


@dataclass(frozen=True)
class RoundSpec:
    """Everything a stateless client needs to report in one round."""

    index: int
    kind: str
    key: int
    epsilon: float
    group: int
    metric: str
    alphabet: tuple[str, ...]
    #: length round: clipping bounds.
    length_low: int = 0
    length_high: int = 0
    #: subshape round: the estimated frequent length ℓ_S.
    est_length: int = 0
    #: expand round: the trie level whose Pc sub-group reports (0-based).
    level: int = -1
    #: expand / refine rounds: the candidate shapes, server-published.
    candidates: tuple[Shape, ...] = ()
    #: labelled refinement: number of classes in the joint (candidate, label) cells.
    n_classes: int = 0

    @property
    def n_cells(self) -> int:
        """Number of unary-encoding cells in a refinement round."""
        return max(len(self.candidates), 1) * max(self.n_classes, 1)

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-serializable) of the spec."""
        payload = asdict(self)
        payload["alphabet"] = list(self.alphabet)
        payload["candidates"] = [list(c) for c in self.candidates]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RoundSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        data = dict(payload)
        data["alphabet"] = tuple(data["alphabet"])
        data["candidates"] = tuple(tuple(c) for c in data["candidates"])
        return cls(**data)


@dataclass(frozen=True)
class CollectionPlan:
    """Frozen population partition + phase budgets for one protocol run."""

    split_key: int
    fractions: tuple[float, float, float, float]
    epsilon: float
    metric: str
    alphabet: tuple[str, ...]
    _cumulative: np.ndarray = field(init=False, repr=False, compare=False)

    @classmethod
    def freeze(cls, config: PrivShapeConfig, split_key: int) -> "CollectionPlan":
        """Freeze the schedule for ``config`` under the given split key."""
        return cls(
            split_key=int(split_key),
            fractions=tuple(float(f) for f in config.population_fractions),
            epsilon=float(config.epsilon),
            metric=str(config.metric),
            alphabet=tuple(config.alphabet),
        )

    def __post_init__(self) -> None:
        cumulative = np.cumsum(np.asarray(self.fractions, dtype=float))[:-1]
        object.__setattr__(self, "_cumulative", cumulative)

    def group_of(self, user_ids: np.ndarray) -> np.ndarray:
        """Population group (0..3) of every user — a pure function of the id.

        Group sizes are multinomial around the configured fractions instead of
        exact, which is what a real service sees anyway; the groups remain
        disjoint, preserving the parallel-composition privacy argument.
        """
        draws = prf_uniforms(self.split_key, user_ids, slot=0)
        return np.searchsorted(self._cumulative, draws, side="right").astype(np.int64)

    def expand_level_of(self, user_ids: np.ndarray, n_levels: int) -> np.ndarray:
        """The trie level (0-based) each Pc user reports at, uniform over levels."""
        return prf_integers(self.split_key, user_ids, max(n_levels, 1), slot=1)

    def participant_mask(self, spec: RoundSpec, user_ids: np.ndarray) -> np.ndarray:
        """Boolean mask of which ``user_ids`` report in ``spec``'s round."""
        user_ids = np.asarray(user_ids, dtype=np.int64)
        mask = self.group_of(user_ids) == spec.group
        if spec.kind == KIND_EXPAND:
            mask &= self.expand_level_of(user_ids, max(spec.est_length, 1)) == spec.level
        return mask

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (JSON-serializable) — what a server publishes to clients."""
        return {
            "split_key": int(self.split_key),
            "fractions": list(self.fractions),
            "epsilon": float(self.epsilon),
            "metric": self.metric,
            "alphabet": list(self.alphabet),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CollectionPlan":
        """Rebuild the exact plan from :meth:`to_dict` output."""
        return cls(
            split_key=int(payload["split_key"]),
            fractions=tuple(float(f) for f in payload["fractions"]),
            epsilon=float(payload["epsilon"]),
            metric=str(payload["metric"]),
            alphabet=tuple(payload["alphabet"]),
        )

    def describe(self) -> list[dict[str, Any]]:
        """Static skeleton of the round schedule (before any data arrives)."""
        return [
            {
                "phase": "length estimation",
                "group": GROUP_NAMES[GROUP_LENGTH],
                "fraction": self.fractions[GROUP_LENGTH],
                "mechanism": "GRR",
                "epsilon": self.epsilon,
            },
            {
                "phase": "sub-shape estimation",
                "group": GROUP_NAMES[GROUP_SUBSHAPE],
                "fraction": self.fractions[GROUP_SUBSHAPE],
                "mechanism": "GRR (padding-and-sampling)",
                "epsilon": self.epsilon,
            },
            {
                "phase": "trie expansion (one round per level)",
                "group": GROUP_NAMES[GROUP_EXPAND],
                "fraction": self.fractions[GROUP_EXPAND],
                "mechanism": "Exponential Mechanism",
                "epsilon": self.epsilon,
            },
            {
                "phase": "two-level refinement",
                "group": GROUP_NAMES[GROUP_REFINE],
                "fraction": self.fractions[GROUP_REFINE],
                "mechanism": "OUE",
                "epsilon": self.epsilon,
            },
        ]
