"""Population representations for the round-based collection service.

The service works on *code matrices* instead of tuples of symbol strings so
that every client-side operation (clipping, sub-shape lookup, prefix
grouping, closest-candidate assignment) is a vectorized numpy operation.
A population source yields ``(user_ids, EncodedPopulation)`` batches and can
be iterated once per round, which is how the driver streams millions of users
through the protocol in constant memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.core.trie import Shape
from repro.utils.prf import prf_uniforms
from repro.utils.rng import RngLike, ensure_rng

#: Code used to right-pad rows of a code matrix beyond each sequence's length.
PAD_CODE = -1


def worker_slices(n_users: int, workers: int) -> list[tuple[int, int]]:
    """Contiguous, disjoint, covering user-id slices, one per worker.

    The one partition rule every process fan-out uses (the load generator's
    OS workers and the sharded executor), so user-id coverage can never
    diverge between them.
    """
    bounds = np.linspace(0, n_users, max(int(workers), 1) + 1).astype(int)
    return [
        (int(bounds[i]), int(bounds[i + 1]))
        for i in range(len(bounds) - 1)
        if bounds[i + 1] > bounds[i]
    ]


@dataclass
class EncodedPopulation:
    """A batch of users' compressed sequences as a padded int16 code matrix.

    ``codes[i, j]`` is the alphabet index of user ``i``'s ``j``-th symbol, or
    :data:`PAD_CODE` beyond ``lengths[i]``.  ``labels`` is optional and only
    used by the labelled refinement round.
    """

    codes: np.ndarray
    lengths: np.ndarray
    alphabet: tuple[str, ...]
    labels: np.ndarray | None = None

    @classmethod
    def from_sequences(
        cls,
        sequences: Sequence[Shape],
        alphabet: Sequence[str],
        labels: Sequence[int] | None = None,
    ) -> "EncodedPopulation":
        """Encode tuples of symbols into a padded code matrix."""
        alphabet = tuple(alphabet)
        index = {symbol: code for code, symbol in enumerate(alphabet)}
        n = len(sequences)
        width = max((len(s) for s in sequences), default=1) or 1
        codes = np.full((n, width), PAD_CODE, dtype=np.int16)
        lengths = np.zeros(n, dtype=np.int32)
        for i, sequence in enumerate(sequences):
            lengths[i] = len(sequence)
            for j, symbol in enumerate(sequence):
                codes[i, j] = index[symbol]
        label_array = None if labels is None else np.asarray(labels, dtype=np.int64)
        return cls(codes=codes, lengths=lengths, alphabet=alphabet, labels=label_array)

    def __len__(self) -> int:
        return self.codes.shape[0]

    @property
    def n_users(self) -> int:
        """Population size (source-protocol accessor)."""
        return len(self)

    def take(self, indices: np.ndarray) -> "EncodedPopulation":
        """Row subset (used to keep only one round's participants)."""
        return EncodedPopulation(
            codes=self.codes[indices],
            lengths=self.lengths[indices],
            alphabet=self.alphabet,
            labels=None if self.labels is None else self.labels[indices],
        )

    def padded_codes(self, width: int) -> np.ndarray:
        """The code matrix truncated or right-padded (with PAD_CODE) to ``width``."""
        current = self.codes.shape[1]
        if current >= width:
            return self.codes[:, :width]
        pad = np.full((len(self), width - current), PAD_CODE, dtype=self.codes.dtype)
        return np.hstack([self.codes, pad])

    def decode_row(self, row: np.ndarray) -> Shape:
        """Turn one (possibly padded) code row back into a symbol tuple."""
        return tuple(self.alphabet[c] for c in row if c >= 0)

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[tuple[np.ndarray, "EncodedPopulation"]]:
        """Stream the population as ``(user_ids, sub-population)`` batches."""
        yield from self.iter_range(0, len(self), batch_size)

    def iter_range(
        self, start: int, stop: int, batch_size: int
    ) -> Iterator[tuple[np.ndarray, "EncodedPopulation"]]:
        """Stream the user-id slice ``[start, stop)`` as batches.

        Slicing by user id lets several load-generation workers cover disjoint
        parts of one population; the union of the slices is exactly
        :meth:`iter_batches` because user ids are absolute row indexes.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        start = max(int(start), 0)
        stop = min(int(stop), len(self))
        for batch_start in range(start, stop, batch_size):
            batch_stop = min(batch_start + batch_size, stop)
            yield np.arange(batch_start, batch_stop, dtype=np.int64), self.take(
                np.arange(batch_start, batch_stop)
            )


def default_templates(
    alphabet: Sequence[str],
    n_templates: int = 6,
    length: int = 5,
    rng: RngLike = 0,
) -> list[Shape]:
    """Deterministic pool of distinct template shapes for synthetic populations.

    Templates are random non-repeating symbol walks (valid compressed shapes),
    generated once at configuration time — per-user choices are made with the
    PRF inside :class:`SyntheticShapeStream`.
    """
    generator = ensure_rng(rng)
    symbols = list(alphabet)
    templates: list[Shape] = []
    seen: set[Shape] = set()
    attempts = 0
    while len(templates) < n_templates and attempts < 200 * n_templates:
        attempts += 1
        walk: list[str] = []
        for _ in range(length):
            choices = [s for s in symbols if not walk or s != walk[-1]]
            walk.append(choices[int(generator.integers(0, len(choices)))])
        shape = tuple(walk)
        if shape not in seen:
            seen.add(shape)
            templates.append(shape)
    return templates


@dataclass
class SyntheticShapeStream:
    """A deterministic, constant-memory stream of synthetic users.

    Each user draws one template shape (PRF-keyed by user id) from a weighted
    pool and optionally truncates it by one symbol (``length_jitter``), so the
    population has a known frequent-shape structure at any size.  Batches are
    regenerated on the fly every pass; peak memory depends only on
    ``batch_size``, never on ``n_users``.
    """

    n_users: int
    alphabet: tuple[str, ...]
    templates: tuple[Shape, ...]
    weights: tuple[float, ...] | None = None
    seed: int = 0
    length_jitter: float = 0.0
    _template_codes: np.ndarray = field(init=False, repr=False)
    _template_lengths: np.ndarray = field(init=False, repr=False)
    _cum_weights: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if not self.templates:
            raise ValueError("templates must not be empty")
        self.alphabet = tuple(self.alphabet)
        self.templates = tuple(tuple(t) for t in self.templates)
        index = {symbol: code for code, symbol in enumerate(self.alphabet)}
        width = max(len(t) for t in self.templates)
        self._template_codes = np.full(
            (len(self.templates), width), PAD_CODE, dtype=np.int16
        )
        self._template_lengths = np.zeros(len(self.templates), dtype=np.int32)
        for i, template in enumerate(self.templates):
            self._template_lengths[i] = len(template)
            for j, symbol in enumerate(template):
                self._template_codes[i, j] = index[symbol]
        weights = (
            np.ones(len(self.templates), dtype=float)
            if self.weights is None
            else np.asarray(self.weights, dtype=float)
        )
        if weights.size != len(self.templates) or np.any(weights <= 0):
            raise ValueError("weights must be positive, one per template")
        self._cum_weights = np.cumsum(weights / weights.sum())

    def iter_batches(
        self, batch_size: int
    ) -> Iterator[tuple[np.ndarray, EncodedPopulation]]:
        """Regenerate the user stream deterministically, ``batch_size`` at a time."""
        yield from self.iter_range(0, self.n_users, batch_size)

    def iter_range(
        self, start: int, stop: int, batch_size: int
    ) -> Iterator[tuple[np.ndarray, EncodedPopulation]]:
        """Regenerate the user-id slice ``[start, stop)`` of the stream.

        Users are PRF functions of their id, so any slice reproduces exactly
        the rows :meth:`iter_batches` would emit for those ids — this is what
        lets multiple load-generation processes share one population.
        """
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        width = self._template_codes.shape[1]
        columns = np.arange(width)
        range_start = max(int(start), 0)
        range_stop = min(int(stop), self.n_users)
        for start in range(range_start, range_stop, batch_size):
            stop = min(start + batch_size, range_stop)
            user_ids = np.arange(start, stop, dtype=np.int64)
            picks = self._pick_templates(user_ids)
            codes = self._template_codes[picks].copy()
            lengths = self._template_lengths[picks].copy()
            if self.length_jitter > 0.0:
                truncate = (
                    prf_uniforms(self.seed, user_ids, slot=1) < self.length_jitter
                ) & (lengths > 2)
                lengths[truncate] -= 1
                codes[columns[None, :] >= lengths[:, None]] = PAD_CODE
            yield user_ids, EncodedPopulation(
                codes=codes, lengths=lengths, alphabet=self.alphabet
            )

    def _pick_templates(self, user_ids: np.ndarray) -> np.ndarray:
        """Template index per user (a pure PRF function of the user id)."""
        picks = np.searchsorted(
            self._cum_weights, prf_uniforms(self.seed, user_ids, slot=0), side="right"
        )
        return np.minimum(picks, len(self.templates) - 1)


@dataclass
class DriftingShapeStream(SyntheticShapeStream):
    """A synthetic stream whose template mixture shifts at scripted breakpoints.

    User ids play the role of arrival time: users with ids below
    ``breakpoints[0]`` draw from ``mixtures[0]``, users in
    ``[breakpoints[i-1], breakpoints[i])`` from ``mixtures[i]``, and so on —
    ``len(mixtures) == len(breakpoints) + 1``.  Within each segment the draw
    is the same PRF function of the user id as :class:`SyntheticShapeStream`,
    so any slice is reproducible and a single-mixture drifting stream is
    byte-identical to the plain stream with those weights.  This is the
    scripted-drift scenario the continual subsystem's detector is tested
    against: sliding windows that cross a breakpoint see the dominant shape
    mixture change.
    """

    breakpoints: tuple[int, ...] = ()
    mixtures: tuple[tuple[float, ...], ...] = ()
    _breakpoint_ids: np.ndarray = field(init=False, repr=False)
    _segment_cum: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.breakpoints = tuple(int(b) for b in self.breakpoints)
        self.mixtures = tuple(tuple(float(w) for w in m) for m in self.mixtures)
        if len(self.mixtures) != len(self.breakpoints) + 1:
            raise ValueError(
                f"need len(breakpoints) + 1 = {len(self.breakpoints) + 1} "
                f"mixtures, got {len(self.mixtures)}"
            )
        if any(b <= 0 for b in self.breakpoints) or any(
            b2 <= b1 for b1, b2 in zip(self.breakpoints, self.breakpoints[1:])
        ):
            raise ValueError(
                f"breakpoints must be positive and strictly increasing, "
                f"got {self.breakpoints}"
            )
        rows = []
        for mixture in self.mixtures:
            weights = np.asarray(mixture, dtype=float)
            if weights.size != len(self.templates) or np.any(weights <= 0):
                raise ValueError(
                    "every mixture needs one positive weight per template"
                )
            rows.append(np.cumsum(weights / weights.sum()))
        self._breakpoint_ids = np.asarray(self.breakpoints, dtype=np.int64)
        self._segment_cum = np.vstack(rows)

    def segment_of(self, user_id: int) -> int:
        """Index of the mixture segment a user id falls in."""
        return int(np.searchsorted(self._breakpoint_ids, user_id, side="right"))

    def _pick_templates(self, user_ids: np.ndarray) -> np.ndarray:
        segments = np.searchsorted(self._breakpoint_ids, user_ids, side="right")
        uniforms = prf_uniforms(self.seed, user_ids, slot=0)
        # Row-wise searchsorted: count of cumulative weights <= u is exactly
        # np.searchsorted(cum, u, side="right") per user.
        picks = np.sum(self._segment_cum[segments] <= uniforms[:, None], axis=1)
        return np.minimum(picks, len(self.templates) - 1)
