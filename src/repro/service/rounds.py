"""Per-round client encoding and server aggregation.

Each protocol round has three pure pieces:

* ``encode_reports`` — the *client* side: given a round spec and a batch of
  users, produce one compact LDP report per user.  All randomness comes from
  the PRF keyed by ``(round key, user id)``, so reports are identical under
  any batch partition.
* ``new_accumulator`` / ``accumulate`` / ``RoundAccumulator.merge`` — the
  *server* side: integer count state that is updated with vectorized numpy
  (``bincount`` / column sums; no per-user Python loops) and merges exactly
  across shards because integer addition is associative.

The offline :class:`~repro.core.privshape.PrivShape` path calls these very
functions on the full population in one batch; the streaming
:class:`~repro.service.driver.ProtocolDriver` calls them batch by batch
through :class:`~repro.service.aggregator.ShardedAggregator` — which is why
the two paths produce byte-identical aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.selection import candidate_scores
from repro.core.subshape import all_subshapes
from repro.distance.registry import shape_distance
from repro.exceptions import DomainError
from repro.ldp.exponential import ExponentialMechanism
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.unary import UnaryEncoding
from repro.obs.profiling import profile_kernel
from repro.service.plan import (
    KIND_EXPAND,
    KIND_LENGTH,
    KIND_REFINE,
    KIND_REFINE_LABELED,
    KIND_SUBSHAPE,
    RoundSpec,
)
from repro.service.population import EncodedPopulation
from repro.utils.prf import derive_key, prf_integers, prf_uniforms


@dataclass
class RoundAccumulator:
    """Integer count state of one round (shard-mergeable by addition)."""

    counts: np.ndarray
    n_reports: int = 0

    def merge(self, other: "RoundAccumulator") -> None:
        """Fold another shard's state into this one (exact: int64 addition)."""
        self.counts += other.counts
        self.n_reports += other.n_reports

    def to_state(self) -> dict:
        """Loss-free plain-data snapshot (JSON-serializable; int64 exact)."""
        return {
            "counts": self.counts.tolist(),
            "shape": list(self.counts.shape),
            "n_reports": int(self.n_reports),
        }

    @classmethod
    def from_state(cls, state: dict) -> "RoundAccumulator":
        """Rebuild the exact accumulator serialized by :meth:`to_state`."""
        counts = np.asarray(state["counts"], dtype=np.int64).reshape(
            tuple(state["shape"])
        )
        return cls(counts=counts, n_reports=int(state["n_reports"]))


def length_oracle(spec: RoundSpec) -> GeneralizedRandomizedResponse | None:
    """The GRR oracle of a length round, or None for a single-value domain."""
    domain = list(range(spec.length_low, spec.length_high + 1))
    if len(domain) < 2:
        return None
    return GeneralizedRandomizedResponse(spec.epsilon, domain=domain)


def subshape_oracle(spec: RoundSpec) -> GeneralizedRandomizedResponse:
    """The GRR oracle over the ``t·(t-1)`` ordered symbol pairs."""
    return GeneralizedRandomizedResponse(
        spec.epsilon, domain=all_subshapes(spec.alphabet)
    )


def refine_oracle(spec: RoundSpec) -> UnaryEncoding | None:
    """The OUE oracle of a refinement round, or None for a single cell."""
    if spec.n_cells < 2:
        return None
    return UnaryEncoding(spec.epsilon, domain=list(range(spec.n_cells)), optimized=True)


def _pair_code_table(alphabet: tuple[str, ...]) -> np.ndarray:
    """``table[a, b]`` = domain index of symbol-code pair (a, b), -1 if invalid."""
    pairs = all_subshapes(alphabet)
    index = {symbol: code for code, symbol in enumerate(alphabet)}
    table = np.full((len(alphabet), len(alphabet)), -1, dtype=np.int64)
    for i, (first, second) in enumerate(pairs):
        table[index[first], index[second]] = i
    return table


def new_accumulator(spec: RoundSpec) -> RoundAccumulator:
    """Fresh all-zero count state of the right shape for ``spec``."""
    if spec.kind == KIND_LENGTH:
        size = spec.length_high - spec.length_low + 1
        return RoundAccumulator(np.zeros(size, dtype=np.int64))
    if spec.kind == KIND_SUBSHAPE:
        n_levels = max(spec.est_length - 1, 1)
        n_pairs = len(spec.alphabet) * (len(spec.alphabet) - 1)
        return RoundAccumulator(np.zeros((n_levels, n_pairs), dtype=np.int64))
    if spec.kind == KIND_EXPAND:
        return RoundAccumulator(np.zeros(max(len(spec.candidates), 1), dtype=np.int64))
    if spec.kind in (KIND_REFINE, KIND_REFINE_LABELED):
        return RoundAccumulator(np.zeros(spec.n_cells, dtype=np.int64))
    raise DomainError(f"unknown round kind {spec.kind!r}")


# --------------------------------------------------------------------- encode


def _encode_length(spec: RoundSpec, population: EncodedPopulation, user_ids: np.ndarray) -> np.ndarray:
    clipped = np.clip(population.lengths, spec.length_low, spec.length_high).astype(
        np.int64
    ) - spec.length_low
    oracle = length_oracle(spec)
    if oracle is None:  # degenerate single-length domain: nothing to hide
        return clipped.astype(np.int32)
    # Kernel hooks are per batch (not per report) and are shared no-ops
    # unless a profiler is installed — see repro.obs.profiling.
    with profile_kernel("grr.encode_batch"):
        return oracle.encode_batch(clipped, user_ids, spec.key).astype(np.int32)


def _encode_subshape(spec: RoundSpec, population: EncodedPopulation, user_ids: np.ndarray) -> np.ndarray:
    oracle = subshape_oracle(spec)
    table = _pair_code_table(spec.alphabet)
    padded = population.padded_codes(spec.est_length)
    # Level j in {1, .., ℓ_S - 1}, chosen by each user (padding-and-sampling).
    levels = 1 + prf_integers(spec.key, user_ids, spec.est_length - 1, slot=0)
    rows = np.arange(len(user_ids))
    first = padded[rows, levels - 1].astype(np.int64)
    second = padded[rows, levels].astype(np.int64)
    valid = (first >= 0) & (second >= 0) & (first != second)
    pair_indices = np.where(valid, table[first, second], 0)
    # Users whose sampled pair contains padding report pure noise: a uniform
    # domain element, perturbed like any other value.
    noise = prf_integers(spec.key, user_ids, oracle.domain_size, slot=1)
    true_indices = np.where(valid, pair_indices, noise)
    # The GRR perturbation draws from an independent sub-key so its slots do
    # not collide with the level/noise draws above.
    with profile_kernel("grr.encode_batch"):
        reported = oracle.encode_batch(true_indices, user_ids, derive_key(spec.key, 2))
    return np.stack([levels, reported], axis=1).astype(np.int32)


def _encode_expand(
    spec: RoundSpec,
    population: EncodedPopulation,
    user_ids: np.ndarray,
    memo: dict | None,
) -> np.ndarray:
    candidates = [tuple(c) for c in spec.candidates]
    mechanism = ExponentialMechanism(spec.epsilon)
    prefix_length = max(max(len(c) for c in candidates), 1)
    rows = population.padded_codes(prefix_length)
    unique_rows, inverse = np.unique(rows, axis=0, return_inverse=True)
    uniforms = prf_uniforms(spec.key, user_ids, slot=0)
    selected = np.empty(len(user_ids), dtype=np.int64)
    # The CDF depends only on the prefix and the round's candidate set, so it
    # is memoized across a round's batches (distance scoring dominates the
    # encode cost, especially for DTW).
    cdf_memo = memo.setdefault("expand_cdfs", {}) if memo is not None else {}
    for group, row in enumerate(unique_rows):
        key = row.tobytes()
        cdf = cdf_memo.get(key)
        if cdf is None:
            prefix = population.decode_row(row)
            scores = candidate_scores(prefix, candidates, spec.metric, len(spec.alphabet))
            cdf = mechanism.selection_cdf(scores)
            cdf_memo[key] = cdf
        members = inverse == group
        with profile_kernel("em.sample_from_cdf"):
            selected[members] = ExponentialMechanism.sample_from_cdf(
                cdf, uniforms[members]
            )
    return selected.astype(np.int32)


def _common_prefix_length(sequence: tuple, candidate: tuple) -> int:
    length = 0
    for a, b in zip(sequence, candidate):
        if a != b:
            break
        length += 1
    return length


def _closest_with_prefix_affinity(
    sequence: tuple, candidates: list, metric: str, alphabet_size: int
) -> int:
    """Closest candidate; exact distance ties prefer the longest shared prefix.

    Leaf candidates are trie paths, so a user whose compressed sequence is
    shorter than the trie height often sits at *exactly* the same edit
    distance from several candidates (her own prefix extended by different
    tails, or an unrelated candidate of matching length).  A first-index
    tie-break would pile every such user onto one arbitrary candidate, which
    lets two classes collide in one refinement cell and makes the class
    assignment a coin flip.  Preferring the candidate that shares the longest
    prefix with the user (the quantity Lemma 1 reasons about) keeps those
    users on their own branch of the trie.
    """
    distances = np.array(
        [
            shape_distance(sequence, candidate, metric=metric, alphabet_size=alphabet_size)
            for candidate in candidates
        ],
        dtype=float,
    )
    tied = np.flatnonzero(distances == distances.min())
    if tied.size == 1:
        return int(tied[0])
    prefix_lengths = [_common_prefix_length(sequence, candidates[i]) for i in tied]
    return int(tied[int(np.argmax(prefix_lengths))])


def _closest_per_user(
    spec: RoundSpec, population: EncodedPopulation, memo: dict | None = None
) -> np.ndarray:
    """Deterministic closest-candidate index per user (grouped by unique sequence)."""
    candidates = [tuple(c) for c in spec.candidates]
    unique_rows, inverse = np.unique(population.codes, axis=0, return_inverse=True)
    closest_memo = memo.setdefault("refine_closest", {}) if memo is not None else {}
    closest = np.empty(len(unique_rows), dtype=np.int64)
    for group, row in enumerate(unique_rows):
        key = row.tobytes()
        index = closest_memo.get(key)
        if index is None:
            index = _closest_with_prefix_affinity(
                population.decode_row(row), candidates, spec.metric, len(spec.alphabet)
            )
            closest_memo[key] = index
        closest[group] = index
    return closest[inverse]


def _encode_refine(
    spec: RoundSpec,
    population: EncodedPopulation,
    user_ids: np.ndarray,
    memo: dict | None,
) -> np.ndarray:
    oracle = refine_oracle(spec)
    if oracle is None:  # single cell: the report carries no choice, only presence
        return np.ones((len(user_ids), 1), dtype=np.uint8)
    cells = _closest_per_user(spec, population, memo)
    if spec.kind == KIND_REFINE_LABELED:
        if population.labels is None:
            raise DomainError("labelled refinement requires a labelled population")
        cells = cells * spec.n_classes + (population.labels % spec.n_classes)
    with profile_kernel("oue.encode_batch"):
        return oracle.encode_batch(cells, user_ids, spec.key)


def encode_reports(
    spec: RoundSpec,
    population: EncodedPopulation,
    user_ids: np.ndarray,
    memo: dict | None = None,
) -> np.ndarray:
    """One LDP report per user of ``population`` for the given round.

    The payload layout per round kind:

    * ``length`` — int32 ``(n,)`` perturbed GRR indices;
    * ``subshape`` — int32 ``(n, 2)`` columns (sampled level, perturbed pair);
    * ``expand`` — int32 ``(n,)`` Exponential-Mechanism selections;
    * ``refine`` / ``refine_labeled`` — uint8 ``(n, cells)`` OUE bit vectors.

    ``memo`` optionally carries pure per-round computations (per-prefix EM
    CDFs, per-sequence closest candidates) across the batches of one round;
    pass the same dict for every batch of a round and a fresh one for the
    next round.  Memoization never changes a report — it caches pure
    functions of (round spec, user data).
    """
    user_ids = np.asarray(user_ids, dtype=np.int64)
    if len(population) != len(user_ids):
        raise ValueError("population batch and user_ids must have the same length")
    if spec.kind == KIND_LENGTH:
        return _encode_length(spec, population, user_ids)
    if spec.kind == KIND_SUBSHAPE:
        return _encode_subshape(spec, population, user_ids)
    if spec.kind == KIND_EXPAND:
        return _encode_expand(spec, population, user_ids, memo)
    if spec.kind in (KIND_REFINE, KIND_REFINE_LABELED):
        return _encode_refine(spec, population, user_ids, memo)
    raise DomainError(f"unknown round kind {spec.kind!r}")


# ------------------------------------------------------------------ aggregate


def accumulate(spec: RoundSpec, accumulator: RoundAccumulator, payload: np.ndarray) -> None:
    """Fold a batch of reports into the round's count state (vectorized)."""
    if payload.size == 0:
        return
    with profile_kernel("accumulate"):
        _accumulate(spec, accumulator, payload)


def _accumulate(spec: RoundSpec, accumulator: RoundAccumulator, payload: np.ndarray) -> None:
    if spec.kind == KIND_LENGTH:
        accumulator.counts += np.bincount(
            payload.astype(np.int64), minlength=accumulator.counts.size
        )
        accumulator.n_reports += payload.shape[0]
    elif spec.kind == KIND_SUBSHAPE:
        n_levels, n_pairs = accumulator.counts.shape
        flat = (payload[:, 0].astype(np.int64) - 1) * n_pairs + payload[:, 1]
        accumulator.counts += np.bincount(
            flat, minlength=n_levels * n_pairs
        ).reshape(n_levels, n_pairs)
        accumulator.n_reports += payload.shape[0]
    elif spec.kind == KIND_EXPAND:
        accumulator.counts += np.bincount(
            payload.astype(np.int64), minlength=accumulator.counts.size
        )
        accumulator.n_reports += payload.shape[0]
    elif spec.kind in (KIND_REFINE, KIND_REFINE_LABELED):
        accumulator.counts += payload.astype(np.int64).sum(axis=0)
        accumulator.n_reports += payload.shape[0]
    else:
        raise DomainError(f"unknown round kind {spec.kind!r}")
