"""Stateless client-side reporter for the collection service.

A :class:`ClientReporter` holds no protocol state: given a published
:class:`~repro.service.plan.RoundSpec` and a batch of users, it produces one
compact LDP report per user.  All randomness is PRF-keyed by
``(round key, user id)`` inside :mod:`repro.service.rounds`, so the same user
always produces the same report for the same round no matter how the
population is batched — which is what makes streaming collection equivalent
to the offline path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.trie import Shape
from repro.service.plan import RoundSpec
from repro.service.population import EncodedPopulation
from repro.service.reports import ReportBatch
from repro.service.rounds import encode_reports


class ClientReporter:
    """Produces serializable report batches for published round specs.

    The reporter holds no *protocol* state; it only memoizes pure per-round
    computations (per-prefix Exponential-Mechanism CDFs, per-sequence closest
    candidates) so that streaming many batches of one round does not redo the
    same distance scoring.  The memo is dropped whenever a new round key
    appears and never changes any report.
    """

    def __init__(self) -> None:
        self._memo_key: int | None = None
        self._memo: dict = {}

    def _round_memo(self, spec: RoundSpec) -> dict:
        if self._memo_key != spec.key:
            self._memo_key = spec.key
            self._memo = {}
        return self._memo

    def make_reports(
        self,
        spec: RoundSpec,
        population: EncodedPopulation,
        user_ids: np.ndarray,
    ) -> ReportBatch:
        """Encode one report per user of ``population`` (vectorized)."""
        return ReportBatch(
            round_index=spec.index,
            kind=spec.kind,
            user_ids=np.asarray(user_ids, dtype=np.int64),
            payload=encode_reports(spec, population, user_ids, memo=self._round_memo(spec)),
        )

    def make_report(
        self,
        spec: RoundSpec,
        sequence: Sequence[str] | Shape,
        user_id: int,
        label: int | None = None,
    ) -> ReportBatch:
        """Single-user convenience wrapper around :meth:`make_reports`."""
        population = EncodedPopulation.from_sequences(
            [tuple(sequence)],
            spec.alphabet,
            labels=None if label is None else [int(label)],
        )
        return self.make_reports(
            spec, population, np.array([int(user_id)], dtype=np.int64)
        )
