"""End-to-end round orchestration: the streaming protocol driver.

:class:`ProtocolDriver` wires the pieces together for one collection run:

1. ask the :class:`~repro.service.protocol.PrivShapeEngine` for the next
   :class:`RoundSpec`;
2. stream the population source batch by batch, let the stateless
   :class:`~repro.service.client.ClientReporter` encode the round's
   participants, optionally push every batch through the wire format
   (``serialize=True``), and feed it to a
   :class:`~repro.service.aggregator.ShardedAggregator`;
3. close the round with the merged aggregate and repeat until the engine
   reports the protocol done.

Peak memory is bounded by ``batch_size`` (plus the engine's candidate trie),
never by the population size, so the same driver handles a 1 000-user test
and a multi-million-user simulation.  Given the same master seed, the driver
returns byte-identical results to the offline ``PrivShape.extract()`` path —
see ``tests/service/test_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.results import ShapeExtractionResult
from repro.obs.profiling import (
    PHASE_AGGREGATE,
    PHASE_ENCODE,
    PHASE_ESTIMATE,
    PHASE_TRANSPORT,
    profile_phase,
)
from repro.obs.tracing import trace_span
from repro.service.aggregator import ShardedAggregator
from repro.service.client import ClientReporter
from repro.service.metrics import ThroughputMeter, peak_rss_bytes
from repro.service.protocol import PrivShapeEngine
from repro.service.reports import ReportBatch
from repro.utils.rng import RngLike


@dataclass
class RoundStats:
    """Observability record of one completed round."""

    index: int
    kind: str
    level: int
    participants: int
    elapsed_seconds: float

    @property
    def reports_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.participants / self.elapsed_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.index,
            "kind": self.kind,
            "level": self.level,
            "participants": self.participants,
            "elapsed_seconds": self.elapsed_seconds,
            "reports_per_second": self.reports_per_second,
        }


@dataclass
class DriverStats:
    """Observability record of one completed protocol run."""

    rounds: list[RoundStats] = field(default_factory=list)
    total_reports: int = 0
    total_seconds: float = 0.0
    peak_rss_bytes: int = 0

    @property
    def reports_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.total_reports / self.total_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "rounds": [r.to_dict() for r in self.rounds],
            "total_reports": self.total_reports,
            "total_seconds": self.total_seconds,
            "reports_per_second": self.reports_per_second,
            "peak_rss_bytes": self.peak_rss_bytes,
        }


class ProtocolDriver:
    """Round-based PrivShape collection over a streaming population source."""

    def __init__(
        self,
        config: PrivShapeConfig,
        population,
        batch_size: int = 8192,
        n_shards: int = 1,
        serialize: bool = False,
        rng: RngLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        # Accept a resolved repro.api ExperimentSpec as well (duck-typed; see
        # PrivShapeEngine.__init__ for why the api package is not imported).
        if not isinstance(config, PrivShapeConfig) and hasattr(config, "to_privshape_config"):
            config = config.to_privshape_config()
        self.config = config
        self.population = population
        self.batch_size = int(batch_size)
        self.n_shards = int(n_shards)
        self.serialize = bool(serialize)
        self.rng = rng
        self.stats = DriverStats()

    def run(self, engine: PrivShapeEngine | None = None) -> ShapeExtractionResult:
        """Execute every round of the protocol and return the extraction result.

        ``engine`` lets a caller inject a pre-built engine (the continual
        subsystem passes carry-over-seeded and refresh-mode engines); by
        default a fresh one is constructed from the driver's config and rng.
        """
        if engine is None:
            engine = PrivShapeEngine(self.config, rng=self.rng)
        reporter = ClientReporter()
        total = ThroughputMeter()
        total.start()
        while (spec := engine.open_round()) is not None:
            aggregator = ShardedAggregator(spec, n_shards=self.n_shards)
            meter = ThroughputMeter()
            meter.start()
            # Telemetry attributes this round's wall time to the protocol
            # phases (encode / transport / aggregate / estimate); both hooks
            # are shared no-ops unless a capture is active, and neither ever
            # touches the engine's generator.
            with trace_span("round", round=spec.index, kind=spec.kind,
                            level=spec.level):
                for user_ids, batch_population in self.population.iter_batches(
                    self.batch_size
                ):
                    mask = engine.plan.participant_mask(spec, user_ids)
                    if not mask.any():
                        continue
                    participants = np.flatnonzero(mask)
                    with profile_phase(PHASE_ENCODE, spec.index):
                        batch = reporter.make_reports(
                            spec,
                            batch_population.take(participants),
                            user_ids[participants],
                        )
                    if self.serialize:
                        with profile_phase(PHASE_TRANSPORT, spec.index):
                            batch = ReportBatch.from_bytes(batch.to_bytes())
                    with profile_phase(PHASE_AGGREGATE, spec.index):
                        aggregator.consume(batch)
                    meter.add(len(batch))
                with profile_phase(PHASE_AGGREGATE, spec.index):
                    aggregate = aggregator.finalize_round()
                with profile_phase(PHASE_ESTIMATE, spec.index):
                    engine.close_round(spec, aggregate)
            meter.stop()
            self.stats.rounds.append(
                RoundStats(
                    index=spec.index,
                    kind=spec.kind,
                    level=spec.level,
                    participants=aggregate.n_reports,
                    elapsed_seconds=meter.elapsed_seconds,
                )
            )
            total.add(aggregate.n_reports)
        total.stop()
        self.stats.total_reports = total.reports
        self.stats.total_seconds = total.elapsed_seconds
        self.stats.peak_rss_bytes = peak_rss_bytes()
        return engine.finalize()
