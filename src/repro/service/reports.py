"""Serializable report batches — the collection service's wire format.

A :class:`ReportBatch` carries one round's reports for a batch of users as
compact numpy records: a small JSON header (round index, kind, dtypes) plus
the raw little-endian array buffers.  OUE bit-vector payloads are packed to
one bit per cell on the wire (``np.packbits``), so a refinement report costs
``ceil(cells / 8)`` bytes per user.

Serialization is lossless: ``ReportBatch.from_bytes(batch.to_bytes())``
reproduces the exact arrays, which the service tests assert and the driver
can exercise end-to-end (``serialize=True``) without changing any result.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

_HEADER_LENGTH_BYTES = 4
#: Payload kinds stored as packed bits on the wire.
_BIT_MATRIX_KINDS = ("refine", "refine_labeled")


@dataclass
class ReportBatch:
    """One round's reports for a batch of users (client → aggregator unit)."""

    round_index: int
    kind: str
    user_ids: np.ndarray
    payload: np.ndarray

    def __post_init__(self) -> None:
        self.user_ids = np.ascontiguousarray(self.user_ids, dtype=np.int64)
        self.payload = np.ascontiguousarray(self.payload)
        if self.payload.shape[0] != self.user_ids.shape[0]:
            raise ValueError(
                f"payload rows ({self.payload.shape[0]}) must match "
                f"user_ids ({self.user_ids.shape[0]})"
            )

    def __len__(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def n_reports(self) -> int:
        """Number of user reports in the batch."""
        return len(self)

    def take(self, mask_or_indices: np.ndarray) -> "ReportBatch":
        """Row subset (used to route reports to shards)."""
        return ReportBatch(
            round_index=self.round_index,
            kind=self.kind,
            user_ids=self.user_ids[mask_or_indices],
            payload=self.payload[mask_or_indices],
        )

    # ---------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing binary frame."""
        payload = self.payload
        bit_columns = None
        if self.kind in _BIT_MATRIX_KINDS and payload.dtype == np.uint8:
            bit_columns = int(payload.shape[1])
            payload = np.packbits(payload, axis=1)
        payload = np.ascontiguousarray(payload, dtype=payload.dtype.newbyteorder("<"))
        user_ids = np.ascontiguousarray(self.user_ids, dtype="<i8")
        header = {
            "round_index": int(self.round_index),
            "kind": self.kind,
            "n": len(self),
            "payload_dtype": payload.dtype.str,
            "payload_shape": list(payload.shape),
            "bit_columns": bit_columns,
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return (
            len(header_bytes).to_bytes(_HEADER_LENGTH_BYTES, "big")
            + header_bytes
            + user_ids.tobytes()
            + payload.tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReportBatch":
        """Reconstruct the exact batch serialized by :meth:`to_bytes`."""
        header_size = int.from_bytes(data[:_HEADER_LENGTH_BYTES], "big")
        offset = _HEADER_LENGTH_BYTES + header_size
        header = json.loads(data[_HEADER_LENGTH_BYTES:offset].decode("utf-8"))
        n = int(header["n"])
        user_ids = np.frombuffer(data, dtype="<i8", count=n, offset=offset).astype(
            np.int64
        )
        offset += n * 8
        dtype = np.dtype(header["payload_dtype"])
        shape = tuple(header["payload_shape"])
        count = int(np.prod(shape)) if shape else 0
        payload = (
            np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .astype(dtype.newbyteorder("="))
        )
        if header["bit_columns"] is not None:
            payload = np.unpackbits(payload, axis=1, count=int(header["bit_columns"]))
        return cls(
            round_index=int(header["round_index"]),
            kind=header["kind"],
            user_ids=user_ids,
            payload=payload,
        )
