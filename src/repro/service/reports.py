"""Serializable report batches — the collection service's wire format.

A :class:`ReportBatch` carries one round's reports for a batch of users as
compact numpy records: a small JSON header (round index, kind, dtypes) plus
the raw little-endian array buffers.  OUE bit-vector payloads are packed to
one bit per cell on the wire (``np.packbits``), so a refinement report costs
``ceil(cells / 8)`` bytes per user.

Serialization is lossless: ``ReportBatch.from_bytes(batch.to_bytes())``
reproduces the exact arrays, which the service tests assert and the driver
can exercise end-to-end (``serialize=True``) without changing any result.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DomainError, WireFormatError

_HEADER_LENGTH_BYTES = 4
#: Largest JSON header a well-formed frame can carry (a defensive bound — real
#: headers are under 200 bytes).
_MAX_HEADER_BYTES = 1 << 16
#: Payload kinds stored as packed bits on the wire.
_BIT_MATRIX_KINDS = ("refine", "refine_labeled")
#: Per-kind wire contract: (unpacked dtype kinds accepted, payload ndim,
#: exact column count or None).  Length/expand reports are GRR / EM index
#: vectors, subshape is exactly (sampled level, perturbed pair) columns,
#: refinement is an OUE bit matrix whose width the round spec checks.
_KIND_CONTRACTS: dict[str, tuple[tuple[str, ...], int, int | None]] = {
    "length": (("i", "u"), 1, None),
    "subshape": (("i", "u"), 2, 2),
    "expand": (("i", "u"), 1, None),
    "refine": (("u",), 2, None),
    "refine_labeled": (("u",), 2, None),
}


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise WireFormatError(message)


@dataclass
class ReportBatch:
    """One round's reports for a batch of users (client → aggregator unit)."""

    round_index: int
    kind: str
    user_ids: np.ndarray
    payload: np.ndarray

    def __post_init__(self) -> None:
        self.user_ids = np.ascontiguousarray(self.user_ids, dtype=np.int64)
        self.payload = np.ascontiguousarray(self.payload)
        if self.payload.shape[0] != self.user_ids.shape[0]:
            raise ValueError(
                f"payload rows ({self.payload.shape[0]}) must match "
                f"user_ids ({self.user_ids.shape[0]})"
            )

    def __len__(self) -> int:
        return int(self.user_ids.shape[0])

    @property
    def n_reports(self) -> int:
        """Number of user reports in the batch."""
        return len(self)

    def take(self, mask_or_indices: np.ndarray) -> "ReportBatch":
        """Row subset (used to route reports to shards)."""
        return ReportBatch(
            round_index=self.round_index,
            kind=self.kind,
            user_ids=self.user_ids[mask_or_indices],
            payload=self.payload[mask_or_indices],
        )

    # ---------------------------------------------------------- serialization

    def to_bytes(self) -> bytes:
        """Serialize to a self-describing binary frame."""
        payload = self.payload
        bit_columns = None
        if self.kind in _BIT_MATRIX_KINDS and payload.dtype == np.uint8:
            bit_columns = int(payload.shape[1])
            payload = np.packbits(payload, axis=1)
        payload = np.ascontiguousarray(payload, dtype=payload.dtype.newbyteorder("<"))
        user_ids = np.ascontiguousarray(self.user_ids, dtype="<i8")
        header = {
            "round_index": int(self.round_index),
            "kind": self.kind,
            "n": len(self),
            "payload_dtype": payload.dtype.str,
            "payload_shape": list(payload.shape),
            "bit_columns": bit_columns,
        }
        header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
        return (
            len(header_bytes).to_bytes(_HEADER_LENGTH_BYTES, "big")
            + header_bytes
            + user_ids.tobytes()
            + payload.tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ReportBatch":
        """Reconstruct the exact batch serialized by :meth:`to_bytes`.

        Input is treated as hostile (it typically arrives over a socket):
        every header field is type/range-checked, the payload dtype and shape
        must match the declared round kind, and the frame length must account
        for every byte — truncated, padded, or type-confused frames raise
        :class:`~repro.exceptions.WireFormatError` instead of leaking numpy
        or ``KeyError`` internals.
        """
        _require(isinstance(data, (bytes, bytearray, memoryview)), "frame must be bytes")
        data = bytes(data)
        _require(len(data) >= _HEADER_LENGTH_BYTES, "frame shorter than its length prefix")
        header_size = int.from_bytes(data[:_HEADER_LENGTH_BYTES], "big")
        _require(0 < header_size <= _MAX_HEADER_BYTES, f"implausible header size {header_size}")
        offset = _HEADER_LENGTH_BYTES + header_size
        _require(len(data) >= offset, "frame truncated inside the header")
        try:
            header = json.loads(data[_HEADER_LENGTH_BYTES:offset].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"header is not valid JSON: {exc}") from exc
        _require(isinstance(header, dict), "header must be a JSON object")
        missing = {
            "round_index", "kind", "n", "payload_dtype", "payload_shape", "bit_columns",
        } - header.keys()
        _require(not missing, f"header is missing fields {sorted(missing)}")

        round_index = header["round_index"]
        _require(
            isinstance(round_index, int) and not isinstance(round_index, bool)
            and round_index >= 0,
            f"round_index must be a non-negative integer, got {round_index!r}",
        )
        kind = header["kind"]
        _require(kind in _KIND_CONTRACTS, f"unknown round kind {kind!r}")
        n = header["n"]
        _require(
            isinstance(n, int) and not isinstance(n, bool) and n >= 0,
            f"n must be a non-negative integer, got {n!r}",
        )
        try:
            dtype = np.dtype(header["payload_dtype"])
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"invalid payload dtype {header['payload_dtype']!r}"
            ) from exc
        _require(
            dtype.kind in ("i", "u") and dtype.itemsize <= 8,
            f"payload dtype {dtype} is not an allowed integer type",
        )
        shape_field = header["payload_shape"]
        _require(
            isinstance(shape_field, list)
            and 1 <= len(shape_field) <= 2
            and all(
                isinstance(d, int) and not isinstance(d, bool) and d >= 0
                for d in shape_field
            ),
            f"payload_shape must be a list of 1-2 non-negative ints, got {shape_field!r}",
        )
        shape = tuple(shape_field)
        _require(
            shape[0] == n,
            f"payload rows ({shape[0]}) must match the declared user count ({n})",
        )
        bit_columns = header["bit_columns"]
        if bit_columns is not None:
            _require(
                isinstance(bit_columns, int) and not isinstance(bit_columns, bool),
                f"bit_columns must be an integer or null, got {bit_columns!r}",
            )
            _require(
                kind in _BIT_MATRIX_KINDS and dtype == np.uint8 and len(shape) == 2,
                f"bit packing is only valid for uint8 {_BIT_MATRIX_KINDS} matrices",
            )
            _require(
                8 * (shape[1] - 1) < bit_columns <= 8 * shape[1],
                f"bit_columns ({bit_columns}) inconsistent with {shape[1]} packed bytes",
            )

        # math.prod over Python ints cannot overflow, so a hostile shape like
        # [4, 2**62] fails the length equation instead of wrapping through
        # int64 arithmetic and sneaking past it.
        count = math.prod(shape)
        expected = offset + n * 8 + count * dtype.itemsize
        _require(
            len(data) == expected,
            f"frame length {len(data)} does not match the declared "
            f"{expected} bytes (truncated or padded frame)",
        )
        user_ids = np.frombuffer(data, dtype="<i8", count=n, offset=offset).astype(
            np.int64
        )
        offset += n * 8
        payload = (
            np.frombuffer(data, dtype=dtype, count=count, offset=offset)
            .reshape(shape)
            .astype(dtype.newbyteorder("="))
        )
        if bit_columns is not None:
            payload = np.unpackbits(payload, axis=1, count=int(bit_columns))
        expected_kinds, expected_ndim, expected_columns = _KIND_CONTRACTS[kind]
        _require(
            payload.ndim == expected_ndim and payload.dtype.kind in expected_kinds,
            f"{kind} payload must be a {expected_ndim}-d integer array, "
            f"got {payload.dtype} with shape {payload.shape}",
        )
        _require(
            expected_columns is None or payload.shape[1] == expected_columns,
            f"{kind} payload must have exactly {expected_columns} columns, "
            f"got shape {payload.shape}",
        )
        return cls(
            round_index=round_index,
            kind=kind,
            user_ids=user_ids,
            payload=payload,
        )

    # ------------------------------------------------------------- validation

    def validate_against(self, spec) -> None:
        """Check every report value against one round's declared domain.

        :meth:`from_bytes` can only enforce structural invariants; once the
        server knows which round a batch claims to belong to, this check
        pins the payload to that round's perturbation domain so hostile
        values cannot corrupt the integer count state (or crash ``bincount``
        mid-aggregation).  Raises :class:`~repro.exceptions.DomainError`.
        """
        if len(self) == 0:
            return
        if self.user_ids.size != np.unique(self.user_ids).size:
            raise DomainError("batch contains duplicated user ids")
        if np.any(self.user_ids < 0):
            raise DomainError("batch contains negative user ids")
        payload = self.payload
        if self.kind == "length":
            size = spec.length_high - spec.length_low + 1
            if np.any(payload < 0) or np.any(payload >= size):
                raise DomainError(
                    f"length reports must lie in [0, {size}), the clipped domain"
                )
        elif self.kind == "subshape":
            if payload.ndim != 2 or payload.shape[1] != 2:
                raise DomainError(
                    f"subshape reports must be (level, pair) pairs, "
                    f"got shape {payload.shape}"
                )
            n_levels = max(spec.est_length - 1, 1)
            n_pairs = len(spec.alphabet) * (len(spec.alphabet) - 1)
            levels, pairs = payload[:, 0], payload[:, 1]
            if np.any(levels < 1) or np.any(levels > n_levels):
                raise DomainError(f"subshape levels must lie in [1, {n_levels}]")
            if np.any(pairs < 0) or np.any(pairs >= n_pairs):
                raise DomainError(f"subshape pairs must lie in [0, {n_pairs})")
        elif self.kind == "expand":
            size = max(len(spec.candidates), 1)
            if np.any(payload < 0) or np.any(payload >= size):
                raise DomainError(
                    f"expand selections must lie in [0, {size}), the candidate set"
                )
        elif self.kind in _BIT_MATRIX_KINDS:
            if payload.shape[1] != spec.n_cells:
                raise DomainError(
                    f"refinement reports must carry {spec.n_cells} cells, "
                    f"got {payload.shape[1]}"
                )
            if np.any(payload > 1):
                raise DomainError("refinement reports must be 0/1 bit vectors")
        else:  # pragma: no cover - from_bytes rejects unknown kinds first
            raise DomainError(f"unknown round kind {self.kind!r}")
