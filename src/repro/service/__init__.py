"""Round-based federated collection service for PrivShape.

PrivShape is, in deployment terms, an *interactive* user-level LDP protocol:
disjoint user groups each answer exactly one round (length estimation,
sub-shape estimation, one trie-expansion round per level, OUE refinement).
This package makes that structure explicit and streamable:

* :class:`CollectionPlan` / :class:`RoundSpec` — the frozen schedule and the
  per-round contract published to clients;
* :class:`ClientReporter` — stateless client encoding into compact,
  serializable :class:`ReportBatch` records;
* :class:`ShardedAggregator` — vectorized, integer-exact streaming
  aggregation across shards;
* :class:`PrivShapeEngine` — the server state machine shared with the
  offline :class:`~repro.core.privshape.PrivShape` path;
* :class:`ProtocolDriver` — end-to-end orchestration over a population
  source in constant memory;
* :class:`SyntheticShapeStream` — a deterministic million-user population
  generator for load simulation (``python -m repro.cli simulate``).
"""

from repro.service.aggregator import ShardedAggregator
from repro.service.client import ClientReporter
from repro.service.driver import DriverStats, ProtocolDriver, RoundStats
from repro.service.metrics import ThroughputMeter, peak_rss_bytes
from repro.service.plan import CollectionPlan, RoundSpec
from repro.service.population import (
    DriftingShapeStream,
    EncodedPopulation,
    SyntheticShapeStream,
    default_templates,
)
from repro.service.protocol import PrivShapeEngine
from repro.service.reports import ReportBatch
from repro.service.rounds import RoundAccumulator, accumulate, encode_reports, new_accumulator

__all__ = [
    "CollectionPlan",
    "RoundSpec",
    "ClientReporter",
    "ReportBatch",
    "ShardedAggregator",
    "PrivShapeEngine",
    "ProtocolDriver",
    "DriverStats",
    "RoundStats",
    "DriftingShapeStream",
    "EncodedPopulation",
    "SyntheticShapeStream",
    "default_templates",
    "RoundAccumulator",
    "accumulate",
    "encode_reports",
    "new_accumulator",
    "ThroughputMeter",
    "peak_rss_bytes",
]
