"""The round-based PrivShape protocol engine (Algorithm 2 as a state machine).

:class:`PrivShapeEngine` owns everything the *server* knows during a
collection run: the frozen :class:`~repro.service.plan.CollectionPlan`, the
candidate trie, the privacy accountant, and the protocol stage.  It exposes
exactly two operations:

* :meth:`open_round` — publish the next :class:`RoundSpec` (drawing its PRF
  key from the master generator), or ``None`` when the protocol is finished;
* :meth:`close_round` — consume the round's merged
  :class:`~repro.service.rounds.RoundAccumulator`, apply the unbiased
  estimators, advance the trie, and move to the next stage.

Both execution paths run this same engine: the offline
:class:`~repro.core.privshape.PrivShape` feeds each round with the whole
population in one batch, while :class:`~repro.service.driver.ProtocolDriver`
streams arbitrary-size batches through a sharded aggregator.  Because client
randomness is PRF-keyed and aggregation is integer addition, the two paths
close every round with identical state — the equivalence the service tests
assert to the byte.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional, Sequence

import numpy as np

from repro.core.config import PrivShapeConfig
from repro.core.length import select_modal_length
from repro.core.refinement import assign_candidates_to_classes, deduplicate_shapes
from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.subshape import rank_top_subshapes
from repro.core.trie import Shape, ShapeTrie
from repro.exceptions import EstimationError, ProtocolStateError
from repro.ldp.accounting import BudgetSpend, PrivacyAccountant
from repro.obs.tracing import trace_span
from repro.service.plan import (
    GROUP_EXPAND,
    GROUP_LENGTH,
    GROUP_REFINE,
    GROUP_SUBSHAPE,
    KIND_EXPAND,
    KIND_LENGTH,
    KIND_REFINE,
    KIND_REFINE_LABELED,
    KIND_SUBSHAPE,
    CollectionPlan,
    RoundSpec,
)
from repro.service.rounds import (
    RoundAccumulator,
    length_oracle,
    refine_oracle,
    subshape_oracle,
)
from repro.utils.prf import fresh_key
from repro.utils.rng import RngLike, ensure_rng

_STAGE_LENGTH = "length"
_STAGE_SUBSHAPE = "subshape"
_STAGE_EXPAND = "expand"
_STAGE_REFINE = "refine"
_STAGE_DONE = "done"


class PrivShapeEngine:
    """Server-side protocol state machine shared by offline and streaming runs."""

    def __init__(
        self,
        config: PrivShapeConfig,
        rng: RngLike = None,
        labeled: bool = False,
        n_classes: int | None = None,
        carryover: Sequence[tuple[Sequence[str], float]] | None = None,
        first_round_index: int = 0,
    ) -> None:
        # Accept a resolved repro.api ExperimentSpec as well; duck-typed so the
        # service layer never imports the api package (core.privshape imports
        # this module, and the api package imports core.privshape).
        if not isinstance(config, PrivShapeConfig) and hasattr(config, "to_privshape_config"):
            config = config.to_privshape_config()
        self.config = config
        self.generator = ensure_rng(rng if rng is not None else config.rng_seed)
        self.accountant = PrivacyAccountant(target_epsilon=config.epsilon)
        self.plan = CollectionPlan.freeze(config, split_key=fresh_key(self.generator))
        self.trie = ShapeTrie(config.alphabet)
        self.labeled = bool(labeled)
        self.n_classes = int(n_classes) if n_classes is not None else 0
        if self.labeled and self.n_classes < 1:
            raise ValueError("labeled protocols must declare n_classes >= 1")

        self.estimated_length: int | None = None
        self.subshape_candidates: dict[int, list[tuple[str, str]]] = {}
        self.leaf_shapes: list[Shape] = []
        self.frequencies: dict[Shape, float] = {}
        self.per_class_counts: dict[int, dict[Shape, float]] | None = None

        # Carried (shape, decayed frequency) pairs from the previous continual
        # window; applied to the trie once this window's length estimate fixes
        # the leaf level.  Empty for one-shot runs — an empty carry-over makes
        # this engine byte-identical to one constructed without the argument.
        self._carryover: list[tuple[Shape, float]] = sorted(
            (tuple(shape), float(count)) for shape, count in (carryover or [])
        )

        self._stage = _STAGE_LENGTH
        self._level = 0
        # Continual mode offsets round indexes so they increase globally
        # across windows (cluster shard workers reject stale indexes).  The
        # index feeds nothing but round matching, so the offset is invisible
        # in estimates.
        self._round_index = int(first_round_index)
        self._open: Optional[RoundSpec] = None

    @classmethod
    def for_refresh(
        cls,
        config: PrivShapeConfig,
        rng: RngLike = None,
        *,
        carryover: Sequence[tuple[Sequence[str], float]],
        estimated_length: int,
        first_round_index: int = 0,
    ) -> "PrivShapeEngine":
        """Build a refine-only engine over carried candidates (refresh window).

        Continual collection uses these cheap windows as drift probes: only
        the Pd population reports, the candidate set comes from the previous
        window's carry-over, and the single OUE refinement round re-estimates
        the carried shapes' frequencies.  Frequencies are pre-seeded from the
        carry-over so an empty Pd still finalizes (keeping the carried
        estimates, exactly like a one-shot run with an empty refine round).
        """
        engine = cls(config, rng=rng, first_round_index=first_round_index)
        depth = max(int(estimated_length), 1)
        leaves = sorted(
            (
                (tuple(shape), float(count))
                for shape, count in carryover
                if len(tuple(shape)) == depth
            ),
            key=lambda item: (-item[1], item[0]),
        )[: config.candidate_budget]
        if not leaves:
            raise ProtocolStateError(
                f"carry-over holds no shapes at leaf level {depth}; "
                "refresh windows need the previous window's survivors"
            )
        engine.estimated_length = depth
        engine.leaf_shapes = [shape for shape, _ in leaves]
        engine.frequencies = dict(leaves)
        for shape, count in leaves:
            engine.trie.set_frequency(shape, count)
        engine._stage = _STAGE_REFINE
        return engine

    # -------------------------------------------------------------- inspection

    @property
    def stage(self) -> str:
        """The protocol stage (length / subshape / expand / refine / done)."""
        return self._stage

    @property
    def is_done(self) -> bool:
        """True once every round has been closed."""
        return self._stage == _STAGE_DONE

    @property
    def round_index(self) -> int:
        """Index the *next* opened round will carry."""
        return self._round_index

    @property
    def current_round(self) -> Optional[RoundSpec]:
        """The currently open round's spec, or None between rounds."""
        return self._open

    # ------------------------------------------------------------- round flow

    def open_round(self) -> Optional[RoundSpec]:
        """Publish the next round's spec, or None when the protocol is done."""
        if self._open is not None:
            raise ProtocolStateError(
                f"round {self._open.index} ({self._open.kind}) is still open"
            )
        if self._stage == _STAGE_DONE:
            return None
        with trace_span("engine.open_round", round=self._round_index,
                        stage=self._stage):
            return self._build_round_spec()

    def _build_round_spec(self) -> RoundSpec:
        key = fresh_key(self.generator)
        common = dict(
            index=self._round_index,
            key=key,
            epsilon=self.config.epsilon,
            metric=self.config.metric,
            alphabet=self.plan.alphabet,
        )
        if self._stage == _STAGE_LENGTH:
            spec = RoundSpec(
                kind=KIND_LENGTH,
                group=GROUP_LENGTH,
                length_low=self.config.length_low,
                length_high=self.config.length_high,
                **common,
            )
        elif self._stage == _STAGE_SUBSHAPE:
            spec = RoundSpec(
                kind=KIND_SUBSHAPE,
                group=GROUP_SUBSHAPE,
                est_length=self.estimated_length,
                **common,
            )
        elif self._stage == _STAGE_EXPAND:
            spec = RoundSpec(
                kind=KIND_EXPAND,
                group=GROUP_EXPAND,
                level=self._level,
                est_length=self.estimated_length,
                candidates=tuple(self._expansion_candidates(self._level)),
                **common,
            )
        elif self._stage == _STAGE_REFINE:
            spec = RoundSpec(
                kind=KIND_REFINE_LABELED if self.labeled else KIND_REFINE,
                group=GROUP_REFINE,
                candidates=tuple(self.leaf_shapes),
                n_classes=self.n_classes if self.labeled else 0,
                **common,
            )
        else:  # pragma: no cover - defensive
            raise ProtocolStateError(f"unknown protocol stage {self._stage!r}")
        self._open = spec
        self._round_index += 1
        return spec

    def close_round(self, spec: RoundSpec, aggregate: RoundAccumulator) -> None:
        """Finalize one round from its merged counts and advance the stage."""
        if self._open is None or spec.index != self._open.index:
            raise ProtocolStateError(
                f"round {spec.index} is not the currently open round"
            )
        self._open = None
        # The span wraps the estimation step whole; it reads only the clock,
        # never the generator, so draw order is unchanged under tracing.
        with trace_span("engine.close_round", round=spec.index, kind=spec.kind):
            if spec.kind == KIND_LENGTH:
                self._close_length(spec, aggregate)
            elif spec.kind == KIND_SUBSHAPE:
                self._close_subshape(spec, aggregate)
            elif spec.kind == KIND_EXPAND:
                self._close_expand(spec, aggregate)
            elif spec.kind in (KIND_REFINE, KIND_REFINE_LABELED):
                self._close_refine(spec, aggregate)
            else:  # pragma: no cover - defensive
                raise ProtocolStateError(f"unknown round kind {spec.kind!r}")

    # --------------------------------------------------------- stage closers

    def _close_length(self, spec: RoundSpec, aggregate: RoundAccumulator) -> None:
        if aggregate.n_reports == 0:
            raise EstimationError("no users were assigned to length estimation")
        oracle = length_oracle(spec)
        if oracle is None:
            self.estimated_length = spec.length_low
        else:
            estimates = oracle.estimate_counts_from_observed(
                aggregate.counts, aggregate.n_reports
            )
            counts = {
                int(length): float(count)
                for length, count in zip(oracle.domain, estimates)
            }
            self.estimated_length = select_modal_length(counts)
        self.accountant.spend("Pa", spec.epsilon, mechanism="GRR length estimation")
        self._apply_carryover()
        self._stage = (
            _STAGE_SUBSHAPE if self.estimated_length >= 2 else _STAGE_EXPAND
        )
        self._level = 0

    def _apply_carryover(self) -> None:
        """Seed the trie with the previous window's decayed survivors.

        Deferred until the length estimate is known so carried nodes deeper
        than this window's trie can never shift the leaf level.
        """
        depth = max(self.estimated_length or 1, 1)
        for shape, frequency in self._carryover:
            if 0 < len(shape) <= depth:
                self.trie.set_frequency(shape, frequency)

    def _close_subshape(self, spec: RoundSpec, aggregate: RoundAccumulator) -> None:
        if aggregate.n_reports == 0:
            raise EstimationError("no users were assigned to sub-shape estimation")
        oracle = subshape_oracle(spec)
        domain = list(oracle.domain)
        keep = self.config.candidate_budget
        top_per_level: dict[int, list[tuple[str, str]]] = {}
        for level in range(1, spec.est_length):
            observed = aggregate.counts[level - 1]
            n_level = int(observed.sum())
            if n_level == 0:
                # No user sampled this level (tiny populations): keep everything.
                top_per_level[level] = list(domain)
                continue
            estimates = oracle.estimate_counts_from_observed(observed, n_level)
            counts = {
                pair: float(count) for pair, count in zip(domain, estimates)
            }
            top_per_level[level] = rank_top_subshapes(counts, keep)
        self.subshape_candidates = top_per_level
        self.accountant.spend("Pb", spec.epsilon, mechanism="GRR sub-shape estimation")
        self._stage = _STAGE_EXPAND
        self._level = 0

    def _expansion_candidates(self, level: int) -> list[Shape]:
        """Children of the surviving level-``level`` prefixes (Algorithm 2, lines 7-10)."""
        keep = self.config.candidate_budget
        if level == 0:
            survivors: list[Shape] = [()]
            allowed = None
        else:
            survivors = self.trie.prune_to_top(level, keep)
            allowed = self.subshape_candidates.get(level)
        children = self.trie.expand(survivors, allowed_subshapes=allowed)
        if not children:
            # All expansions were pruned away (can happen with noisy sub-shape
            # estimates); fall back to full expansion.
            children = self.trie.expand(survivors, allowed_subshapes=None)
        return children

    def _close_expand(self, spec: RoundSpec, aggregate: RoundAccumulator) -> None:
        if aggregate.n_reports > 0:
            for candidate, count in zip(spec.candidates, aggregate.counts):
                self.trie.set_frequency(candidate, float(count))
            self.accountant.spend(
                f"Pc[level {spec.level}]",
                spec.epsilon,
                mechanism="Exponential Mechanism selection",
            )
        self._level += 1
        if self._level >= max(self.estimated_length, 1):
            self._prepare_refinement()

    def _prepare_refinement(self) -> None:
        keep = self.config.candidate_budget
        leaf_level = self.trie.height
        self.leaf_shapes = self.trie.prune_to_top(leaf_level, keep)
        if self.labeled:
            if not self.leaf_shapes:
                self.leaf_shapes = [tuple(self.plan.alphabet[:1])]
            self.per_class_counts = {
                label: {candidate: 0.0 for candidate in self.leaf_shapes}
                for label in range(self.n_classes)
            }
            self._stage = _STAGE_REFINE
            return
        self.frequencies = {
            shape: self.trie.node(shape).frequency for shape in self.leaf_shapes
        }
        if self.config.refinement and self.leaf_shapes:
            self._stage = _STAGE_REFINE
        else:
            self._stage = _STAGE_DONE

    def _close_refine(self, spec: RoundSpec, aggregate: RoundAccumulator) -> None:
        self._stage = _STAGE_DONE
        if aggregate.n_reports == 0:
            # Nobody landed in Pd: keep the trie-expansion frequencies.
            return
        oracle = refine_oracle(spec)
        if oracle is None:
            estimates = np.array([float(aggregate.n_reports)])
        else:
            estimates = oracle.estimate_counts_from_observed(
                aggregate.counts, aggregate.n_reports
            )
        if spec.kind == KIND_REFINE_LABELED:
            assert self.per_class_counts is not None
            for cell, count in enumerate(estimates):
                candidate = spec.candidates[cell // spec.n_classes]
                label = cell % spec.n_classes
                self.per_class_counts[label][candidate] = float(count)
            self.accountant.spend(
                "Pd", spec.epsilon, mechanism="OUE labelled refinement"
            )
            return
        refined = {
            candidate: float(count)
            for candidate, count in zip(spec.candidates, estimates)
        }
        self.accountant.spend("Pd", spec.epsilon, mechanism="OUE two-level refinement")
        self.frequencies = refined
        for shape, count in refined.items():
            self.trie.set_frequency(shape, count)

    # -------------------------------------------------------------- snapshot

    def to_state(self) -> dict[str, Any]:
        """Loss-free plain-data snapshot of the full protocol state.

        Everything a server must persist to resume a run — configuration,
        master-generator state (so later rounds draw the same PRF keys), the
        frozen plan, privacy spends, the candidate trie, and the stage
        bookkeeping — lands in one JSON-serializable dict.
        ``from_state(to_state())`` resumes byte-identically: the restored
        engine opens the same rounds with the same keys and finalizes to the
        same result as the original would have.
        """
        return {
            "config": dataclasses.asdict(self.config),
            "generator": self.generator.bit_generator.state,
            "plan": self.plan.to_dict(),
            "accountant": {
                "target_epsilon": self.accountant.target_epsilon,
                "strict": self.accountant.strict,
                "spends": [
                    {
                        "population": s.population,
                        "epsilon": s.epsilon,
                        "mechanism": s.mechanism,
                        "window": s.window,
                    }
                    for s in self.accountant.spends
                ],
            },
            "carryover": [
                [list(shape), count] for shape, count in self._carryover
            ],
            "trie": [
                [list(node.shape), node.frequency, node.pruned]
                for level in range(self.trie.height + 1)
                for node in self.trie.nodes_at_level(level, include_pruned=True)
            ],
            "labeled": self.labeled,
            "n_classes": self.n_classes,
            "estimated_length": self.estimated_length,
            "subshape_candidates": [
                [level, [list(pair) for pair in pairs]]
                for level, pairs in self.subshape_candidates.items()
            ],
            "leaf_shapes": [list(shape) for shape in self.leaf_shapes],
            "frequencies": [
                [list(shape), count] for shape, count in self.frequencies.items()
            ],
            "per_class_counts": None
            if self.per_class_counts is None
            else [
                [label, [[list(shape), count] for shape, count in counts.items()]]
                for label, counts in self.per_class_counts.items()
            ],
            "stage": self._stage,
            "level": self._level,
            "round_index": self._round_index,
            "open_round": None if self._open is None else self._open.to_dict(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "PrivShapeEngine":
        """Rebuild the exact engine serialized by :meth:`to_state`."""
        config_data = dict(state["config"])
        config_data["population_fractions"] = tuple(
            config_data["population_fractions"]
        )
        config = PrivShapeConfig(**config_data)
        engine = cls(
            config,
            rng=0,
            labeled=bool(state["labeled"]),
            n_classes=state["n_classes"] if state["labeled"] else None,
        )
        generator_state = state["generator"]
        bit_generator = getattr(np.random, generator_state["bit_generator"])()
        bit_generator.state = generator_state
        engine.generator = np.random.Generator(bit_generator)
        engine.plan = CollectionPlan.from_dict(state["plan"])
        accountant = PrivacyAccountant(
            target_epsilon=float(state["accountant"]["target_epsilon"]),
            strict=bool(state["accountant"]["strict"]),
        )
        for spend in state["accountant"]["spends"]:
            accountant.spends.append(
                BudgetSpend(
                    population=spend["population"],
                    epsilon=float(spend["epsilon"]),
                    mechanism=spend.get("mechanism", ""),
                    window=spend.get("window"),
                )
            )
        engine.accountant = accountant
        engine._carryover = [
            (tuple(shape), float(count))
            for shape, count in state.get("carryover", [])
        ]
        engine.trie = ShapeTrie(config.alphabet)
        for shape, frequency, pruned in state["trie"]:
            shape = tuple(shape)
            if shape:
                node = engine.trie.add(shape)
                node.frequency = float(frequency)
                node.pruned = bool(pruned)
            else:
                engine.trie.root.frequency = float(frequency)
                engine.trie.root.pruned = bool(pruned)
        engine.estimated_length = state["estimated_length"]
        engine.subshape_candidates = {
            int(level): [tuple(pair) for pair in pairs]
            for level, pairs in state["subshape_candidates"]
        }
        engine.leaf_shapes = [tuple(shape) for shape in state["leaf_shapes"]]
        engine.frequencies = {
            tuple(shape): float(count) for shape, count in state["frequencies"]
        }
        engine.per_class_counts = (
            None
            if state["per_class_counts"] is None
            else {
                int(label): {
                    tuple(shape): float(count) for shape, count in counts
                }
                for label, counts in state["per_class_counts"]
            }
        )
        engine._stage = state["stage"]
        engine._level = int(state["level"])
        engine._round_index = int(state["round_index"])
        engine._open = (
            None
            if state["open_round"] is None
            else RoundSpec.from_dict(state["open_round"])
        )
        return engine

    # -------------------------------------------------------------- finalize

    def finalize(self) -> ShapeExtractionResult:
        """Post-process the closed protocol into the unlabelled result."""
        if self._stage != _STAGE_DONE:
            raise ProtocolStateError(
                f"protocol still in stage {self._stage!r}; run all rounds first"
            )
        shapes = sorted(self.frequencies, key=lambda s: (-self.frequencies[s], s))
        counts = [self.frequencies[s] for s in shapes]
        if self.config.postprocess:
            shapes, counts = deduplicate_shapes(
                shapes,
                counts,
                k=self.config.top_k,
                metric=self.config.metric,
                alphabet_size=self.config.alphabet_size,
            )
        shapes = shapes[: self.config.top_k]
        counts = counts[: self.config.top_k]
        return ShapeExtractionResult(
            shapes=shapes,
            frequencies=counts,
            estimated_length=self.estimated_length,
            trie=self.trie,
            accountant=self.accountant,
            subshape_candidates=self.subshape_candidates,
        )

    def finalize_labeled(self) -> LabeledShapeExtractionResult:
        """Post-process the closed protocol into the per-class result."""
        if self._stage != _STAGE_DONE:
            raise ProtocolStateError(
                f"protocol still in stage {self._stage!r}; run all rounds first"
            )
        assert self.per_class_counts is not None
        shapes_by_class, frequencies_by_class = assign_candidates_to_classes(
            self.per_class_counts, top_k=self.config.top_k
        )
        return LabeledShapeExtractionResult(
            shapes_by_class=shapes_by_class,
            frequencies_by_class=frequencies_by_class,
            estimated_length=self.estimated_length,
            trie=self.trie,
            accountant=self.accountant,
            subshape_candidates=self.subshape_candidates,
        )
