"""Lightweight throughput and memory metrics for the collection service."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def cpu_count() -> int:
    """Number of CPUs visible to this process (at least 1).

    Benchmark artifacts stamp this so single-core numbers (e.g. a cluster
    "speedup" below 1x with no parallelism to buy) are self-explanatory.
    """
    import os

    return os.cpu_count() or 1


def _ru_maxrss_to_bytes(peak: int, platform: str) -> int:
    """Convert a ``ru_maxrss`` reading to bytes for a known platform.

    The unit of ``ru_maxrss`` is platform-defined: macOS reports bytes,
    Linux (and the BSDs getrusage descends from) reports kibibytes.  On any
    other platform the unit is unknown, and 0 ("unavailable") is more honest
    than a number that may be off by three orders of magnitude.
    """
    if platform == "darwin":
        return int(peak)
    if platform.startswith(("linux", "freebsd", "openbsd", "netbsd")):
        return int(peak) * 1024
    return 0


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 when unavailable)."""
    import sys

    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return _ru_maxrss_to_bytes(int(peak), sys.platform)


@dataclass
class ThroughputMeter:
    """Counts reports and wall time for one scope (a round or a whole run)."""

    reports: int = 0
    elapsed_seconds: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        """Begin an interval; idempotent — a second start() while one is
        already running is a no-op, so the in-progress interval is kept
        rather than silently discarded."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def add(self, n_reports: int) -> None:
        self.reports += int(n_reports)

    def stop(self) -> None:
        """Close the current interval; idempotent when none is running."""
        if self._started_at is not None:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    @property
    def running(self) -> bool:
        """True while an interval is open (between start() and stop())."""
        return self._started_at is not None

    @property
    def reports_per_second(self) -> float:
        """Aggregate throughput; 0 when no (or near-zero) time was measured.

        A stop() immediately after start() can leave elapsed_seconds at the
        clock's resolution floor; dividing by it would report absurd rates,
        so anything under a microsecond counts as "no time measured".
        """
        if self.elapsed_seconds <= 1e-6:
            return 0.0
        return self.reports / self.elapsed_seconds
