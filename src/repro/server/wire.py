"""Newline-delimited JSON wire protocol of the collection gateway.

One request is one line of JSON (an object with an ``"op"`` field); one
response is one line of JSON with ``"ok"`` set.  Report payloads ride inside
the ``report`` op as base64 of the :class:`~repro.service.reports.ReportBatch`
binary frame, so the batch hardening in ``ReportBatch.from_bytes`` applies to
everything that crosses the socket.

The same port also answers plain ``GET /status`` / ``GET /result`` HTTP
requests (the gateway sniffs the first line), so the protocol here only
covers the NDJSON side.
"""

from __future__ import annotations

import base64
import binascii
import json
from typing import Any

from repro.exceptions import WireFormatError
from repro.service.reports import ReportBatch

#: Protocol revision announced in the ``hello`` response.
PROTOCOL_VERSION = 1

#: Upper bound on one NDJSON line (also the asyncio stream limit).  A 65 536
#: user OUE batch packs to well under 1 MiB of base64; 64 MiB leaves room for
#: any realistic batch while still bounding a hostile sender.
MAX_LINE_BYTES = 1 << 26

#: Upper bound on a client-chosen batch id (idempotency key).
MAX_BATCH_ID_LENGTH = 256


def encode_message(payload: dict[str, Any]) -> bytes:
    """One wire line (compact JSON + newline) for a message dict."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message dict (hostile input tolerated)."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireFormatError(f"message is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise WireFormatError("message must be a JSON object")
    return message


def batch_to_wire(batch: ReportBatch) -> str:
    """Base64 text form of a report batch for the ``report`` op."""
    return base64.b64encode(batch.to_bytes()).decode("ascii")


def batch_from_wire(data: Any) -> ReportBatch:
    """Decode and validate a base64 report-batch payload."""
    if not isinstance(data, str):
        raise WireFormatError("report data must be a base64 string")
    try:
        raw = base64.b64decode(data.encode("ascii"), validate=True)
    except (UnicodeEncodeError, binascii.Error, ValueError) as exc:
        raise WireFormatError(f"report data is not valid base64: {exc}") from exc
    return ReportBatch.from_bytes(raw)


def check_batch_id(batch_id: Any) -> str:
    """Validate a client-supplied idempotency key."""
    if not isinstance(batch_id, str) or not batch_id:
        raise WireFormatError("batch_id must be a non-empty string")
    if len(batch_id) > MAX_BATCH_ID_LENGTH:
        raise WireFormatError(
            f"batch_id longer than {MAX_BATCH_ID_LENGTH} characters"
        )
    return batch_id
