"""Network-facing collection gateway for the PrivShape service.

This package puts a wire boundary, concurrency, and durability around the
round-based collection service:

* :class:`SocketServiceBase` — the shared asyncio transport (NDJSON ops +
  HTTP ``GET`` on one port, bounded per-shard queues, deterministic
  lifecycle) that the gateway and the :mod:`repro.cluster` processes all
  serve through;
* :class:`CollectionGateway` — asyncio TCP server speaking a newline-delimited
  JSON protocol (plus HTTP ``GET /status`` / ``GET /result`` on the same
  port), with one bounded queue + aggregation worker per shard and idempotent
  batch ingestion;
* :class:`CheckpointStore` — atomic (write-temp + rename) JSON checkpoints of
  the full protocol state, written after every round close and optionally
  mid-round, enabling exact crash recovery via
  :meth:`CollectionGateway.from_checkpoint`;
* :class:`GatewayClient` — the blocking reference client;
* :func:`run_loadgen` — a multi-process load generator built on
  :class:`~repro.service.population.SyntheticShapeStream` and the vectorized
  client encoding paths (``repro loadgen`` on the command line);
* :func:`serve_in_thread` — in-process hosting for tests and benchmarks,
  returning a :class:`ServerHandle`;
* :func:`publish_port` / :func:`wait_for_port_file` — atomic port-file
  publication for servers bound to ephemeral ports.

A run driven through the gateway — any batching, any sharding, including a
kill-and-recover from a mid-round checkpoint — finalizes byte-identically to
the offline ``PrivShape.extract()`` path under the same master seed.
"""

from repro.server.base import SocketServiceBase, result_payload
from repro.server.client import GatewayClient
from repro.server.gateway import CollectionGateway
from repro.server.loadgen import (
    LoadgenRoundStats,
    LoadgenStats,
    SliceStats,
    WindowLoadgenStats,
    batch_id_for,
    run_loadgen,
    run_window_loadgen,
    stream_round,
)
from repro.server.portfile import publish_port, read_port, wait_for_port_file
from repro.server.state import CheckpointStore
from repro.server.testing import GatewayHandle, ServerHandle, serve_in_thread
from repro.server.wire import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    batch_from_wire,
    batch_to_wire,
    decode_message,
    encode_message,
)

__all__ = [
    "SocketServiceBase",
    "result_payload",
    "CollectionGateway",
    "GatewayClient",
    "CheckpointStore",
    "GatewayHandle",
    "ServerHandle",
    "serve_in_thread",
    "publish_port",
    "read_port",
    "wait_for_port_file",
    "run_loadgen",
    "run_window_loadgen",
    "stream_round",
    "batch_id_for",
    "LoadgenStats",
    "LoadgenRoundStats",
    "SliceStats",
    "WindowLoadgenStats",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "encode_message",
    "decode_message",
    "batch_to_wire",
    "batch_from_wire",
]
