"""The network-facing collection gateway.

:class:`CollectionGateway` turns the in-process service stack
(:class:`~repro.service.protocol.PrivShapeEngine` +
:class:`~repro.service.aggregator.ShardedAggregator`) into an actual server:

* an asyncio TCP listener speaking the newline-delimited JSON protocol of
  :mod:`repro.server.wire`, with plain HTTP ``GET /status`` / ``GET /result``
  answered on the same port;
* one bounded :class:`asyncio.Queue` and one aggregation worker per shard —
  a full queue blocks the producing connection (explicit backpressure), it
  never buffers without bound;
* idempotent ingestion: every ``report`` op carries a client-chosen
  ``batch_id``; replays of an already-accepted id are acknowledged but not
  re-counted, which is what makes crash recovery exact;
* durable state: with a checkpoint directory configured, the gateway writes
  an atomic snapshot after every round close (and, optionally, every
  ``checkpoint_every`` accepted batches mid-round) and can resume from it via
  :meth:`from_checkpoint` without double-counting a single report.

Because the engine, the PRF-keyed client randomness, and the integer count
state are exactly the ones the offline path uses, a run driven through this
gateway — including one killed and recovered mid-round — finalizes to results
byte-identical to ``PrivShape.extract()`` under the same master seed
(``tests/server/test_gateway.py``).
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any, Optional

from repro.exceptions import (
    ProtocolStateError,
    ReproError,
    ServerError,
    WireFormatError,
)
from repro.server.state import CheckpointStore
from repro.server.wire import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    batch_from_wire,
    check_batch_id,
    decode_message,
    encode_message,
)
from repro.service.aggregator import ShardedAggregator
from repro.service.plan import RoundSpec
from repro.service.protocol import PrivShapeEngine
from repro.utils.rng import RngLike


class CollectionGateway:
    """Round-based PrivShape collection behind a TCP wire boundary."""

    def __init__(
        self,
        config,
        *,
        rng: RngLike = None,
        n_shards: int = 1,
        queue_depth: int = 64,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.n_shards = int(n_shards)
        self.queue_depth = int(queue_depth)
        self.checkpoint_every = max(int(checkpoint_every), 0)
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.engine = PrivShapeEngine(config, rng=rng)
        self.aggregator: Optional[ShardedAggregator] = None
        self.seen_batches: set[str] = set()
        self.total_reports = 0
        self.accepted_batches = 0
        self.duplicate_batches = 0
        self.rejected_batches = 0
        self.checkpoints_written = 0
        self._accepted_since_checkpoint = 0
        self._started_at = time.monotonic()
        self._result_payload: dict[str, Any] | None = None
        # asyncio plumbing; created once the event loop runs (see start()).
        self._loop: asyncio.AbstractEventLoop | None = None
        self._lock: asyncio.Lock | None = None
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self.host: str | None = None
        self.port: int | None = None
        self._set_round(self.engine.open_round())

    # ---------------------------------------------------------------- factory

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_dir: str,
        *,
        queue_depth: int | None = None,
        checkpoint_every: int = 0,
    ) -> "CollectionGateway":
        """Resume the run persisted in ``checkpoint_dir`` (exact recovery).

        ``queue_depth`` is an operational knob, not protocol state: passing a
        value overrides the checkpointed depth (e.g. to relieve backpressure
        on restart); ``None`` keeps the checkpointed one.
        """
        store = CheckpointStore(checkpoint_dir)
        state = store.load()
        if state is None:
            raise ServerError(f"no checkpoint found under {store.directory}")
        gateway = cls.__new__(cls)
        gateway.n_shards = int(state["n_shards"])
        gateway.queue_depth = (
            int(state["queue_depth"]) if queue_depth is None else int(queue_depth)
        )
        gateway.checkpoint_every = max(int(checkpoint_every), 0)
        gateway.store = store
        gateway.engine = PrivShapeEngine.from_state(state["engine"])
        gateway.aggregator = (
            None
            if state["aggregator"] is None
            else ShardedAggregator.from_state(state["aggregator"])
        )
        gateway.seen_batches = set(state["seen_batches"])
        gateway.total_reports = int(state["total_reports"])
        gateway.accepted_batches = int(state["accepted_batches"])
        gateway.duplicate_batches = int(state["duplicate_batches"])
        gateway.rejected_batches = int(state["rejected_batches"])
        gateway.checkpoints_written = int(state.get("checkpoints_written", 0))
        gateway._accepted_since_checkpoint = 0
        gateway._started_at = time.monotonic()
        gateway._result_payload = None
        gateway._loop = None
        gateway._lock = None
        gateway._queues = []
        gateway._workers = []
        gateway._server = None
        gateway._stop_event = None
        gateway.host = None
        gateway.port = None
        open_spec = gateway.engine.current_round
        if (open_spec is None) != (gateway.aggregator is None):
            raise ServerError(
                "checkpoint is inconsistent: open round and aggregator disagree"
            )
        return gateway

    # ----------------------------------------------------------- round state

    def _set_round(self, spec: Optional[RoundSpec]) -> None:
        self.aggregator = (
            None if spec is None else ShardedAggregator(spec, n_shards=self.n_shards)
        )
        self.seen_batches = set()

    def to_state(self) -> dict[str, Any]:
        """The complete durable state (engine + mid-round counts + dedup ids)."""
        return {
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "engine": self.engine.to_state(),
            "aggregator": None if self.aggregator is None else self.aggregator.to_state(),
            "seen_batches": sorted(self.seen_batches),
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_batches": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
        }

    # ------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener and launch the per-shard aggregation workers."""
        self._loop = asyncio.get_running_loop()
        self._lock = asyncio.Lock()
        self._stop_event = asyncio.Event()
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(self.n_shards)
        ]
        self._workers = [
            asyncio.create_task(self._shard_worker(shard, queue))
            for shard, queue in enumerate(self._queues)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        if self.store is not None:
            # Baseline checkpoint at boot: a crash before the first round
            # close is recoverable too (and a resumed gateway re-asserts its
            # restored state as the newest snapshot).
            await self._checkpoint_locked()

    async def serve_until_stopped(self) -> None:
        """Serve until a ``stop`` op or :meth:`request_stop` arrives."""
        if self._server is None or self._stop_event is None:
            raise ServerError("gateway is not started; call start() first")
        async with self._server:
            await self._stop_event.wait()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)

    async def run(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Start and serve until stopped (the CLI entry point)."""
        await self.start(host, port)
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        """Ask the serving loop to exit (safe to call from any thread)."""
        if self._loop is None or self._stop_event is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)

    # --------------------------------------------------------------- workers

    async def _shard_worker(self, shard: int, queue: asyncio.Queue) -> None:
        """Fold routed sub-batches into this worker's shard, forever."""
        while True:
            batch = await queue.get()
            try:
                assert self.aggregator is not None  # enqueue happens under lock
                self.aggregator.consume_shard(shard, batch)
            finally:
                queue.task_done()

    async def _drain(self) -> None:
        """Wait until every enqueued batch has been folded into its shard."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    async def _checkpoint_locked(self) -> dict[str, Any]:
        """Quiesce the workers and persist one atomic snapshot (lock held)."""
        if self.store is None:
            raise ServerError("no checkpoint directory is configured")
        await self._drain()
        path = self.store.save(self.to_state())
        self.checkpoints_written += 1
        self._accepted_since_checkpoint = 0
        return {"ok": True, "path": str(path)}

    # ------------------------------------------------------------ dispatching

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if line[:4] == b"GET " or line[:5] == b"HEAD ":
                await self._handle_http(line, reader, writer)
                return
            while line:
                stripped = line.strip()
                if stripped:
                    response = await self._dispatch_safely(stripped)
                    writer.write(encode_message(response))
                    await writer.drain()
                    if response.get("stopping"):
                        break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # Line exceeded the stream limit: tell the peer once, then drop it.
            try:
                writer.write(
                    encode_message(
                        {"ok": False, "error": f"line exceeds {MAX_LINE_BYTES} bytes"}
                    )
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch_safely(self, line: bytes) -> dict[str, Any]:
        try:
            message = decode_message(line)
            return await self._dispatch(message)
        except ReproError as exc:
            self.rejected_batches += 1
            return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "hello":
            return {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "mechanism": "privshape",
                "epsilon": self.engine.config.epsilon,
                "n_shards": self.n_shards,
                "plan": self.engine.plan.to_dict(),
            }
        if op == "round":
            assert self._lock is not None
            async with self._lock:
                return self._round_payload()
        if op == "report":
            return await self._op_report(message)
        if op == "close_round":
            return await self._op_close_round(message)
        if op == "status":
            return {"ok": True, "status": self._status_payload()}
        if op == "result":
            assert self._lock is not None
            async with self._lock:
                return self._op_result()
        if op == "checkpoint":
            assert self._lock is not None
            async with self._lock:
                return await self._checkpoint_locked()
        if op == "stop":
            if self._stop_event is not None:
                self._stop_event.set()
            return {"ok": True, "stopping": True}
        raise WireFormatError(f"unknown op {op!r}")

    # ------------------------------------------------------------------- ops

    def _round_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        return {
            "ok": True,
            "done": spec is None and self.engine.is_done,
            "round": None if spec is None else spec.to_dict(),
            "plan": self.engine.plan.to_dict(),
        }

    async def _op_report(self, message: dict[str, Any]) -> dict[str, Any]:
        batch_id = check_batch_id(message.get("batch_id"))
        batch = batch_from_wire(message.get("data"))
        assert self._lock is not None
        async with self._lock:
            spec = self.engine.current_round
            if spec is None or self.aggregator is None:
                raise ProtocolStateError(
                    "no round is open"
                    + ("; the protocol is finished" if self.engine.is_done else "")
                )
            if batch.round_index != spec.index or batch.kind != spec.kind:
                raise ProtocolStateError(
                    f"batch for round {batch.round_index} ({batch.kind}) does not "
                    f"match open round {spec.index} ({spec.kind})"
                )
            batch.validate_against(spec)
            if batch_id in self.seen_batches:
                self.duplicate_batches += 1
                return {
                    "ok": True,
                    "accepted": False,
                    "round": spec.index,
                    "reports": 0,
                }
            self.seen_batches.add(batch_id)
            # A full shard queue blocks here — and, because requests on one
            # connection are handled in arrival order, blocks that client —
            # until the worker catches up: bounded memory by construction.
            for shard, sub_batch in self.aggregator.route(batch):
                await self._queues[shard].put(sub_batch)
            self.total_reports += len(batch)
            self.accepted_batches += 1
            self._accepted_since_checkpoint += 1
            if (
                self.store is not None
                and self.checkpoint_every
                and self._accepted_since_checkpoint >= self.checkpoint_every
            ):
                await self._checkpoint_locked()
            return {
                "ok": True,
                "accepted": True,
                "round": spec.index,
                "reports": len(batch),
            }

    async def _op_close_round(self, message: dict[str, Any]) -> dict[str, Any]:
        assert self._lock is not None
        async with self._lock:
            spec = self.engine.current_round
            if spec is None:
                return self._round_payload()
            index = message.get("round")
            if index != spec.index:
                raise ProtocolStateError(
                    f"close_round for round {index!r}, but round {spec.index} is open"
                )
            await self._drain()
            assert self.aggregator is not None
            aggregate = self.aggregator.finalize_round()
            self.engine.close_round(spec, aggregate)
            self._set_round(self.engine.open_round())
            if self.store is not None:
                await self._checkpoint_locked()
            return self._round_payload()

    def _status_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        return {
            "stage": self.engine.stage,
            "done": self.engine.is_done,
            "round": None if spec is None else spec.index,
            "kind": None if spec is None else spec.kind,
            "reports_in_round": 0 if self.aggregator is None else self.aggregator.n_reports,
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_requests": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "epsilon": self.engine.config.epsilon,
            "uptime_seconds": time.monotonic() - self._started_at,
        }

    def _op_result(self) -> dict[str, Any]:
        if not self.engine.is_done:
            raise ProtocolStateError(
                f"protocol still in stage {self.engine.stage!r}; "
                "close every round first"
            )
        if self._result_payload is None:
            result = self.engine.finalize()
            self._result_payload = {
                "shapes": ["".join(shape) for shape in result.shapes],
                "shape_tuples": [list(shape) for shape in result.shapes],
                "frequencies": [float(f) for f in result.frequencies],
                "estimated_length": result.estimated_length,
                "accounting": {
                    "per_population": {
                        name: float(total)
                        for name, total in result.accountant.per_population().items()
                    },
                    "user_level_epsilon": float(
                        result.accountant.user_level_epsilon()
                    ),
                    "within_budget": result.accountant.is_valid(),
                },
            }
        return {"ok": True, "result": self._result_payload}

    # ---------------------------------------------------------------- HTTP

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = request_line.decode("latin-1").split()
        path = parts[1] if len(parts) >= 2 else "/"
        while True:  # drain request headers
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        if path == "/status":
            status, payload = 200, {"ok": True, "status": self._status_payload()}
        elif path == "/result":
            assert self._lock is not None
            async with self._lock:
                try:
                    status, payload = 200, self._op_result()
                except ReproError as exc:
                    status, payload = 409, {"ok": False, "error": str(exc)}
        elif path == "/healthz":
            status, payload = 200, {"ok": True}
        else:
            status, payload = 404, {"ok": False, "error": f"unknown path {path!r}"}
        body = json.dumps(payload).encode("utf-8")
        reason = {200: "OK", 404: "Not Found", 409: "Conflict"}[status]
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()
