"""The network-facing collection gateway.

:class:`CollectionGateway` turns the in-process service stack
(:class:`~repro.service.protocol.PrivShapeEngine` +
:class:`~repro.service.aggregator.ShardedAggregator`) into an actual server:

* an asyncio TCP listener speaking the newline-delimited JSON protocol of
  :mod:`repro.server.wire`, with plain HTTP ``GET /status`` / ``GET /result``
  answered on the same port (the transport lives in
  :class:`~repro.server.base.SocketServiceBase`, shared with the cluster
  processes);
* one bounded :class:`asyncio.Queue` and one aggregation worker per shard —
  a full queue blocks the producing connection (explicit backpressure), it
  never buffers without bound;
* idempotent ingestion: every ``report`` op carries a client-chosen
  ``batch_id``; replays of an already-accepted id are acknowledged but not
  re-counted, which is what makes crash recovery exact;
* durable state: with a checkpoint directory configured, the gateway writes
  an atomic snapshot after every round close (and, optionally, every
  ``checkpoint_every`` accepted batches mid-round) and can resume from it via
  :meth:`from_checkpoint` without double-counting a single report.

Because the engine, the PRF-keyed client randomness, and the integer count
state are exactly the ones the offline path uses, a run driven through this
gateway — including one killed and recovered mid-round — finalizes to results
byte-identical to ``PrivShape.extract()`` under the same master seed
(``tests/server/test_gateway.py``).
"""

from __future__ import annotations

import time
from typing import Any, Optional

from repro.continual.engine import WindowController
from repro.continual.windows import WindowSpec, WindowTicket
from repro.exceptions import (
    ProtocolStateError,
    ReproError,
    ServerError,
    WireFormatError,
)
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS
from repro.obs.tracing import trace_span
from repro.server.base import SocketServiceBase, result_payload
from repro.server.state import CheckpointStore
from repro.server.wire import (
    PROTOCOL_VERSION,
    batch_from_wire,
    check_batch_id,
)
from repro.service.aggregator import ShardedAggregator
from repro.service.plan import RoundSpec
from repro.service.protocol import PrivShapeEngine
from repro.utils.rng import RngLike

#: Protocol stages the ``privshape_stage`` gauge enumerates.
_STAGES = ("length", "subshape", "expand", "refine", "done")


class CollectionGateway(SocketServiceBase):
    """Round-based PrivShape collection behind a TCP wire boundary."""

    def __init__(
        self,
        config,
        *,
        rng: RngLike = None,
        n_shards: int = 1,
        queue_depth: int = 64,
        checkpoint_dir: str | None = None,
        checkpoint_every: int = 0,
        windows: WindowSpec | None = None,
        n_users: int | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        self._init_plumbing(n_shards, queue_depth)
        self.checkpoint_every = max(int(checkpoint_every), 0)
        self.store = CheckpointStore(checkpoint_dir) if checkpoint_dir else None
        self.controller: Optional[WindowController] = None
        self._ticket: Optional[WindowTicket] = None
        if windows is not None:
            # Continual mode: the gateway hosts the backend-shared window
            # controller and swaps in a fresh per-window engine at every
            # ``window`` op.  ``rng`` must be the integer base seed (or None
            # for fresh entropy) — windows derive their own seeds from it.
            if n_users is None:
                raise ValueError("windowed gateways need n_users to plan the schedule")
            self.controller = WindowController(
                config,
                windows,
                n_users=int(n_users),
                base_seed=None if rng is None else int(rng),
            )
            self._ticket = self.controller.next_ticket()
            self.engine = self.controller.build_engine(self._ticket)
        else:
            self.engine = PrivShapeEngine(config, rng=rng)
        self.aggregator: Optional[ShardedAggregator] = None
        self.seen_batches: set[str] = set()
        self.total_reports = 0
        self.accepted_batches = 0
        self.duplicate_batches = 0
        self.rejected_batches = 0
        self.checkpoints_written = 0
        self._accepted_since_checkpoint = 0
        self._result_payload: dict[str, Any] | None = None
        self._init_gateway_metrics()
        self._set_round(self.engine.open_round())

    # ---------------------------------------------------------------- factory

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_dir: str,
        *,
        queue_depth: int | None = None,
        checkpoint_every: int = 0,
    ) -> "CollectionGateway":
        """Resume the run persisted in ``checkpoint_dir`` (exact recovery).

        ``queue_depth`` is an operational knob, not protocol state: passing a
        value overrides the checkpointed depth (e.g. to relieve backpressure
        on restart); ``None`` keeps the checkpointed one.
        """
        store = CheckpointStore(checkpoint_dir)
        state = store.load()
        if state is None:
            raise ServerError(f"no checkpoint found under {store.directory}")
        gateway = cls.__new__(cls)
        gateway._init_plumbing(
            int(state["n_shards"]),
            int(state["queue_depth"]) if queue_depth is None else int(queue_depth),
        )
        gateway.checkpoint_every = max(int(checkpoint_every), 0)
        gateway.store = store
        gateway.controller = (
            None
            if state.get("windows") is None
            else WindowController.from_state(state["windows"])
        )
        gateway._ticket = (
            None
            if state.get("ticket") is None
            else WindowTicket.from_dict(state["ticket"])
        )
        gateway.engine = PrivShapeEngine.from_state(state["engine"])
        gateway.aggregator = (
            None
            if state["aggregator"] is None
            else ShardedAggregator.from_state(state["aggregator"])
        )
        gateway.seen_batches = set(state["seen_batches"])
        gateway.total_reports = int(state["total_reports"])
        gateway.accepted_batches = int(state["accepted_batches"])
        gateway.duplicate_batches = int(state["duplicate_batches"])
        gateway.rejected_batches = int(state["rejected_batches"])
        gateway.checkpoints_written = int(state.get("checkpoints_written", 0))
        gateway._accepted_since_checkpoint = 0
        gateway._result_payload = None
        gateway._init_gateway_metrics()
        open_spec = gateway.engine.current_round
        if (open_spec is None) != (gateway.aggregator is None):
            raise ServerError(
                "checkpoint is inconsistent: open round and aggregator disagree"
            )
        return gateway

    # -------------------------------------------------------------- telemetry

    def _init_gateway_metrics(self) -> None:
        """Register this gateway's metric families (fresh and restored paths).

        Monotonic totals that already live on the instance (and survive a
        checkpoint restore there) are mirrored into the registry at scrape
        time by :meth:`_update_metrics`; only genuinely event-shaped series
        (histograms) record inline.
        """
        m = self.metrics
        self._metric_reports = m.counter(
            "privshape_reports_total", "Reports accepted into shard aggregators"
        )
        self._metric_batches = m.counter(
            "privshape_batches_total",
            "Report batches by ingest outcome",
            labelnames=("result",),
        )
        self._metric_rounds_closed = m.counter(
            "privshape_rounds_closed_total",
            "Protocol rounds closed",
            labelnames=("kind",),
        )
        self._metric_checkpoints = m.counter(
            "privshape_checkpoints_written_total", "Durable snapshots written"
        )
        self._metric_round_index = m.gauge(
            "privshape_round_index", "Index of the open round (-1 when none)"
        )
        self._metric_stage = m.gauge(
            "privshape_stage",
            "Protocol stage indicator (1 on the current stage)",
            labelnames=("stage",),
        )
        self._metric_checkpoint_lag = m.gauge(
            "privshape_checkpoint_lag_batches",
            "Accepted batches since the last durable snapshot",
        )
        self._metric_batch_reports = m.histogram(
            "privshape_batch_reports",
            "Reports per accepted batch",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._metric_close_seconds = m.histogram(
            "privshape_round_close_seconds",
            "Wall time of close_round (drain + finalize + estimate)",
        )
        if self.controller is not None:
            self._metric_window = m.gauge(
                "privshape_window_index", "Index of the live window (-1 when done)"
            )
            self._metric_window_attempt = m.gauge(
                "privshape_window_attempt",
                "Attempt number of the live window (1 = drift re-extraction)",
            )
            self._metric_window_epsilon = m.gauge(
                "privshape_window_epsilon_spent",
                "User-level epsilon the live window's ledger has spent so far",
            )
            self._metric_windows_closed = m.gauge(
                "privshape_windows_closed", "Window attempts folded into the run"
            )
            self._metric_drift_l1 = m.gauge(
                "privshape_drift_l1",
                "L1 distance of the newest drift-detector decision",
            )
            self._metric_drift_fired = m.gauge(
                "privshape_drift_fired",
                "1 when the newest drift decision fired a re-extraction",
            )

    def _update_metrics(self) -> None:
        super()._update_metrics()
        self._metric_reports.set_total(self.total_reports)
        self._metric_batches.set_total(self.accepted_batches, result="accepted")
        self._metric_batches.set_total(self.duplicate_batches, result="duplicate")
        self._metric_rejected.set_total(self.rejected_batches)
        self._metric_checkpoints.set_total(self.checkpoints_written)
        self._metric_checkpoint_lag.set(self._accepted_since_checkpoint)
        spec = self.engine.current_round
        self._metric_round_index.set(-1 if spec is None else spec.index)
        for stage in _STAGES:
            self._metric_stage.set(
                1.0 if self.engine.stage == stage else 0.0, stage=stage
            )
        if self.controller is not None:
            ticket = self._ticket
            self._metric_window.set(-1 if ticket is None else ticket.index)
            self._metric_window_attempt.set(0 if ticket is None else ticket.attempt)
            self._metric_window_epsilon.set(
                float(self.engine.accountant.user_level_epsilon())
            )
            self._metric_windows_closed.set(len(self.controller.results))
            drift = next(
                (
                    payload["drift"]
                    for payload in reversed(self.controller.results)
                    if payload.get("drift") is not None
                ),
                None,
            )
            if drift is not None:
                self._metric_drift_l1.set(float(drift.get("l1", 0.0)))
                self._metric_drift_fired.set(1.0 if drift.get("fired") else 0.0)

    # ----------------------------------------------------------- round state

    def _set_round(self, spec: Optional[RoundSpec]) -> None:
        self.aggregator = (
            None if spec is None else ShardedAggregator(spec, n_shards=self.n_shards)
        )
        self.seen_batches = set()

    def to_state(self) -> dict[str, Any]:
        """The complete durable state (engine + mid-round counts + dedup ids)."""
        return {
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            "windows": None if self.controller is None else self.controller.to_state(),
            "ticket": None if self._ticket is None else self._ticket.to_dict(),
            "engine": self.engine.to_state(),
            "aggregator": None if self.aggregator is None else self.aggregator.to_state(),
            "seen_batches": sorted(self.seen_batches),
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_batches": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
        }

    # ------------------------------------------------------------- lifecycle

    async def _on_started(self) -> None:
        if self.store is not None:
            # Baseline checkpoint at boot: a crash before the first round
            # close is recoverable too (and a resumed gateway re-asserts its
            # restored state as the newest snapshot).
            await self._checkpoint_locked()

    # --------------------------------------------------------------- workers

    def _consume_shard_batch(self, shard: int, batch) -> None:
        assert self.aggregator is not None  # enqueue happens under lock
        self.aggregator.consume_shard(shard, batch)

    async def _checkpoint_locked(self) -> dict[str, Any]:
        """Quiesce the workers and persist one atomic snapshot (lock held)."""
        if self.store is None:
            raise ServerError("no checkpoint directory is configured")
        with trace_span("gateway.checkpoint"):
            await self._drain()
            path = self.store.save(self.to_state())
        self.checkpoints_written += 1
        self._accepted_since_checkpoint = 0
        return {"ok": True, "path": str(path)}

    # ------------------------------------------------------------ dispatching

    def _note_rejection(self, exc: ReproError) -> None:
        self.rejected_batches += 1

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        op = message.get("op")
        if op == "hello":
            payload = {
                "ok": True,
                "protocol": PROTOCOL_VERSION,
                "mechanism": "privshape",
                "epsilon": self.engine.config.epsilon,
                "n_shards": self.n_shards,
                "plan": self.engine.plan.to_dict(),
            }
            if self.controller is not None:
                payload["windows"] = {
                    "n_users": self.controller.plan.n_users,
                    "n_windows": self.controller.plan.n_windows,
                    "window_epsilon": self.controller.plan.window_epsilon,
                }
            return payload
        if op == "round":
            assert self._lock is not None
            async with self._lock:
                return self._round_payload()
        if op == "report":
            return await self._op_report(message)
        if op == "close_round":
            return await self._op_close_round(message)
        if op == "window":
            return await self._op_window(message)
        if op == "status":
            return {"ok": True, "status": self._status_payload()}
        if op == "result":
            assert self._lock is not None
            async with self._lock:
                return self._op_result()
        if op == "checkpoint":
            assert self._lock is not None
            async with self._lock:
                return await self._checkpoint_locked()
        if op == "stop":
            return self._signal_stop()
        raise WireFormatError(f"unknown op {op!r}")

    # ------------------------------------------------------------------- ops

    def _round_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        payload = {
            "ok": True,
            "done": spec is None and self.engine.is_done,
            "round": None if spec is None else spec.to_dict(),
            "plan": self.engine.plan.to_dict(),
        }
        if self.controller is not None:
            # Continual mode: "done" means the whole run; the current
            # window's completion ("window_done") asks the client for a
            # ``window`` op, and the ticket tells it which user slice to
            # stream (with local ids starting at 0).
            payload["done"] = self.controller.done
            payload["window_done"] = self.engine.is_done and not self.controller.done
            payload["window"] = (
                None if self._ticket is None else self._ticket.to_dict()
            )
        return payload

    async def _op_report(self, message: dict[str, Any]) -> dict[str, Any]:
        batch_id = check_batch_id(message.get("batch_id"))
        batch = batch_from_wire(message.get("data"))
        assert self._lock is not None
        async with self._lock:
            spec = self.engine.current_round
            if spec is None or self.aggregator is None:
                raise ProtocolStateError(
                    "no round is open"
                    + ("; the protocol is finished" if self.engine.is_done else "")
                )
            if batch.round_index != spec.index or batch.kind != spec.kind:
                raise ProtocolStateError(
                    f"batch for round {batch.round_index} ({batch.kind}) does not "
                    f"match open round {spec.index} ({spec.kind})"
                )
            batch.validate_against(spec)
            if batch_id in self.seen_batches:
                self.duplicate_batches += 1
                return {
                    "ok": True,
                    "accepted": False,
                    "round": spec.index,
                    "reports": 0,
                }
            self.seen_batches.add(batch_id)
            # A full shard queue blocks here — and, because requests on one
            # connection are handled in arrival order, blocks that client —
            # until the worker catches up: bounded memory by construction.
            for shard, sub_batch in self.aggregator.route(batch):
                await self._queues[shard].put(sub_batch)
            self.total_reports += len(batch)
            self.accepted_batches += 1
            self._accepted_since_checkpoint += 1
            self._metric_batch_reports.observe(len(batch))
            if (
                self.store is not None
                and self.checkpoint_every
                and self._accepted_since_checkpoint >= self.checkpoint_every
            ):
                await self._checkpoint_locked()
            return {
                "ok": True,
                "accepted": True,
                "round": spec.index,
                "reports": len(batch),
            }

    async def _op_close_round(self, message: dict[str, Any]) -> dict[str, Any]:
        assert self._lock is not None
        async with self._lock:
            spec = self.engine.current_round
            if spec is None:
                return self._round_payload()
            index = message.get("round")
            if index != spec.index:
                raise ProtocolStateError(
                    f"close_round for round {index!r}, but round {spec.index} is open"
                )
            started = time.perf_counter()
            with trace_span("gateway.close_round", round=spec.index, kind=spec.kind):
                await self._drain()
                assert self.aggregator is not None
                aggregate = self.aggregator.finalize_round()
                self.engine.close_round(spec, aggregate)
                self._set_round(self.engine.open_round())
            self._metric_close_seconds.observe(time.perf_counter() - started)
            self._metric_rounds_closed.inc(kind=spec.kind)
            if self.store is not None:
                await self._checkpoint_locked()
            return self._round_payload()

    async def _op_window(self, message: dict[str, Any]) -> dict[str, Any]:
        """Close the finished window, fold it into the run, open the next.

        Not idempotent by id like ``report`` — but safe to replay: once the
        window has advanced, a stale retry sees a not-yet-finished successor
        engine and is rejected, and the client just re-reads ``round``.
        """
        assert self._lock is not None
        async with self._lock:
            if self.controller is None:
                raise ProtocolStateError(
                    "this gateway is not running a continual (windowed) plan"
                )
            if self._ticket is None:
                raise ProtocolStateError("every window is already closed")
            if not self.engine.is_done:
                raise ProtocolStateError(
                    f"window {self._ticket.index} is still in stage "
                    f"{self.engine.stage!r}; close its rounds first"
                )
            with trace_span(
                "gateway.close_window",
                window=self._ticket.index,
                attempt=self._ticket.attempt,
            ):
                await self._drain()
                closed = self.controller.close_window(self._ticket, self.engine)
            self._ticket = self.controller.next_ticket()
            if self._ticket is not None:
                self.engine = self.controller.build_engine(self._ticket)
                self._set_round(self.engine.open_round())
            else:
                self._set_round(None)
            self._result_payload = None
            if self.store is not None:
                await self._checkpoint_locked()
            return {
                "ok": True,
                "closed": closed,
                "done": self.controller.done,
                "window": None if self._ticket is None else self._ticket.to_dict(),
            }

    def _status_payload(self) -> dict[str, Any]:
        spec = self.engine.current_round
        uptime = max(time.monotonic() - self._started_at, 1e-9)
        payload = {
            "stage": self.engine.stage,
            "done": self.engine.is_done,
            "round": None if spec is None else spec.index,
            "kind": None if spec is None else spec.kind,
            "reports_in_round": 0 if self.aggregator is None else self.aggregator.n_reports,
            "total_reports": self.total_reports,
            "accepted_batches": self.accepted_batches,
            "duplicate_batches": self.duplicate_batches,
            "rejected_requests": self.rejected_batches,
            "checkpoints_written": self.checkpoints_written,
            "n_shards": self.n_shards,
            "queue_depth": self.queue_depth,
            # Live health: how deep each bounded shard queue currently sits,
            # how many accepted batches the last durable snapshot is behind,
            # and the cumulative ingest rate since boot.
            "queue_depths": self.queue_depths(),
            "checkpoint_lag_batches": self._accepted_since_checkpoint,
            "reports_per_second": self.total_reports / uptime,
            "epsilon": self.engine.config.epsilon,
            "uptime_seconds": time.monotonic() - self._started_at,
        }
        if self.controller is not None:
            payload.update(
                {
                    "windowed": True,
                    "done": self.controller.done,
                    "window": None if self._ticket is None else self._ticket.index,
                    "window_attempt": None
                    if self._ticket is None
                    else self._ticket.attempt,
                    "window_mode": None if self._ticket is None else self._ticket.mode,
                    "windows_total": self.controller.plan.n_windows,
                    "windows_closed": len(self.controller.results),
                }
            )
        return payload

    def _op_result(self) -> dict[str, Any]:
        if self.controller is not None:
            if not self.controller.done:
                raise ProtocolStateError(
                    f"continual run still in stage {self.engine.stage!r} of window "
                    f"{self._ticket.index if self._ticket else '?'}; "
                    "close every window first"
                )
            if self._result_payload is None:
                self._result_payload = {
                    "windows": self.controller.results,
                    "accounting": self.controller.master_accounting(),
                    "base_seed": self.controller.base_seed,
                }
            return {"ok": True, "result": self._result_payload}
        if not self.engine.is_done:
            raise ProtocolStateError(
                f"protocol still in stage {self.engine.stage!r}; "
                "close every round first"
            )
        if self._result_payload is None:
            self._result_payload = result_payload(self.engine)
        return {"ok": True, "result": self._result_payload}

    # ---------------------------------------------------------------- HTTP

    async def _http_payload(self, path: str) -> tuple[int, dict[str, Any]]:
        if path == "/status":
            return 200, {"ok": True, "status": self._status_payload()}
        if path == "/result":
            assert self._lock is not None
            async with self._lock:
                try:
                    return 200, self._op_result()
                except ReproError as exc:
                    return 409, {"ok": False, "error": str(exc)}
        return await super()._http_payload(path)
