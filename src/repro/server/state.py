"""Durable gateway state: atomic JSON checkpoints.

A checkpoint is one JSON document holding the complete protocol state — the
:class:`~repro.service.protocol.PrivShapeEngine` snapshot (master-generator
state included), the open round's :class:`~repro.service.aggregator.ShardedAggregator`
shard counts, and the set of already-accepted batch ids.  Writes go through
the classic write-temp + fsync + rename dance, so a crash mid-write leaves
the previous checkpoint intact; restores therefore always see either the old
or the new state, never a torn one.

Idempotent batch ids are what make recovery exact: a load generator that
replays a round after a crash re-sends every batch, the gateway drops the
ones whose ids are already in the checkpoint, and the integer count state
ends up identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.exceptions import WireFormatError

#: Checkpoint schema revision.
CHECKPOINT_VERSION = 1


class CheckpointStore:
    """Atomic single-file JSON checkpoint storage for one collection run."""

    FILENAME = "checkpoint.json"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)

    @property
    def path(self) -> Path:
        """Location of the current checkpoint document."""
        return self.directory / self.FILENAME

    def save(self, state: dict[str, Any]) -> Path:
        """Atomically persist ``state`` (write temp, fsync, rename)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = dict(state)
        payload["version"] = CHECKPOINT_VERSION
        temp_path = self.directory / (self.FILENAME + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, self.path)
        return self.path

    def load(self) -> dict[str, Any] | None:
        """The latest checkpoint, or ``None`` when none has been written."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            state = json.loads(text)
        except json.JSONDecodeError as exc:
            raise WireFormatError(
                f"checkpoint {self.path} is corrupt: {exc}"
            ) from exc
        if not isinstance(state, dict):
            raise WireFormatError(f"checkpoint {self.path} is not a JSON object")
        version = state.get("version")
        if version != CHECKPOINT_VERSION:
            raise WireFormatError(
                f"checkpoint {self.path} has version {version!r}; "
                f"this build reads version {CHECKPOINT_VERSION}"
            )
        return state
