"""Shared asyncio serving plumbing for every wire-facing server.

:class:`SocketServiceBase` factors the transport layer out of the collection
gateway so the cluster processes (:class:`~repro.cluster.worker.ShardWorker`,
:class:`~repro.cluster.coordinator.Coordinator`) expose the exact same wire
surface: an asyncio TCP listener answering the newline-delimited JSON ops of
:mod:`repro.server.wire` and plain HTTP ``GET`` requests on the same port,
one bounded :class:`asyncio.Queue` plus one aggregation task per shard
(explicit backpressure — a full queue blocks the producing connection, it
never buffers without bound), and a deterministic start / drain / stop
lifecycle that is safe to drive from another thread.

Subclasses supply the protocol: :meth:`_dispatch` (the op table),
:meth:`_consume_shard_batch` (what an aggregation task does with a routed
sub-batch), and :meth:`_http_payload` (the JSON GET routes beyond
``/healthz``).  Every server also owns a telemetry registry
(``self.metrics``) served as Prometheus text on ``GET /metrics``; the
:meth:`_update_metrics` hook refreshes scrape-time gauges just before
rendering.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Any

from repro.exceptions import ReproError, ServerError
from repro.obs.metrics import MetricsRegistry
from repro.obs.promtext import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.server.wire import MAX_LINE_BYTES, decode_message, encode_message

#: HTTP reason phrases for the status codes the servers emit.
_HTTP_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 409: "Conflict"}


def result_payload(engine) -> dict[str, Any]:
    """The canonical ``result`` document of one finalized engine.

    Shared by the gateway and the cluster coordinator so every serving
    surface publishes byte-identical result payloads for the same run.
    """
    result = engine.finalize()
    return {
        "shapes": ["".join(shape) for shape in result.shapes],
        "shape_tuples": [list(shape) for shape in result.shapes],
        "frequencies": [float(f) for f in result.frequencies],
        "estimated_length": result.estimated_length,
        "accounting": {
            "per_population": {
                name: float(total)
                for name, total in result.accountant.per_population().items()
            },
            "user_level_epsilon": float(result.accountant.user_level_epsilon()),
            "within_budget": result.accountant.is_valid(),
        },
    }


class SocketServiceBase:
    """Asyncio TCP server speaking NDJSON ops + HTTP GETs on one port."""

    def _init_plumbing(self, n_shards: int, queue_depth: int) -> None:
        """Initialize the transport state (call from __init__ *and* any
        ``__new__``-based restore path before the instance serves)."""
        if n_shards < 0:
            raise ValueError(f"n_shards must be >= 0, got {n_shards}")
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        self.n_shards = int(n_shards)
        self.queue_depth = int(queue_depth)
        self._started_at = time.monotonic()
        # Telemetry: one process-local registry per server, scraped on
        # GET /metrics.  The rejection counter lives here because
        # _dispatch_safely (the only place rejections surface) is ours.
        self.metrics = MetricsRegistry()
        self._metric_rejected = self.metrics.counter(
            "privshape_requests_rejected_total",
            "NDJSON ops rejected with a ReproError",
        )
        self._metric_queue_depth = self.metrics.gauge(
            "privshape_queue_depth",
            "Live aggregation queue depth per shard",
            labelnames=("shard",),
        )
        self._metric_uptime = self.metrics.gauge(
            "privshape_uptime_seconds", "Seconds since this server object started"
        )
        # asyncio plumbing; created once the event loop runs (see start()).
        self._loop: asyncio.AbstractEventLoop | None = None
        self._lock: asyncio.Lock | None = None
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self.host: str | None = None
        self.port: int | None = None

    # ------------------------------------------------------------- lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Bind the listener and launch the per-shard aggregation workers."""
        self._loop = asyncio.get_running_loop()
        self._lock = asyncio.Lock()
        self._stop_event = asyncio.Event()
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(self.n_shards)
        ]
        self._workers = [
            asyncio.create_task(self._shard_worker(shard, queue))
            for shard, queue in enumerate(self._queues)
        ]
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        await self._on_started()

    async def _on_started(self) -> None:
        """Hook: runs once the listener is bound (e.g. baseline checkpoint)."""

    async def serve_until_stopped(self) -> None:
        """Serve until a ``stop`` op or :meth:`request_stop` arrives."""
        if self._server is None or self._stop_event is None:
            raise ServerError("server is not started; call start() first")
        async with self._server:
            await self._stop_event.wait()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)

    async def run(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Start and serve until stopped (the CLI entry point)."""
        await self.start(host, port)
        await self.serve_until_stopped()

    def request_stop(self) -> None:
        """Ask the serving loop to exit (safe to call from any thread)."""
        if self._loop is None or self._stop_event is None:
            return
        self._loop.call_soon_threadsafe(self._stop_event.set)

    def _signal_stop(self) -> dict[str, Any]:
        """The ``stop`` op body: set the stop event, acknowledge."""
        if self._stop_event is not None:
            self._stop_event.set()
        return {"ok": True, "stopping": True}

    @property
    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_at

    # --------------------------------------------------------------- workers

    async def _shard_worker(self, shard: int, queue: asyncio.Queue) -> None:
        """Fold routed sub-batches into this worker's shard, forever."""
        while True:
            batch = await queue.get()
            try:
                self._consume_shard_batch(shard, batch)
            finally:
                queue.task_done()

    def _consume_shard_batch(self, shard: int, batch) -> None:
        raise NotImplementedError

    async def _drain(self) -> None:
        """Wait until every enqueued batch has been folded into its shard."""
        await asyncio.gather(*(queue.join() for queue in self._queues))

    def queue_depths(self) -> list[int]:
        """Live per-shard queue depths (observability; empty before start)."""
        return [queue.qsize() for queue in self._queues]

    # ------------------------------------------------------------ dispatching

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if line[:4] == b"GET " or line[:5] == b"HEAD ":
                await self._handle_http(line, reader, writer)
                return
            while line:
                stripped = line.strip()
                if stripped:
                    response = await self._dispatch_safely(stripped)
                    writer.write(encode_message(response))
                    await writer.drain()
                    if response.get("stopping"):
                        break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        except ValueError:
            # Line exceeded the stream limit: tell the peer once, then drop it.
            try:
                writer.write(
                    encode_message(
                        {"ok": False, "error": f"line exceeds {MAX_LINE_BYTES} bytes"}
                    )
                )
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            except asyncio.CancelledError:
                # Event-loop teardown cancelled us while the peer's socket
                # was still closing; the connection is gone either way.
                pass

    async def _dispatch_safely(self, line: bytes) -> dict[str, Any]:
        try:
            message = decode_message(line)
            return await self._dispatch(message)
        except ReproError as exc:
            self._metric_rejected.inc()
            self._note_rejection(exc)
            return {"ok": False, "error": str(exc), "error_type": type(exc).__name__}

    def _note_rejection(self, exc: ReproError) -> None:
        """Hook: count a rejected request (subclasses keep the counter)."""

    async def _dispatch(self, message: dict[str, Any]) -> dict[str, Any]:
        raise NotImplementedError

    # ---------------------------------------------------------------- HTTP

    async def _handle_http(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        parts = request_line.decode("latin-1").split()
        while True:  # drain request headers
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
        if len(parts) >= 2:
            status, body, content_type = await self._http_response(parts[1])
        else:
            # Malformed request line (e.g. bare "GET"): answer 400, not a
            # guessed route.
            payload = {"ok": False, "error": "malformed request line"}
            status, content_type = 400, "application/json"
            body = json.dumps(payload).encode("utf-8")
        reason = _HTTP_REASONS.get(status, "Error")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n".encode("latin-1")
            + body
        )
        await writer.drain()

    async def _http_response(self, path: str) -> tuple[int, bytes, str]:
        """Route one GET path to ``(status, body, content_type)``.

        ``/metrics`` serves the telemetry registry as Prometheus text; every
        other route goes through the JSON :meth:`_http_payload` table.
        """
        if path == "/metrics":
            text = await self._render_metrics()
            return 200, text.encode("utf-8"), _METRICS_CONTENT_TYPE
        status, payload = await self._http_payload(path)
        return status, json.dumps(payload).encode("utf-8"), "application/json"

    async def _render_metrics(self) -> str:
        """Render the exposition document (the coordinator overrides this to
        merge its workers' snapshots into the scrape)."""
        self._update_metrics()
        return self.metrics.render()

    def _update_metrics(self) -> None:
        """Hook: refresh scrape-time gauges from authoritative server state."""
        self._metric_uptime.set(self.uptime_seconds)
        for shard, depth in enumerate(self.queue_depths()):
            self._metric_queue_depth.set(depth, shard=shard)

    async def _http_payload(self, path: str) -> tuple[int, dict[str, Any]]:
        """Route one JSON GET path; subclasses extend and fall back to this."""
        if path == "/healthz":
            return 200, {"ok": True}
        return 404, {"ok": False, "error": f"unknown path {path!r}"}
