"""Load generation for the collection gateway.

``run_loadgen`` drives a full protocol run over the socket: it asks the
gateway for the open round, streams a population source through the
vectorized :class:`~repro.service.client.ClientReporter` encoding paths,
ships the resulting :class:`~repro.service.reports.ReportBatch` frames, and
closes the round — repeating until the protocol is done.

The per-round streaming can fan out over ``workers`` OS processes: user ids
are split into contiguous slices and every worker regenerates its own slice
(populations are PRF-keyed pure functions of the user id, so slices are
exact).  Batch ids are deterministic functions of ``(round, user-id window)``,
which makes retries and post-crash replays idempotent on the server side: a
slice can be replayed from the top after a connection failure and every
already-accepted batch is acknowledged without being counted twice.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.continual.windows import WindowView
from repro.exceptions import ConfigurationError, ServerConnectionError
from repro.obs import PHASE_ENCODE, PHASE_TRANSPORT, profile_phase, trace_span
from repro.server.client import GatewayClient
from repro.service.client import ClientReporter
from repro.service.plan import CollectionPlan, RoundSpec
from repro.service.population import worker_slices


def batch_id_for(round_index: int, window_start: int, window_stop: int) -> str:
    """The deterministic idempotency key of one (round, user-window) batch."""
    return f"r{int(round_index)}:u{int(window_start)}:{int(window_stop)}"


@dataclass
class SliceStats:
    """What streaming one user-id slice through one round achieved."""

    #: Reports the server newly accepted (idempotent replays count zero).
    accepted: int = 0
    #: Batches sent (including replays and duplicate acknowledgements).
    batches: int = 0
    #: Reconnect-and-replay attempts beyond the first.
    retries: int = 0


def _stream_once(
    client: GatewayClient,
    population,
    plan: CollectionPlan,
    spec: RoundSpec,
    start: int,
    stop: int,
    batch_size: int,
    stats: SliceStats,
) -> None:
    reporter = ClientReporter()
    for user_ids, batch_population in population.iter_range(start, stop, batch_size):
        mask = plan.participant_mask(spec, user_ids)
        if not mask.any():
            continue
        participants = np.flatnonzero(mask)
        with profile_phase(PHASE_ENCODE, spec.index):
            batch = reporter.make_reports(
                spec, batch_population.take(participants), user_ids[participants]
            )
        with profile_phase(PHASE_TRANSPORT, spec.index):
            response = client.report(
                batch,
                batch_id=batch_id_for(spec.index, user_ids[0], user_ids[-1] + 1),
            )
        stats.batches += 1
        if response.get("accepted"):
            stats.accepted += int(response.get("reports", len(batch)))


def stream_round(
    host: str,
    port: int,
    population,
    plan_dict: dict[str, Any],
    round_dict: dict[str, Any],
    start: int,
    stop: int,
    batch_size: int,
    *,
    max_attempts: int = 1,
    retry_delay: float = 0.5,
) -> SliceStats:
    """Stream one round's reports for the user-id slice ``[start, stop)``.

    Top-level (picklable) so multiprocessing workers can run it.  A transport
    failure (the server died or a connection dropped) replays the whole slice
    from the top, up to ``max_attempts`` times — deterministic batch ids make
    the replay exact.  Protocol rejections are never retried.
    """
    plan = CollectionPlan.from_dict(plan_dict)
    spec = RoundSpec.from_dict(round_dict)
    stats = SliceStats()
    for attempt in range(max(int(max_attempts), 1)):
        try:
            with GatewayClient(host, port) as client:
                _stream_once(
                    client, population, plan, spec, start, stop, batch_size, stats
                )
            return stats
        except ServerConnectionError:
            if attempt + 1 >= max_attempts:
                raise
            stats.retries += 1
            time.sleep(min(retry_delay * (attempt + 1), 2.0))
    return stats  # pragma: no cover - loop always returns or raises


@dataclass
class LoadgenRoundStats:
    """Observability record of one round driven over the socket."""

    index: int
    kind: str
    reports: int
    elapsed_seconds: float
    #: Trie level of an expand round (-1 otherwise), published by the server.
    level: int = -1

    @property
    def reports_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.reports / self.elapsed_seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "round": self.index,
            "kind": self.kind,
            "level": self.level,
            "reports": self.reports,
            "elapsed_seconds": self.elapsed_seconds,
            "reports_per_second": self.reports_per_second,
        }


@dataclass
class LoadgenStats:
    """Observability record of one full load-generation run."""

    rounds: list[LoadgenRoundStats] = field(default_factory=list)
    total_reports: int = 0
    total_seconds: float = 0.0
    workers: int = 0
    batches: int = 0
    retries: int = 0
    result: dict[str, Any] | None = None
    server_status: dict[str, Any] | None = None

    @property
    def reports_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.total_reports / self.total_seconds

    def summary(self) -> dict[str, Any]:
        """The one-look run summary (``repro loadgen --json`` publishes this)."""
        return {
            "reports_sent": self.total_reports,
            "batches": self.batches,
            "retries": self.retries,
            "wall_seconds": self.total_seconds,
            "reports_per_second": self.reports_per_second,
            "workers": self.workers,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "rounds": [r.to_dict() for r in self.rounds],
            "total_reports": self.total_reports,
            "total_seconds": self.total_seconds,
            "reports_per_second": self.reports_per_second,
            "workers": self.workers,
            "batches": self.batches,
            "retries": self.retries,
            "summary": self.summary(),
            "result": self.result,
            "server_status": self.server_status,
        }


def run_loadgen(
    host: str,
    port: int,
    population,
    *,
    batch_size: int = 8192,
    workers: int = 0,
    mp_context: str = "spawn",
    timeout: float = 120.0,
) -> LoadgenStats:
    """Drive a complete collection run against a gateway and fetch the result.

    ``workers=0`` streams in-process (deterministic, test-friendly);
    ``workers>=1`` fans each round out over that many OS processes.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    stats = LoadgenStats(workers=max(int(workers), 0))
    n_users = population.n_users
    started = time.perf_counter()
    pool = None
    try:
        with GatewayClient(host, port, timeout=timeout) as control:
            while True:
                current = control.round()
                if current["done"]:
                    break
                round_dict, plan_dict = current["round"], current["plan"]
                round_started = time.perf_counter()
                with trace_span(
                    "loadgen.round",
                    round=round_dict["index"],
                    kind=round_dict["kind"],
                ):
                    if stats.workers >= 1:
                        slices = worker_slices(n_users, stats.workers)
                        if pool is None:
                            # One pool for the whole run: workers pay the
                            # spawn + import cost once, not once per round.
                            context = multiprocessing.get_context(mp_context)
                            pool = context.Pool(len(slices))
                        slice_stats = pool.starmap(
                            stream_round,
                            [
                                (host, port, population, plan_dict, round_dict,
                                 start, stop, batch_size)
                                for start, stop in slices
                            ],
                        )
                    else:
                        slice_stats = [
                            stream_round(
                                host, port, population, plan_dict, round_dict,
                                0, n_users, batch_size,
                            )
                        ]
                    control.close_round(round_dict["index"])
                stats.batches += sum(s.batches for s in slice_stats)
                stats.retries += sum(s.retries for s in slice_stats)
                stats.rounds.append(
                    LoadgenRoundStats(
                        index=int(round_dict["index"]),
                        kind=str(round_dict["kind"]),
                        reports=int(sum(s.accepted for s in slice_stats)),
                        elapsed_seconds=time.perf_counter() - round_started,
                        level=int(round_dict.get("level", -1)),
                    )
                )
            stats.total_seconds = time.perf_counter() - started
            stats.total_reports = sum(r.reports for r in stats.rounds)
            stats.result = control.result()
            stats.server_status = control.status()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return stats


@dataclass
class WindowLoadgenStats(LoadgenStats):
    """Loadgen stats for a continual run: rounds plus closed-window records."""

    #: One summary per ``window`` op the loadgen drove, in execution order.
    windows: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        data = super().to_dict()
        data["windows"] = self.windows
        return data


def run_window_loadgen(
    host: str,
    port: int,
    population,
    *,
    batch_size: int = 8192,
    workers: int = 0,
    mp_context: str = "spawn",
    timeout: float = 120.0,
    max_attempts: int = 1,
    retry_delay: float = 0.5,
) -> WindowLoadgenStats:
    """Drive a complete *continual* run against a windowed gateway.

    Same contract as :func:`run_loadgen`, window by window: each round is
    streamed from a :class:`~repro.continual.windows.WindowView` of the
    population (the current ticket's user slice, re-based to local ids so
    the gateway's estimates are byte-identical to a standalone run), and
    whenever the gateway reports the window's protocol finished, a
    ``window`` op folds it into the run and opens the next window.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    stats = WindowLoadgenStats(workers=max(int(workers), 0))
    started = time.perf_counter()
    pool = None
    try:
        with GatewayClient(host, port, timeout=timeout) as control:
            hello = control.hello()
            info = hello.get("windows")
            if info is None:
                raise ConfigurationError(
                    "gateway is not running a continual plan; use run_loadgen"
                )
            if int(info["n_users"]) != int(population.n_users):
                raise ConfigurationError(
                    f"gateway planned windows over {info['n_users']} users, "
                    f"population has {population.n_users}"
                )
            while True:
                current = control.round()
                if current["done"]:
                    break
                if current.get("window_done"):
                    advanced = control.request({"op": "window"})
                    closed = advanced.get("closed", {})
                    stats.windows.append(
                        {
                            "window": closed.get("window"),
                            "attempt": closed.get("attempt"),
                            "mode": closed.get("mode"),
                            "final": closed.get("final"),
                            "shapes": closed.get("shapes"),
                        }
                    )
                    continue
                ticket = current["window"]
                view = WindowView(population, ticket["start"], ticket["stop"])
                round_dict, plan_dict = current["round"], current["plan"]
                round_started = time.perf_counter()
                with trace_span(
                    "loadgen.round",
                    round=round_dict["index"],
                    kind=round_dict["kind"],
                    window=ticket["index"],
                ):
                    if stats.workers >= 1:
                        slices = worker_slices(view.n_users, stats.workers)
                        if pool is None:
                            context = multiprocessing.get_context(mp_context)
                            pool = context.Pool(min(stats.workers, len(slices)))
                        slice_stats = pool.starmap(
                            stream_round,
                            [
                                (host, port, view, plan_dict, round_dict,
                                 start, stop, batch_size)
                                for start, stop in slices
                            ],
                        )
                    else:
                        slice_stats = [
                            stream_round(
                                host, port, view, plan_dict, round_dict,
                                0, view.n_users, batch_size,
                                max_attempts=max_attempts,
                                retry_delay=retry_delay,
                            )
                        ]
                    control.close_round(round_dict["index"])
                stats.batches += sum(s.batches for s in slice_stats)
                stats.retries += sum(s.retries for s in slice_stats)
                stats.rounds.append(
                    LoadgenRoundStats(
                        index=int(round_dict["index"]),
                        kind=str(round_dict["kind"]),
                        reports=int(sum(s.accepted for s in slice_stats)),
                        elapsed_seconds=time.perf_counter() - round_started,
                        level=int(round_dict.get("level", -1)),
                    )
                )
            stats.total_seconds = time.perf_counter() - started
            stats.total_reports = sum(r.reports for r in stats.rounds)
            stats.result = control.result()
            stats.server_status = control.status()
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()
    return stats
