"""Blocking socket client for the collection gateway.

:class:`GatewayClient` is the reference NDJSON peer: one request line out,
one response line back.  The load generator, the CLI, and the tests all talk
to the gateway through it; anything it can do, any language with a TCP
socket and a JSON encoder can do too.
"""

from __future__ import annotations

import json
import socket
from typing import Any

from repro.exceptions import ServerConnectionError, ServerError
from repro.server.wire import batch_to_wire, encode_message
from repro.service.reports import ReportBatch


class GatewayClient:
    """One NDJSON connection to a :class:`~repro.server.gateway.CollectionGateway`."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = int(port)
        try:
            self._socket = socket.create_connection((host, self.port), timeout=timeout)
        except OSError as exc:
            raise ServerConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        self._reader = self._socket.makefile("rb")

    # ------------------------------------------------------------- transport

    def request(self, payload: dict[str, Any], check: bool = True) -> dict[str, Any]:
        """Send one op and return the response dict.

        With ``check`` (the default), a response whose ``ok`` is false raises
        :class:`~repro.exceptions.ServerError` carrying the server's message.
        Transport failures (connect, send, receive, or a server that vanished
        mid-request) raise the :class:`~repro.exceptions.ServerConnectionError`
        subclass instead, so retry loops can replay a slice after a worker
        crash without also retrying requests the server deliberately refused.
        """
        try:
            self._socket.sendall(encode_message(payload))
            line = self._reader.readline()
        except OSError as exc:
            raise ServerConnectionError(
                f"connection to {self.host}:{self.port} failed: {exc}"
            ) from exc
        if not line:
            raise ServerConnectionError(
                f"connection to {self.host}:{self.port} closed by server"
            )
        try:
            response = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServerError(f"server sent a malformed response: {exc}") from exc
        if check and not (isinstance(response, dict) and response.get("ok")):
            error = response.get("error") if isinstance(response, dict) else response
            raise ServerError(f"server rejected {payload.get('op')!r}: {error}")
        return response

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
            self._socket.close()
        except OSError:
            pass

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------- ops

    def hello(self) -> dict[str, Any]:
        """Protocol version, mechanism, and the published collection plan."""
        return self.request({"op": "hello"})

    def round(self) -> dict[str, Any]:
        """The currently open round (``done`` true once the protocol ended)."""
        return self.request({"op": "round"})

    def report(self, batch: ReportBatch, batch_id: str) -> dict[str, Any]:
        """Submit one report batch under an idempotency key."""
        return self.request(
            {"op": "report", "batch_id": batch_id, "data": batch_to_wire(batch)}
        )

    def close_round(self, index: int) -> dict[str, Any]:
        """Close round ``index`` and receive the next round (or ``done``)."""
        return self.request({"op": "close_round", "round": int(index)})

    def status(self) -> dict[str, Any]:
        """The gateway's live status record."""
        return self.request({"op": "status"})["status"]

    def result(self) -> dict[str, Any]:
        """The finalized extraction result (errors while rounds remain open)."""
        return self.request({"op": "result"})["result"]

    def checkpoint(self) -> dict[str, Any]:
        """Force an immediate durable checkpoint."""
        return self.request({"op": "checkpoint"})

    def stop(self) -> None:
        """Ask the gateway process to shut down."""
        self.request({"op": "stop"})
