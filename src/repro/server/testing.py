"""In-process gateway hosting for tests, benchmarks, and embedding.

``serve_in_thread`` runs a :class:`~repro.server.gateway.CollectionGateway`
on a private event loop in a daemon thread and hands back a
:class:`GatewayHandle` with the bound address — the calling thread can then
talk to it over real sockets exactly like an external client would, and shut
it down deterministically when finished.
"""

from __future__ import annotations

import asyncio
import threading

from repro.exceptions import ServerError
from repro.server.gateway import CollectionGateway


class GatewayHandle:
    """A gateway serving on a background thread, with its bound address."""

    def __init__(
        self, gateway: CollectionGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self._requested_host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name="collection-gateway", daemon=True
        )

    @property
    def host(self) -> str:
        assert self.gateway.host is not None
        return self.gateway.host

    @property
    def port(self) -> int:
        assert self.gateway.port is not None
        return self.gateway.port

    def start(self, timeout: float = 30.0) -> "GatewayHandle":
        """Launch the serving thread and wait until the listener is bound (idempotent)."""
        if not self._thread.is_alive() and not self._ready.is_set():
            self._thread.start()
        if not self._ready.wait(timeout):
            raise ServerError("gateway did not come up within the timeout")
        if self._error is not None:
            raise ServerError(f"gateway failed to start: {self._error!r}")
        return self

    def client(self, timeout: float = 60.0):
        """A fresh blocking :class:`~repro.server.client.GatewayClient`.

        Convenience for callers already holding the handle (tests, embedded
        gateways): the caller owns the connection — use it as a context
        manager.
        """
        from repro.server.client import GatewayClient

        return GatewayClient(self.host, self.port, timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Stop serving and join the thread (idempotent)."""
        self.gateway.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServerError("gateway thread did not exit within the timeout")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.gateway.start(self._requested_host, self._requested_port)
        self._ready.set()
        await self.gateway.serve_until_stopped()

    def __enter__(self) -> "GatewayHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_in_thread(
    gateway: CollectionGateway, host: str = "127.0.0.1", port: int = 0
) -> GatewayHandle:
    """Serve ``gateway`` on a daemon thread; returns the started handle."""
    return GatewayHandle(gateway, host, port).start()
