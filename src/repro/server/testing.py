"""In-process server hosting for tests, benchmarks, and embedding.

``serve_in_thread`` runs any :class:`~repro.server.base.SocketServiceBase`
(the collection gateway, a cluster shard worker, or a coordinator) on a
private event loop in a daemon thread and hands back a :class:`ServerHandle`
with the bound address — the calling thread can then talk to it over real
sockets exactly like an external client would, and shut it down
deterministically when finished.

With ``port_file`` set, the handle publishes the actual bound port with an
atomic write-temp + rename once the listener is up, so several servers asked
for port 0 can boot in parallel without any reader ever seeing a torn file.
"""

from __future__ import annotations

import asyncio
import os
import threading

from repro.exceptions import ServerError
from repro.server.base import SocketServiceBase
from repro.server.portfile import publish_port


class ServerHandle:
    """A server serving on a background thread, with its bound address."""

    def __init__(
        self,
        server: SocketServiceBase,
        host: str = "127.0.0.1",
        port: int = 0,
        port_file: str | os.PathLike | None = None,
    ) -> None:
        self.server = server
        self.port_file = port_file
        self._requested_host = host
        self._requested_port = port
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, name=type(server).__name__, daemon=True
        )

    @property
    def gateway(self) -> SocketServiceBase:
        """Back-compat alias for callers that hosted a CollectionGateway."""
        return self.server

    @property
    def host(self) -> str:
        assert self.server.host is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def start(self, timeout: float = 30.0) -> "ServerHandle":
        """Launch the serving thread and wait until the listener is bound (idempotent)."""
        if not self._thread.is_alive() and not self._ready.is_set():
            self._thread.start()
        if not self._ready.wait(timeout):
            raise ServerError("server did not come up within the timeout")
        if self._error is not None:
            raise ServerError(f"server failed to start: {self._error!r}")
        return self

    def client(self, timeout: float = 60.0):
        """A fresh blocking :class:`~repro.server.client.GatewayClient`.

        Convenience for callers already holding the handle (tests, embedded
        servers): the caller owns the connection — use it as a context
        manager.
        """
        from repro.server.client import GatewayClient

        return GatewayClient(self.host, self.port, timeout=timeout)

    def stop(self, timeout: float = 30.0) -> None:
        """Stop serving and join the thread (idempotent)."""
        self.server.request_stop()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServerError("server thread did not exit within the timeout")

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced via start()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.server.start(self._requested_host, self._requested_port)
        if self.port_file is not None:
            # Publish only after the listener is bound: the file appearing
            # guarantees the port is connectable, and the rename makes the
            # appearance atomic.
            publish_port(self.port_file, self.port)
        self._ready.set()
        await self.server.serve_until_stopped()

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


#: Historical name from when the gateway was the only hostable server.
GatewayHandle = ServerHandle


def serve_in_thread(
    server: SocketServiceBase,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | os.PathLike | None = None,
) -> ServerHandle:
    """Serve ``server`` on a daemon thread; returns the started handle."""
    return ServerHandle(server, host, port, port_file=port_file).start()
