"""Atomic port-file publication for servers bound to ephemeral ports.

A server asked to bind port 0 learns its real port only after the listener
exists; scripts that started it need a race-free way to read that port.  The
contract here is the classic write-temp + rename dance: the port file either
does not exist yet or contains one complete, valid port number — a reader
polling the path can never observe a partially written file, even when
several servers boot in parallel in the same directory.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.exceptions import ServerError


def publish_port(path: str | os.PathLike, port: int) -> Path:
    """Atomically write ``port`` to ``path`` (write temp, rename).

    The temp file carries the writer's pid so concurrent publishers in one
    directory never clobber each other's half-written files.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(f"{target.name}.tmp.{os.getpid()}")
    temp.write_text(f"{int(port)}\n", encoding="utf-8")
    os.replace(temp, target)
    return target


def read_port(path: str | os.PathLike) -> int | None:
    """The published port, or ``None`` while nothing is published yet."""
    try:
        text = Path(path).read_text(encoding="utf-8").strip()
    except FileNotFoundError:
        return None
    if not text:
        return None
    try:
        return int(text)
    except ValueError as exc:
        raise ServerError(f"port file {path} is not a port number: {text!r}") from exc


def wait_for_port_file(
    path: str | os.PathLike, timeout: float = 30.0, poll_interval: float = 0.05
) -> int:
    """Poll ``path`` until a port appears (atomic writes make this race-free)."""
    deadline = time.monotonic() + timeout
    while True:
        port = read_port(path)
        if port is not None:
            return port
        if time.monotonic() >= deadline:
            raise ServerError(
                f"no port was published in {path} within {timeout:.0f}s"
            )
        time.sleep(poll_interval)
