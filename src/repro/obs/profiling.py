"""Opt-in phase and kernel profiling for the collection hot path.

Two granularities share one :class:`PhaseProfiler`:

* **phases** — every instrumented driver attributes per-round wall time to
  the four protocol phases :data:`PHASE_ENCODE` (client-side report
  construction), :data:`PHASE_TRANSPORT` (wire serialization / socket
  round-trips), :data:`PHASE_AGGREGATE` (accumulator folds), and
  :data:`PHASE_ESTIMATE` (server-side round close / estimation);
* **kernels** — the numerical kernels inside those phases (GRR/OUE
  ``encode_batch``, the EM sampler, ``accumulate``) record call counts and
  cumulative seconds, at per-batch granularity so the bookkeeping stays off
  the per-report path.

Like tracing, the default is a shared no-op: :func:`profile_phase` and
:func:`profile_kernel` return a stateless null context manager until a
profiler is installed, and nothing here ever touches a random generator.
"""

from __future__ import annotations

import threading
import time
from typing import Any

from repro.obs.tracing import NULL_SPAN

__all__ = [
    "PHASE_ENCODE",
    "PHASE_TRANSPORT",
    "PHASE_AGGREGATE",
    "PHASE_ESTIMATE",
    "PhaseProfiler",
    "profile_phase",
    "profile_kernel",
    "install_profiler",
    "uninstall_profiler",
    "current_profiler",
]

PHASE_ENCODE = "encode"
PHASE_TRANSPORT = "transport"
PHASE_AGGREGATE = "aggregate"
PHASE_ESTIMATE = "estimate"

#: Attribution order used when reporting (not all phases occur on all paths).
PHASES = (PHASE_ENCODE, PHASE_TRANSPORT, PHASE_AGGREGATE, PHASE_ESTIMATE)


class _TimedSection:
    __slots__ = ("_profiler", "_table", "_key", "_start_ns")

    def __init__(self, profiler: "PhaseProfiler", table: str, key: Any) -> None:
        self._profiler = profiler
        self._table = table
        self._key = key

    def __enter__(self) -> "_TimedSection":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        elapsed = (time.perf_counter_ns() - self._start_ns) / 1e9
        self._profiler._add(self._table, self._key, elapsed)
        return False


class PhaseProfiler:
    """Accumulates phase and kernel wall time; thread-safe."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (round_index | None, phase) -> seconds
        self._phases: dict[tuple[Any, str], float] = {}
        # kernel name -> [calls, seconds]
        self._kernels: dict[str, list[float]] = {}

    def _add(self, table: str, key: Any, elapsed: float) -> None:
        with self._lock:
            if table == "phase":
                self._phases[key] = self._phases.get(key, 0.0) + elapsed
            else:
                entry = self._kernels.setdefault(key, [0, 0.0])
                entry[0] += 1
                entry[1] += elapsed

    def phase(self, phase: str, round_index: int | None = None) -> _TimedSection:
        return _TimedSection(self, "phase", (round_index, phase))

    def kernel(self, name: str) -> _TimedSection:
        return _TimedSection(self, "kernel", name)

    def report(self) -> dict[str, Any]:
        """JSON-able summary: total seconds per phase, per round, per kernel."""
        with self._lock:
            phases = dict(self._phases)
            kernels = {k: list(v) for k, v in self._kernels.items()}
        totals = {phase: 0.0 for phase in PHASES}
        rounds: dict[int, dict[str, float]] = {}
        for (round_index, phase), seconds in phases.items():
            totals[phase] = totals.get(phase, 0.0) + seconds
            if round_index is not None:
                rounds.setdefault(int(round_index), {})[phase] = round(seconds, 6)
        return {
            "phases": {k: round(v, 6) for k, v in totals.items() if v > 0.0},
            "rounds": [
                {"round": index, **rounds[index]} for index in sorted(rounds)
            ],
            "kernels": {
                name: {"calls": int(calls), "seconds": round(seconds, 6)}
                for name, (calls, seconds) in sorted(kernels.items())
            },
        }


_PROFILER: PhaseProfiler | None = None


def profile_phase(phase: str, round_index: int | None = None):
    """Time a protocol phase — a shared no-op until a profiler is installed."""
    profiler = _PROFILER
    if profiler is None:
        return NULL_SPAN
    return profiler.phase(phase, round_index)


def profile_kernel(name: str):
    """Time one hot-kernel call — a shared no-op until a profiler is installed."""
    profiler = _PROFILER
    if profiler is None:
        return NULL_SPAN
    return profiler.kernel(name)


def install_profiler(profiler: PhaseProfiler) -> None:
    global _PROFILER
    _PROFILER = profiler


def uninstall_profiler() -> None:
    global _PROFILER
    _PROFILER = None


def current_profiler() -> PhaseProfiler | None:
    return _PROFILER
