"""Structured spans with a zero-overhead no-op default and Perfetto export.

Instrumented code calls :func:`trace_span` unconditionally::

    with trace_span("round.encode", round=spec.index):
        ...

With no tracer installed (the default) this returns a shared, stateless
null context manager — no clock reads, no allocation beyond the call itself —
so the hot paths stay within the telemetry-overhead budget.  Installing a
:class:`Tracer` (see :func:`install_tracer` or :func:`repro.obs.capture`)
makes every span record its wall-clock interval; the recorded spans export as
Chrome-trace JSON (``{"traceEvents": [...]}``) that loads directly in
Perfetto / ``chrome://tracing``.

Spans never touch any random generator: they read ``time.perf_counter_ns``
and append to a list, which is why fingerprint equivalence across backends
holds with tracing enabled.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "SpanRecord",
    "Tracer",
    "trace_span",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "chrome_trace",
    "write_chrome_trace",
]


class _NullSpan:
    """Shared do-nothing context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


NULL_SPAN = _NullSpan()


@dataclass
class SpanRecord:
    """One completed span: a named wall-clock interval with attributes."""

    name: str
    start_us: float
    duration_us: float
    thread_id: int
    attrs: dict[str, Any] = field(default_factory=dict)


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        end_ns = time.perf_counter_ns()
        self._tracer._record(
            SpanRecord(
                name=self.name,
                start_us=(self._start_ns - self._tracer.epoch_ns) / 1000.0,
                duration_us=(end_ns - self._start_ns) / 1000.0,
                thread_id=threading.get_ident(),
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Records spans in memory; thread-safe, append-only."""

    enabled = True

    def __init__(self) -> None:
        self.epoch_ns = time.perf_counter_ns()
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()

    def span(self, name: str, **attrs: Any) -> _Span:
        return _Span(self, name, attrs)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self.spans.append(record)


# The installed tracer; ``None`` keeps trace_span on the no-allocation path.
_TRACER: Tracer | None = None


def trace_span(name: str, **attrs: Any):
    """A context manager timing ``name`` — a shared no-op when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def install_tracer(tracer: Tracer) -> None:
    global _TRACER
    _TRACER = tracer


def uninstall_tracer() -> None:
    global _TRACER
    _TRACER = None


def current_tracer() -> Tracer | None:
    return _TRACER


def chrome_trace(spans: list[SpanRecord], process_name: str = "repro") -> dict[str, Any]:
    """Spans → Chrome-trace document (complete events, microsecond units)."""
    pid = os.getpid()
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for span in spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ts": span.start_us,
                "dur": span.duration_us,
                "pid": pid,
                "tid": span.thread_id,
                "args": dict(span.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, spans: list[SpanRecord],
                       process_name: str = "repro") -> None:
    """Write spans as Chrome-trace JSON loadable in Perfetto."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(spans, process_name=process_name), handle)
        handle.write("\n")
