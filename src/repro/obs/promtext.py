"""A small parser/validator for the Prometheus text exposition format.

Used by the test suite and the CI smoke step to check that what the servers
serve on ``GET /metrics`` is well-formed — without depending on the real
``prometheus_client``.  Implements the subset the registry emits (format
version 0.0.4): ``# HELP`` / ``# TYPE`` comment lines and
``name{label="value",...} value`` samples.

:func:`parse_prometheus_text` raises :class:`PromTextError` on malformed
input and returns ``{family_name: ParsedFamily}``.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

__all__ = ["PromTextError", "ParsedSample", "ParsedFamily", "parse_prometheus_text"]

#: Content type the servers attach to ``/metrics`` responses.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

_KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class PromTextError(ValueError):
    """The exposition document violates the text format."""


@dataclass
class ParsedSample:
    name: str
    labels: dict[str, str]
    value: float


@dataclass
class ParsedFamily:
    name: str
    kind: str = "untyped"
    help_text: str = ""
    samples: list[ParsedSample] = field(default_factory=list)

    def sample_values(self, name: str | None = None) -> list[float]:
        wanted = name or self.name
        return [s.value for s in self.samples if s.name == wanted]


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise PromTextError(f"line {lineno}: unparsable value {raw!r}") from None


def _parse_labels(raw: str, lineno: int) -> dict[str, str]:
    labels: dict[str, str] = {}
    rest = raw.strip()
    while rest:
        match = _LABEL_RE.match(rest)
        if not match:
            raise PromTextError(f"line {lineno}: malformed label section {raw!r}")
        key, value = match.group(1), match.group(2)
        if key in labels:
            raise PromTextError(f"line {lineno}: duplicate label {key!r}")
        labels[key] = (
            value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
        )
        rest = rest[match.end():].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
    return labels


def _family_for(name: str, families: dict[str, ParsedFamily]) -> ParsedFamily | None:
    """The family a sample line belongs to (histograms own the _bucket etc.)."""
    if name in families:
        return families[name]
    for suffix in _HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.kind in ("histogram", "summary"):
                return family
    return None


def _check_histogram(family: ParsedFamily) -> None:
    """Bucket counts must be cumulative and end at an +Inf bucket == _count."""
    series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]] = {}
    counts: dict[tuple[tuple[str, str], ...], float] = {}
    for sample in family.samples:
        key = tuple(sorted(
            (k, v) for k, v in sample.labels.items() if k != "le"
        ))
        if sample.name == family.name + "_bucket":
            if "le" not in sample.labels:
                raise PromTextError(
                    f"histogram {family.name!r}: bucket without le label")
            le = math.inf if sample.labels["le"] == "+Inf" else float(sample.labels["le"])
            series.setdefault(key, []).append((le, sample.value))
        elif sample.name == family.name + "_count":
            counts[key] = sample.value
    for key, buckets in series.items():
        ordered = sorted(buckets)
        values = [count for _, count in ordered]
        if values != sorted(values):
            raise PromTextError(
                f"histogram {family.name!r}: bucket counts not cumulative")
        if not ordered or ordered[-1][0] != math.inf:
            raise PromTextError(
                f"histogram {family.name!r}: missing le=\"+Inf\" bucket")
        if key in counts and counts[key] != ordered[-1][1]:
            raise PromTextError(
                f"histogram {family.name!r}: _count != +Inf bucket")


def parse_prometheus_text(text: str) -> dict[str, ParsedFamily]:
    """Parse and validate one exposition document.

    Returns families keyed by base name; histogram ``_bucket``/``_sum``/
    ``_count`` samples are attached to their base family.  Raises
    :class:`PromTextError` on any violation of the format.
    """
    families: dict[str, ParsedFamily] = {}
    for lineno, raw_line in enumerate(text.split("\n"), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not _NAME_RE.match(name):
                raise PromTextError(f"line {lineno}: invalid metric name {name!r}")
            family = families.setdefault(name, ParsedFamily(name))
            family.help_text = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise PromTextError(f"line {lineno}: malformed TYPE line")
            name, kind = parts
            if not _NAME_RE.match(name):
                raise PromTextError(f"line {lineno}: invalid metric name {name!r}")
            if kind not in _KNOWN_TYPES:
                raise PromTextError(f"line {lineno}: unknown metric type {kind!r}")
            family = families.setdefault(name, ParsedFamily(name))
            if family.samples:
                raise PromTextError(
                    f"line {lineno}: TYPE for {name!r} after its samples")
            family.kind = kind
            continue
        if line.startswith("#"):
            continue  # other comments are legal and ignored
        match = _SAMPLE_RE.match(line)
        if not match:
            raise PromTextError(f"line {lineno}: malformed sample line {line!r}")
        name = match.group("name")
        labels = _parse_labels(match.group("labels") or "", lineno)
        value = _parse_value(match.group("value"), lineno)
        family = _family_for(name, families)
        if family is None:
            family = families.setdefault(name, ParsedFamily(name))
        family.samples.append(ParsedSample(name, labels, value))
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families
