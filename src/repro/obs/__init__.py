"""Unified telemetry: metrics registry, structured spans, phase profiling.

The subsystem is dependency-free (stdlib only) and instruments every
execution layer behind a zero-overhead no-op default:

* :class:`MetricsRegistry` — process-local counters/gauges/histograms; every
  server (gateway, shard worker, cluster coordinator) owns one and serves it
  as Prometheus text on ``GET /metrics`` (the coordinator merges its
  workers' snapshots into one scrape).
* :func:`trace_span` — structured spans emitted by the engine, driver,
  aggregator, and servers; recorded spans export as Chrome-trace JSON that
  loads in Perfetto (``repro run --trace out.json``).
* :func:`profile_phase` / :func:`profile_kernel` — opt-in hooks attributing
  per-round wall time to the encode/transport/aggregate/estimate phases and
  the hot kernels underneath them.

:func:`capture` bundles the three for one run::

    with capture() as cap:
        result = spec.run(data, backend="inline")
    print(cap.summary()["phases"])        # {'encode': ..., 'aggregate': ...}
    cap.write_chrome_trace("trace.json")  # load in https://ui.perfetto.dev

Nothing in this package reads or advances a random generator, so enabling
telemetry never perturbs RNG draw order: run fingerprints are identical with
and without it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    merge_snapshots,
    render_snapshot,
)
from repro.obs.profiling import (
    PHASE_AGGREGATE,
    PHASE_ENCODE,
    PHASE_ESTIMATE,
    PHASE_TRANSPORT,
    PhaseProfiler,
    current_profiler,
    install_profiler,
    profile_kernel,
    profile_phase,
    uninstall_profiler,
)
from repro.obs.promtext import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.promtext import PromTextError, parse_prometheus_text
from repro.obs.tracing import (
    SpanRecord,
    Tracer,
    chrome_trace,
    current_tracer,
    install_tracer,
    trace_span,
    uninstall_tracer,
    write_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_snapshots",
    "render_snapshot",
    "PROMETHEUS_CONTENT_TYPE",
    "PromTextError",
    "parse_prometheus_text",
    "SpanRecord",
    "Tracer",
    "trace_span",
    "install_tracer",
    "uninstall_tracer",
    "current_tracer",
    "chrome_trace",
    "write_chrome_trace",
    "PHASE_ENCODE",
    "PHASE_TRANSPORT",
    "PHASE_AGGREGATE",
    "PHASE_ESTIMATE",
    "PhaseProfiler",
    "profile_phase",
    "profile_kernel",
    "install_profiler",
    "uninstall_profiler",
    "current_profiler",
    "TelemetryCapture",
    "capture",
]


class TelemetryCapture:
    """A live tracer + profiler pair installed for the duration of one run."""

    def __init__(self, tracer: Tracer, profiler: PhaseProfiler) -> None:
        self.tracer = tracer
        self.profiler = profiler

    def summary(self) -> dict[str, Any]:
        """The ``telemetry`` block attached to run artifacts (JSON-able)."""
        report = self.profiler.report()
        span_names: dict[str, int] = {}
        for span in self.tracer.spans:
            span_names[span.name] = span_names.get(span.name, 0) + 1
        report["spans"] = {
            "total": len(self.tracer.spans),
            "by_name": dict(sorted(span_names.items())),
        }
        return report

    def write_chrome_trace(self, path: str, process_name: str = "repro") -> None:
        write_chrome_trace(path, self.tracer.spans, process_name=process_name)


@contextmanager
def capture() -> Iterator[TelemetryCapture]:
    """Install a recording tracer + profiler; restore the previous pair on exit.

    Captures nest: an inner capture shadows the outer one for its duration
    (the outer tracer misses those spans), which keeps the semantics simple
    and the teardown exception-safe.
    """
    previous_tracer = current_tracer()
    previous_profiler = current_profiler()
    cap = TelemetryCapture(Tracer(), PhaseProfiler())
    install_tracer(cap.tracer)
    install_profiler(cap.profiler)
    try:
        yield cap
    finally:
        if previous_tracer is None:
            uninstall_tracer()
        else:
            install_tracer(previous_tracer)
        if previous_profiler is None:
            uninstall_profiler()
        else:
            install_profiler(previous_profiler)
