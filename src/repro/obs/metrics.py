"""Process-local metrics registry with Prometheus text exposition.

Dependency-free counters, gauges, and histograms keyed by fixed label names.
Every server (gateway, shard worker, cluster coordinator) owns one
:class:`MetricsRegistry` and serves its :meth:`~MetricsRegistry.render` output
on ``GET /metrics``; the cluster coordinator additionally merges the
:meth:`~MetricsRegistry.snapshot` documents it gathers from its workers (see
:func:`merge_snapshots`) so one scrape covers the whole topology.

Two update styles coexist deliberately:

* **event-driven** — ``counter.inc()`` / ``histogram.observe()`` at the point
  where the event happens (batch accepted, round closed);
* **scrape-time** — gauges and monotonic totals whose authoritative value
  already lives on the serving object (``gateway.total_reports``, queue
  depths) are refreshed via ``gauge.set`` / ``counter.set_total`` in the
  server's ``_update_metrics`` hook just before rendering, so the scrape can
  never drift from ``/status`` and restarts from a checkpoint do not zero the
  totals twice.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Wall-time buckets (seconds) spanning sub-millisecond kernels to multi-second
#: round closes.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size buckets (reports per batch) matching the batch sizes the drivers use.
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    64, 256, 1024, 4096, 8192, 16384, 32768, 65536, 131072,
)


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints stay ints)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_pairs(labelnames: tuple[str, ...], labelvalues: tuple[str, ...]) -> str:
    if not labelnames:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"'
        for name, value in zip(labelnames, labelvalues)
    )
    return "{" + body + "}"


class _MetricFamily:
    """Base class: one named family holding samples keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: tuple[str, ...]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: dict[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> list[tuple[tuple[str, ...], Any]]:
        """Snapshot of ``(labelvalues, value)`` pairs in insertion order."""
        with self._lock:
            return list(self._values.items())


class Counter(_MetricFamily):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError("counters can only increase")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: Any) -> None:
        """Scrape-time refresh from an authoritative in-memory total.

        Used by servers whose counts already live on the instance (and survive
        checkpoint restore there); the registry then mirrors rather than
        double-books them.  ``value`` must not regress.
        """
        key = self._key(labels)
        with self._lock:
            self._values[key] = max(float(value), self._values.get(key, 0.0))

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Gauge(_MetricFamily):
    """A value that can go up and down."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        with self._lock:
            return float(self._values.get(self._key(labels), 0.0))


class Histogram(_MetricFamily):
    """Cumulative histogram with a fixed bucket layout."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: tuple[str, ...],
        buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be sorted and distinct")
        self.buckets = bounds

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._lock:
            state = self._values.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._values[key] = state
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][i] += 1
                    break
            else:
                state["counts"][-1] += 1
            state["sum"] += float(value)
            state["count"] += 1


class MetricsRegistry:
    """Get-or-create factory for metric families plus the exposition renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _MetricFamily] = {}

    def _get_or_create(self, cls: type, name: str, help_text: str,
                       labelnames: Iterable[str], **kwargs: Any) -> Any:
        labelnames = tuple(labelnames)
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if not isinstance(family, cls) or family.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} already registered with a different "
                        f"type or label set"
                    )
                return family
            family = cls(name, help_text, labelnames, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labelnames: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Iterable[str] = (),
                  buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   buckets=buckets)

    def families(self) -> list[_MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump of every family — the worker→coordinator wire form."""
        families = []
        for family in self.families():
            entry: dict[str, Any] = {
                "name": family.name,
                "kind": family.kind,
                "help": family.help_text,
                "labelnames": list(family.labelnames),
                "samples": [
                    [list(labelvalues), value]
                    for labelvalues, value in family.samples()
                ],
            }
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
            families.append(entry)
        return {"families": families}

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        return render_snapshot(self.snapshot())


def _render_family(lines: list[str], entry: dict[str, Any]) -> None:
    """Render one normalized family (samples are (labelnames, labelvalues, value))."""
    name = entry["name"]
    if entry.get("help"):
        lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
    lines.append(f"# TYPE {name} {entry['kind']}")
    for labelnames, labelvalues, value in entry["samples"]:
        labelnames = tuple(labelnames)
        labelvalues = tuple(str(v) for v in labelvalues)
        if entry["kind"] == "histogram":
            bounds = [float(b) for b in value["buckets"]] + [math.inf]
            cumulative = 0
            for bound, count in zip(bounds, value["counts"]):
                cumulative += count
                pairs = _label_pairs(
                    labelnames + ("le",), labelvalues + (_format_value(bound),)
                )
                lines.append(f"{name}_bucket{pairs} {cumulative}")
            pairs = _label_pairs(labelnames, labelvalues)
            lines.append(f"{name}_sum{pairs} {_format_value(value['sum'])}")
            lines.append(f"{name}_count{pairs} {value['count']}")
        else:
            pairs = _label_pairs(labelnames, labelvalues)
            lines.append(f"{name}{pairs} {_format_value(float(value))}")


def _normalize(snapshot: dict[str, Any],
               extra_labels: dict[str, str] | None = None) -> list[dict[str, Any]]:
    """Snapshot families → render form; each sample carries its own labelnames."""
    extra_labels = extra_labels or {}
    extra_names = tuple(extra_labels)
    extra_values = tuple(str(extra_labels[k]) for k in extra_names)
    families = []
    for entry in snapshot.get("families", []):
        labelnames = tuple(entry.get("labelnames", ())) + extra_names
        buckets = list(entry.get("buckets", ()))
        samples = []
        for labelvalues, value in entry.get("samples", []):
            if entry["kind"] == "histogram":
                value = dict(value, buckets=buckets)
            samples.append(
                (labelnames, tuple(labelvalues) + extra_values, value)
            )
        families.append({
            "name": entry["name"],
            "kind": entry["kind"],
            "help": entry.get("help", ""),
            "samples": samples,
        })
    return families


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """Render one :meth:`MetricsRegistry.snapshot` document as exposition text."""
    lines: list[str] = []
    for entry in _normalize(snapshot):
        _render_family(lines, entry)
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(parts: Iterable[tuple[dict[str, str], dict[str, Any]]]) -> str:
    """Merge labelled snapshots into one exposition document.

    ``parts`` yields ``(extra_labels, snapshot)`` pairs; every sample in a
    snapshot gains that part's extra labels (e.g. ``{"worker": "0"}``), and
    families with the same name are folded into one TYPE block — label sets
    may differ sample to sample, which the text format allows.  This is how
    the cluster coordinator presents its workers' registries on one scrape.
    """
    merged: dict[str, dict[str, Any]] = {}
    for extra_labels, snapshot in parts:
        for entry in _normalize(snapshot, dict(extra_labels)):
            target = merged.get(entry["name"])
            if target is None:
                merged[entry["name"]] = entry
            else:
                target["samples"].extend(entry["samples"])
                if not target["help"]:
                    target["help"] = entry["help"]
    lines: list[str] = []
    for entry in merged.values():
        _render_family(lines, entry)
    return "\n".join(lines) + ("\n" if lines else "")
