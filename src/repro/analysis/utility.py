"""Executable forms of the paper's utility analysis (Theorem 4 and the EM bound)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_epsilon, check_positive_int


def em_selection_probability(
    epsilon: float,
    domain_size: int,
    score_gap: float = 1.0,
    n_optimal: int = 1,
) -> float:
    """Probability that the Exponential Mechanism returns an optimal candidate.

    Assumes ``n_optimal`` candidates have the top score and the remaining
    ``domain_size - n_optimal`` trail by ``score_gap`` (in normalized score
    units, sensitivity 1).  This is the quantity the paper's Theorem 4
    manipulates: shrinking ``domain_size`` is what improves PrivShape over the
    baseline.
    """
    epsilon = check_epsilon(epsilon)
    domain_size = check_positive_int(domain_size, "domain_size")
    n_optimal = check_positive_int(n_optimal, "n_optimal")
    if n_optimal > domain_size:
        raise ValueError("n_optimal cannot exceed domain_size")
    if not 0.0 <= score_gap <= 1.0:
        raise ValueError("score_gap must lie in [0, 1]")
    top_weight = n_optimal * np.exp(epsilon / 2.0)
    rest_weight = (domain_size - n_optimal) * np.exp(epsilon * (1.0 - score_gap) / 2.0)
    return float(top_weight / (top_weight + rest_weight))


def privshape_domain_bound(candidate_factor: int, top_k: int, alphabet_size: int) -> int:
    """Worst-case per-level EM domain size of PrivShape: ``c·k`` parents × up to (t-1) children.

    The paper states the c²k² form for the sub-shape-pruned expansion; the
    implementation's tighter operational bound is ``c·k·(t-1)`` because each of
    the ``c·k`` surviving parents expands along at most ``t-1`` allowed
    sub-shapes; both bounds hold, the smaller is returned.
    """
    candidate_factor = check_positive_int(candidate_factor, "candidate_factor")
    top_k = check_positive_int(top_k, "top_k")
    alphabet_size = check_positive_int(alphabet_size, "alphabet_size")
    return int(
        min(
            candidate_factor * top_k * (alphabet_size - 1),
            (candidate_factor * top_k) ** 2,
        )
    )


def baseline_domain_bound(alphabet_size: int, level: int) -> int:
    """Worst-case EM domain size of the baseline at trie level ``level``: t·(t-1)^(ℓ-1)."""
    alphabet_size = check_positive_int(alphabet_size, "alphabet_size")
    level = check_positive_int(level, "level")
    return int(alphabet_size * (alphabet_size - 1) ** (level - 1))


def utility_improvement_bound(
    alphabet_size: int, level: int, candidate_factor: int, top_k: int
) -> float:
    """Theorem 4's worst-case improvement factor of PrivShape over the baseline.

    ``t(t-1)^(ℓ-1) / (c²k²)`` — the ratio of the two mechanisms' perturbation
    domains when neither can be pruned effectively.
    """
    numerator = baseline_domain_bound(alphabet_size, level)
    denominator = (candidate_factor * top_k) ** 2
    return float(numerator / denominator)
