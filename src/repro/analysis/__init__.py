"""Analytical utilities: estimator variance, utility bounds, and deployment planning.

These helpers make the paper's analytical statements executable:

* :func:`grr_variance`, :func:`oue_variance`, :func:`olh_variance` — per-item
  count-estimator variances of the frequency oracles, used to choose a
  mechanism for a given domain size and budget;
* :func:`em_selection_probability` — probability that the Exponential
  Mechanism returns a top-scoring candidate, the quantity behind the paper's
  utility theorem;
* :func:`privshape_domain_bound`, :func:`baseline_domain_bound`,
  :func:`utility_improvement_bound` — the perturbation-domain sizes and the
  Theorem 4 improvement factor;
* :class:`DeploymentPlan` / :func:`plan_population` — back-of-the-envelope
  sizing of the user population needed for a target estimation error under
  the paper's (Pa, Pb, Pc, Pd) split.
"""

from repro.analysis.variance import (
    grr_variance,
    olh_variance,
    oue_variance,
    recommend_frequency_oracle,
    sue_variance,
)
from repro.analysis.utility import (
    baseline_domain_bound,
    em_selection_probability,
    privshape_domain_bound,
    utility_improvement_bound,
)
from repro.analysis.planning import DeploymentPlan, plan_population

__all__ = [
    "grr_variance",
    "oue_variance",
    "olh_variance",
    "sue_variance",
    "recommend_frequency_oracle",
    "em_selection_probability",
    "privshape_domain_bound",
    "baseline_domain_bound",
    "utility_improvement_bound",
    "DeploymentPlan",
    "plan_population",
]
