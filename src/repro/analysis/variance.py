"""Closed-form estimator variances of the LDP frequency oracles.

All formulas are the standard low-frequency approximations (Wang et al.,
USENIX Security 2017): for a frequency oracle with "keep" probability ``p``
and "flip-in" probability ``q``, the variance of the estimated count of one
item over ``n`` reports is ``n · q(1-q) / (p-q)²``.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_epsilon, check_positive_int


def grr_variance(epsilon: float, domain_size: int, n: int) -> float:
    """Per-item count variance of Generalized Randomized Response."""
    epsilon = check_epsilon(epsilon)
    domain_size = check_positive_int(domain_size, "domain_size")
    n = check_positive_int(n, "n")
    e_eps = np.exp(epsilon)
    p = e_eps / (e_eps + domain_size - 1)
    q = 1.0 / (e_eps + domain_size - 1)
    return float(n * q * (1 - q) / (p - q) ** 2)


def oue_variance(epsilon: float, n: int) -> float:
    """Per-item count variance of Optimized Unary Encoding (domain-size free)."""
    epsilon = check_epsilon(epsilon)
    n = check_positive_int(n, "n")
    e_eps = np.exp(epsilon)
    return float(n * 4.0 * e_eps / (e_eps - 1.0) ** 2)


def olh_variance(epsilon: float, n: int) -> float:
    """Per-item count variance of Optimized Local Hashing (≈ OUE's variance)."""
    return oue_variance(epsilon, n)


def sue_variance(epsilon: float, n: int) -> float:
    """Per-item count variance of Symmetric Unary Encoding (basic RAPPOR)."""
    epsilon = check_epsilon(epsilon)
    n = check_positive_int(n, "n")
    e_half = np.exp(epsilon / 2.0)
    p = e_half / (e_half + 1.0)
    q = 1.0 / (e_half + 1.0)
    return float(n * q * (1 - q) / (p - q) ** 2)


def recommend_frequency_oracle(epsilon: float, domain_size: int, n: int = 1000) -> str:
    """Return the minimum-variance registered oracle for this setting.

    The classic rule of thumb: GRR wins for small domains
    (``d - 1 < 3 e^eps + 2`` roughly), OUE/OLH win for large domains.  The
    sub-shape domain ``t(t-1)`` of the paper sits near the boundary for
    moderate ``t``, which is why both appear in the mechanism.

    Delegates to :func:`repro.api.oracles.select_frequency_oracle` so this
    helper and ``oracle="auto"`` always agree, including for oracles
    registered by downstream code.  (Imported lazily: the api package builds
    on this module's closed forms.)
    """
    from repro.api.oracles import select_frequency_oracle

    return select_frequency_oracle(epsilon, domain_size, n)
