"""Deployment planning: how many users does a PrivShape deployment need?

PrivShape splits its population into (Pa, Pb, Pc, Pd); each sub-task's
estimation error is governed by the variance of its frequency oracle and the
number of users assigned to it.  :func:`plan_population` inverts those
formulas: given the target budget ε, the SAX/trie parameters, and a tolerable
relative error on the decisive counts, it reports how many users each stage
needs and therefore how large the total population must be.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.variance import grr_variance, oue_variance
from repro.utils.validation import check_epsilon, check_positive_int


@dataclass(frozen=True)
class DeploymentPlan:
    """Sizing result returned by :func:`plan_population`."""

    epsilon: float
    total_users: int
    length_users: int
    subshape_users: int
    expansion_users_per_level: int
    refinement_users: int
    population_fractions: tuple[float, float, float, float]
    expected_length_error: float
    expected_subshape_error: float
    expected_refinement_error: float

    def summary(self) -> str:
        """Human-readable plan summary."""
        lines = [
            f"user-level epsilon: {self.epsilon:g}",
            f"total users required: {self.total_users}",
            f"  Pa (length estimation):     {self.length_users}"
            f"  (count std ≈ {self.expected_length_error:.1f})",
            f"  Pb (sub-shape estimation):  {self.subshape_users}"
            f"  (count std ≈ {self.expected_subshape_error:.1f})",
            f"  Pc (trie expansion):        {self.expansion_users_per_level} per level",
            f"  Pd (two-level refinement):  {self.refinement_users}"
            f"  (count std ≈ {self.expected_refinement_error:.1f})",
        ]
        return "\n".join(lines)


def plan_population(
    epsilon: float,
    alphabet_size: int = 4,
    expected_length: int = 6,
    length_range: int = 10,
    top_k: int = 3,
    candidate_factor: int = 3,
    relative_error: float = 0.05,
    minimum_shape_frequency: float = 0.2,
    population_fractions: tuple[float, float, float, float] = (0.02, 0.08, 0.7, 0.2),
) -> DeploymentPlan:
    """Size a PrivShape deployment for a target relative estimation error.

    Parameters
    ----------
    epsilon:
        User-level privacy budget.
    alphabet_size, expected_length, length_range, top_k, candidate_factor:
        Mechanism parameters (t, ℓ_S, ℓ_high − ℓ_low + 1, k, c).
    relative_error:
        Target standard error of the decisive counts, relative to the count of
        a shape held by ``minimum_shape_frequency`` of the users.
    minimum_shape_frequency:
        Smallest population share of a shape that must still be resolved.

    Returns a :class:`DeploymentPlan` whose ``total_users`` is driven by the
    most demanding stage under the given population split.
    """
    epsilon = check_epsilon(epsilon)
    alphabet_size = check_positive_int(alphabet_size, "alphabet_size")
    expected_length = check_positive_int(expected_length, "expected_length")
    top_k = check_positive_int(top_k, "top_k")
    candidate_factor = check_positive_int(candidate_factor, "candidate_factor")
    if not 0.0 < relative_error < 1.0:
        raise ValueError("relative_error must be in (0, 1)")
    if not 0.0 < minimum_shape_frequency <= 1.0:
        raise ValueError("minimum_shape_frequency must be in (0, 1]")
    fractions = tuple(float(f) for f in population_fractions)
    if len(fractions) != 4 or abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError("population_fractions must be 4 values summing to 1")

    def stage_requirement(variance_fn) -> int:
        """Users needed so that std(count) <= relative_error * (share * n)."""

        def ok(n: int) -> bool:
            std = float(np.sqrt(variance_fn(n)))
            return std <= relative_error * minimum_shape_frequency * n

        low, high = 1, 1
        while not ok(high):
            high *= 2
            if high > 10**9:
                break
        while low < high:
            mid = (low + high) // 2
            if ok(mid):
                high = mid
            else:
                low = mid + 1
        return low

    # Stage-level requirements (users participating in that stage).
    length_users = stage_requirement(lambda n: grr_variance(epsilon, length_range, n))
    subshape_domain = alphabet_size * (alphabet_size - 1)
    subshape_per_level = stage_requirement(lambda n: grr_variance(epsilon, subshape_domain, n))
    subshape_users = subshape_per_level * max(expected_length - 1, 1)
    refinement_users = stage_requirement(lambda n: oue_variance(epsilon, n))
    # Expansion levels use the Exponential Mechanism whose "variance" is not a
    # count variance; require the same per-level head-count as the refinement
    # stage as a practical proxy (each level must resolve the same counts).
    expansion_per_level = refinement_users

    # Total population implied by each stage under the declared split.
    totals = [
        int(np.ceil(length_users / fractions[0])),
        int(np.ceil(subshape_users / fractions[1])),
        int(np.ceil(expansion_per_level * expected_length / fractions[2])),
        int(np.ceil(refinement_users / fractions[3])),
    ]
    total_users = max(totals)

    return DeploymentPlan(
        epsilon=epsilon,
        total_users=total_users,
        length_users=int(total_users * fractions[0]),
        subshape_users=int(total_users * fractions[1]),
        expansion_users_per_level=int(total_users * fractions[2] / max(expected_length, 1)),
        refinement_users=int(total_users * fractions[3]),
        population_fractions=fractions,
        expected_length_error=float(
            np.sqrt(grr_variance(epsilon, length_range, max(int(total_users * fractions[0]), 1)))
        ),
        expected_subshape_error=float(
            np.sqrt(
                grr_variance(
                    epsilon,
                    subshape_domain,
                    max(int(total_users * fractions[1] / max(expected_length - 1, 1)), 1),
                )
            )
        ),
        expected_refinement_error=float(
            np.sqrt(oue_variance(epsilon, max(int(total_users * fractions[3]), 1)))
        ),
    )
