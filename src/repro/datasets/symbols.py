"""Synthetic stand-in for the UCR *Symbols* dataset.

The real Symbols dataset records the x-axis hand motion of users drawing six
different symbols; each of the six classes has a distinctive smooth
trajectory, and instances within a class differ by speed, amplitude, and
noise.  This generator reproduces that structure: six smooth class templates
built from control points, augmented per instance with time warping,
amplitude scaling, and jitter, z-normalized, length 398 by default.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.augmentation import augment_series
from repro.datasets.base import LabeledDataset
from repro.sax.normalization import zscore_normalize
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Control points (y-values at evenly spaced time knots) of the six class templates.
#: Each template traces a visually distinct "gesture" so the compressed SAX shapes
#: of different classes are distinct and of comparable length, exactly the property
#: the real Symbols dataset's six drawing gestures provide.
_CLASS_CONTROL_POINTS: dict[int, list[float]] = {
    0: [-1.7, -1.0, -0.3, 0.3, 1.0, 1.7],              # monotone rise
    1: [1.7, 1.0, 0.3, -0.3, -1.0, -1.7],              # monotone fall
    2: [-0.2, 0.9, 1.8, 0.4, -1.0, -1.9],              # rise to the top, then fall past start
    3: [0.2, -0.9, -1.8, -0.4, 1.0, 1.9],              # dip to the bottom, then rise past start
    4: [-1.8, -0.6, 0.7, 0.0, 0.9, 1.8],               # rise with a mid-way dip
    5: [1.8, 0.6, -0.7, 0.0, -0.9, -1.8],              # fall with a mid-way bump
}

#: Length of the series in the real UCR Symbols dataset.
SYMBOLS_LENGTH = 398


def _smooth_template(control_points: list[float], length: int) -> np.ndarray:
    """Interpolate control points onto ``length`` samples with a smooth curve."""
    knots = np.linspace(0.0, 1.0, len(control_points))
    positions = np.linspace(0.0, 1.0, length)
    # Piecewise-linear interpolation followed by light moving-average smoothing
    # gives a smooth, reproducible curve without a SciPy spline dependency here.
    curve = np.interp(positions, knots, control_points)
    window = max(3, length // 40)
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window, curve[0]), curve, np.full(window, curve[-1])])
    smoothed = np.convolve(padded, kernel, mode="same")[window:-window]
    return smoothed


def symbols_like(
    n_instances: int = 1200,
    length: int = SYMBOLS_LENGTH,
    n_classes: int = 6,
    warp_strength: float = 0.2,
    scale_sigma: float = 0.15,
    jitter_sigma: float = 0.05,
    rng: RngLike = None,
) -> LabeledDataset:
    """Generate a Symbols-like dataset of hand-motion-style trajectories.

    Parameters
    ----------
    n_instances:
        Total number of series (users); split evenly across classes.
    length:
        Series length (398 in the real dataset).
    n_classes:
        Number of classes, at most 6.
    warp_strength, scale_sigma, jitter_sigma:
        Per-instance augmentation strengths (see :func:`augment_series`).
    rng:
        Seed or generator for reproducibility.
    """
    n_instances = check_positive_int(n_instances, "n_instances")
    length = check_positive_int(length, "length")
    n_classes = check_positive_int(n_classes, "n_classes")
    if n_classes > len(_CLASS_CONTROL_POINTS):
        raise ValueError(
            f"n_classes must be at most {len(_CLASS_CONTROL_POINTS)}, got {n_classes}"
        )
    generator = ensure_rng(rng)

    templates = {
        label: _smooth_template(_CLASS_CONTROL_POINTS[label], length)
        for label in range(n_classes)
    }

    counts = np.full(n_classes, n_instances // n_classes, dtype=int)
    counts[: n_instances % n_classes] += 1

    series: list[np.ndarray] = []
    labels: list[int] = []
    for label, count in enumerate(counts):
        template = templates[label]
        for _ in range(int(count)):
            variant = augment_series(
                template,
                warp_strength=warp_strength,
                scale_sigma=scale_sigma,
                jitter_sigma=jitter_sigma,
                length=length,
                rng=generator,
            )
            series.append(zscore_normalize(variant))
            labels.append(label)

    return LabeledDataset(
        series=series,
        labels=np.asarray(labels, dtype=int),
        name="symbols-like",
        metadata={
            "source": "synthetic stand-in for UCR Symbols",
            "length": length,
            "n_classes": n_classes,
        },
    )
