"""Labeled time-series dataset container."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import DataShapeError, EmptyDatasetError
from repro.utils.rng import RngLike, ensure_rng


@dataclass
class LabeledDataset:
    """A collection of (possibly variable-length) time series with class labels.

    Attributes
    ----------
    series:
        List of 1-D float arrays; lengths may differ across instances.
    labels:
        Integer class label per series.
    name:
        Human-readable dataset name used in logs and benchmark output.
    """

    series: list[np.ndarray]
    labels: np.ndarray
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.series = [np.asarray(s, dtype=float) for s in self.series]
        self.labels = np.asarray(self.labels, dtype=int)
        if not self.series:
            raise EmptyDatasetError(f"{self.name}: dataset must not be empty")
        if len(self.series) != self.labels.size:
            raise DataShapeError(
                f"{self.name}: {len(self.series)} series but {self.labels.size} labels"
            )
        for i, s in enumerate(self.series):
            if s.ndim != 1 or s.size == 0:
                raise DataShapeError(f"{self.name}: series[{i}] must be non-empty and 1-D")

    def __len__(self) -> int:
        return len(self.series)

    def __iter__(self) -> Iterator[tuple[np.ndarray, int]]:
        return iter(zip(self.series, self.labels))

    @property
    def n_classes(self) -> int:
        """Number of distinct class labels present."""
        return int(np.unique(self.labels).size)

    @property
    def classes(self) -> np.ndarray:
        """Sorted array of distinct class labels."""
        return np.unique(self.labels)

    def class_subset(self, label: int) -> "LabeledDataset":
        """Return the sub-dataset containing only instances of ``label``."""
        mask = self.labels == label
        if not mask.any():
            raise KeyError(f"{self.name}: no instances with label {label}")
        return LabeledDataset(
            series=[s for s, keep in zip(self.series, mask) if keep],
            labels=self.labels[mask],
            name=f"{self.name}[label={label}]",
            metadata=dict(self.metadata),
        )

    def subsample(self, n: int, rng: RngLike = None, stratified: bool = True) -> "LabeledDataset":
        """Return a random subset of ``n`` instances (stratified by default)."""
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        n = min(n, len(self))
        generator = ensure_rng(rng)
        if stratified and self.n_classes > 1:
            indices: list[int] = []
            per_class = n // self.n_classes
            for label in self.classes:
                label_indices = np.flatnonzero(self.labels == label)
                take = min(per_class, label_indices.size)
                indices.extend(generator.choice(label_indices, size=take, replace=False))
            # Fill any remainder uniformly from the instances not yet chosen.
            remaining = np.setdiff1d(np.arange(len(self)), np.asarray(indices, dtype=int))
            shortfall = n - len(indices)
            if shortfall > 0 and remaining.size:
                extra = generator.choice(remaining, size=min(shortfall, remaining.size), replace=False)
                indices.extend(extra)
            chosen = np.sort(np.asarray(indices, dtype=int))
        else:
            chosen = np.sort(generator.choice(len(self), size=n, replace=False))
        return LabeledDataset(
            series=[self.series[i] for i in chosen],
            labels=self.labels[chosen],
            name=f"{self.name}[n={n}]",
            metadata=dict(self.metadata),
        )

    def shuffled(self, rng: RngLike = None) -> "LabeledDataset":
        """Return a copy with instances in random order."""
        generator = ensure_rng(rng)
        order = generator.permutation(len(self))
        return LabeledDataset(
            series=[self.series[i] for i in order],
            labels=self.labels[order],
            name=self.name,
            metadata=dict(self.metadata),
        )

    def train_test_split(
        self, test_fraction: float = 0.3, rng: RngLike = None
    ) -> tuple["LabeledDataset", "LabeledDataset"]:
        """Split into train/test subsets, stratified by class."""
        if not 0.0 < test_fraction < 1.0:
            raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
        generator = ensure_rng(rng)
        train_indices: list[int] = []
        test_indices: list[int] = []
        for label in self.classes:
            label_indices = generator.permutation(np.flatnonzero(self.labels == label))
            n_test = max(1, int(round(test_fraction * label_indices.size)))
            test_indices.extend(label_indices[:n_test])
            train_indices.extend(label_indices[n_test:])
        train_indices = np.sort(np.asarray(train_indices, dtype=int))
        test_indices = np.sort(np.asarray(test_indices, dtype=int))

        def build(indices: np.ndarray, suffix: str) -> LabeledDataset:
            return LabeledDataset(
                series=[self.series[i] for i in indices],
                labels=self.labels[indices],
                name=f"{self.name}[{suffix}]",
                metadata=dict(self.metadata),
            )

        return build(train_indices, "train"), build(test_indices, "test")

    def class_prototypes(self) -> dict[int, np.ndarray]:
        """Per-class mean series (requires equal lengths within each class)."""
        prototypes: dict[int, np.ndarray] = {}
        for label in self.classes:
            members = [s for s, y in zip(self.series, self.labels) if y == label]
            lengths = {m.size for m in members}
            if len(lengths) != 1:
                raise DataShapeError(
                    f"{self.name}: class {label} has mixed lengths {sorted(lengths)}"
                )
            prototypes[int(label)] = np.mean(np.vstack(members), axis=0)
        return prototypes
