"""Loader for the UCR time-series classification archive file format.

The UCR archive distributes each dataset as tab- (or comma-) separated text
where every line is ``label value value value ...``.  This loader lets users
who have the real *Symbols* or *Trace* files on disk run the benchmarks on the
authentic data instead of the synthetic stand-ins.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.datasets.base import LabeledDataset
from repro.exceptions import DataShapeError


def load_ucr_tsv(path: str | os.PathLike, name: str | None = None) -> LabeledDataset:
    """Load a UCR-format file: one series per line, first column is the class label.

    Both tab- and comma-separated files are accepted; blank lines are skipped.
    Labels are remapped to consecutive integers starting at 0 in sorted order
    of the original labels.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise FileNotFoundError(f"UCR file not found: {file_path}")

    series: list[np.ndarray] = []
    raw_labels: list[float] = []
    with open(file_path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            delimiter = "\t" if "\t" in stripped else ","
            fields = [f for f in stripped.split(delimiter) if f != ""]
            if len(fields) < 2:
                raise DataShapeError(
                    f"{file_path}:{line_number}: expected a label and at least one value"
                )
            try:
                raw_labels.append(float(fields[0]))
                series.append(np.asarray([float(v) for v in fields[1:]], dtype=float))
            except ValueError as exc:
                raise DataShapeError(
                    f"{file_path}:{line_number}: non-numeric field in UCR file"
                ) from exc

    unique = sorted(set(raw_labels))
    label_map = {original: index for index, original in enumerate(unique)}
    labels = np.asarray([label_map[raw] for raw in raw_labels], dtype=int)
    return LabeledDataset(
        series=series,
        labels=labels,
        name=name or file_path.stem,
        metadata={"source": str(file_path), "original_labels": unique},
    )
