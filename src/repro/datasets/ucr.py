"""Loader for the UCR time-series classification archive file format.

The UCR archive distributes each dataset as tab- (or comma-) separated text
where every line is ``label value value value ...``.  This loader lets users
who have the real *Symbols* or *Trace* files on disk run the benchmarks on the
authentic data instead of the synthetic stand-ins.  Files may be gzip
compressed (detected from the magic bytes, whatever the extension), and
variable-length datasets that pad short rows with trailing NaNs — the 2018
archive's convention — load with the padding stripped.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path
from typing import IO

import numpy as np

from repro.datasets.base import LabeledDataset
from repro.exceptions import DataShapeError


def _open_text(file_path: Path) -> IO[str]:
    """Open a UCR file as text, transparently decompressing gzip.

    Detection is by the gzip magic bytes, not the filename, so ``Trace.tsv``
    that is secretly compressed and ``Trace.tsv.gz`` both load.
    """
    with open(file_path, "rb") as probe:
        magic = probe.read(2)
    if magic == b"\x1f\x8b":
        return gzip.open(file_path, "rt", encoding="utf-8")
    return open(file_path, "r", encoding="utf-8")


def _strip_nan_padding(
    values: np.ndarray, file_path: Path, line_number: int
) -> np.ndarray:
    """Drop trailing-NaN padding; interior NaNs (real gaps) stay an error."""
    mask = np.isnan(values)
    if not mask.any():
        return values
    keep = values.size
    while keep > 0 and mask[keep - 1]:
        keep -= 1
    if keep == 0:
        raise DataShapeError(
            f"{file_path}:{line_number}: series is entirely NaN"
        )
    if mask[:keep].any():
        raise DataShapeError(
            f"{file_path}:{line_number}: NaN inside the series (only "
            "trailing-NaN padding is supported)"
        )
    return values[:keep]


def load_ucr_tsv(path: str | os.PathLike, name: str | None = None) -> LabeledDataset:
    """Load a UCR-format file: one series per line, first column is the class label.

    Both tab- and comma-separated files are accepted, plain or gzip
    compressed; blank lines are skipped, and trailing whitespace or
    trailing-NaN padding on variable-length rows is stripped (a NaN in the
    middle of a series still raises).  Labels are remapped to consecutive
    integers starting at 0 in sorted order of the original labels.
    """
    file_path = Path(path)
    if not file_path.exists():
        raise FileNotFoundError(f"UCR file not found: {file_path}")

    series: list[np.ndarray] = []
    raw_labels: list[float] = []
    with _open_text(file_path) as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped:
                continue
            delimiter = "\t" if "\t" in stripped else ","
            fields = [f for f in stripped.split(delimiter) if f.strip() != ""]
            if len(fields) < 2:
                raise DataShapeError(
                    f"{file_path}:{line_number}: expected a label and at least one value"
                )
            try:
                label = float(fields[0])
                values = np.asarray([float(v) for v in fields[1:]], dtype=float)
            except ValueError as exc:
                raise DataShapeError(
                    f"{file_path}:{line_number}: non-numeric field in UCR file"
                ) from exc
            if np.isnan(label):
                raise DataShapeError(
                    f"{file_path}:{line_number}: NaN class label"
                )
            values = _strip_nan_padding(values, file_path, line_number)
            raw_labels.append(label)
            series.append(values)

    unique = sorted(set(raw_labels))
    label_map = {original: index for index, original in enumerate(unique)}
    labels = np.asarray([label_map[raw] for raw in raw_labels], dtype=int)
    return LabeledDataset(
        series=series,
        labels=labels,
        name=name or file_path.stem,
        metadata={"source": str(file_path), "original_labels": unique},
    )
