"""Trigonometric Wave dataset (sine vs cosine classification).

Reproduces the paper's synthetic dataset used in Section V-I:

* :func:`trigonometric_waves` — one full period of sine or cosine sampled at a
  chosen length (Fig. 16: "shape retains despite variations in the time
  series" — the wave is stretched/compressed to the requested length);
* :func:`trigonometric_waves_prefix` — a 1000-point period from which a prefix
  of the requested length is kept (Fig. 17: "shape changes as the time series
  varies").
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LabeledDataset
from repro.sax.normalization import zscore_normalize
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int


def _wave(kind: str, length: int, phase_jitter: float, noise_sigma: float,
          rng: np.random.Generator, full_length: int | None = None) -> np.ndarray:
    """One period of sine/cosine; optionally only the first ``length`` of ``full_length`` points."""
    total = full_length if full_length is not None else length
    t = np.linspace(0.0, 2.0 * np.pi, total)
    phase = rng.normal(0.0, phase_jitter)
    if kind == "sine":
        values = np.sin(t + phase)
    elif kind == "cosine":
        values = np.cos(t + phase)
    else:
        raise ValueError(f"kind must be 'sine' or 'cosine', got {kind!r}")
    values = values[:length]
    if noise_sigma > 0:
        values = values + rng.normal(0.0, noise_sigma, size=values.size)
    return zscore_normalize(values)


def trigonometric_waves(
    n_instances: int = 1000,
    length: int = 400,
    phase_jitter: float = 0.05,
    noise_sigma: float = 0.05,
    rng: RngLike = None,
) -> LabeledDataset:
    """Sine (label 0) vs cosine (label 1) waves, one full period at ``length`` points."""
    n_instances = check_positive_int(n_instances, "n_instances")
    length = check_positive_int(length, "length")
    generator = ensure_rng(rng)
    series: list[np.ndarray] = []
    labels: list[int] = []
    kinds = ["sine", "cosine"]
    for i in range(n_instances):
        label = i % 2
        series.append(_wave(kinds[label], length, phase_jitter, noise_sigma, generator))
        labels.append(label)
    return LabeledDataset(
        series=series,
        labels=np.asarray(labels, dtype=int),
        name=f"trigonometric-waves[length={length}]",
        metadata={"length": length, "mode": "full period"},
    )


def trigonometric_waves_prefix(
    n_instances: int = 1000,
    prefix_length: int = 400,
    full_length: int = 1000,
    phase_jitter: float = 0.05,
    noise_sigma: float = 0.05,
    rng: RngLike = None,
) -> LabeledDataset:
    """Sine vs cosine where only the first ``prefix_length`` of a 1000-point period is kept.

    Short prefixes make the two classes harder to tell apart (both look like a
    rising or falling arc), which is the regime Fig. 17 probes.
    """
    n_instances = check_positive_int(n_instances, "n_instances")
    prefix_length = check_positive_int(prefix_length, "prefix_length")
    full_length = check_positive_int(full_length, "full_length")
    if prefix_length > full_length:
        raise ValueError(
            f"prefix_length ({prefix_length}) must not exceed full_length ({full_length})"
        )
    generator = ensure_rng(rng)
    series: list[np.ndarray] = []
    labels: list[int] = []
    kinds = ["sine", "cosine"]
    for i in range(n_instances):
        label = i % 2
        series.append(
            _wave(
                kinds[label],
                prefix_length,
                phase_jitter,
                noise_sigma,
                generator,
                full_length=full_length,
            )
        )
        labels.append(label)
    return LabeledDataset(
        series=series,
        labels=np.asarray(labels, dtype=int),
        name=f"trigonometric-waves-prefix[{prefix_length}/{full_length}]",
        metadata={"prefix_length": prefix_length, "full_length": full_length, "mode": "prefix"},
    )
