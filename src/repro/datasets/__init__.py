"""Dataset generators and loaders.

The paper evaluates on the UCR *Symbols* and *Trace* datasets, augmented with
generative models to 40,000 instances each, plus a synthetic *Trigonometric
Wave* dataset.  Without network access we reproduce the relevant population
structure with synthetic generators (see DESIGN.md, substitution table):

* :func:`symbols_like` — 6 classes of smooth hand-motion-style trajectories,
  length 398, standing in for UCR Symbols;
* :func:`trace_like` — 3 classes of instrument-transient-style signals,
  length 275, standing in for the UCR Trace subset used in the paper;
* :func:`trigonometric_waves` — sine/cosine waves of configurable length,
  reproducing the paper's Trigonometric Wave dataset exactly;
* :func:`augment_dataset` — warping/scaling/jitter augmentation standing in
  for the paper's GAN+BiLSTM augmentation;
* :func:`load_ucr_tsv` — loader for the UCR archive's tab-separated format
  for users who have the real archive on disk.
"""

from repro.datasets.base import LabeledDataset
from repro.datasets.symbols import symbols_like
from repro.datasets.trace import trace_like
from repro.datasets.trigonometric import (
    trigonometric_waves,
    trigonometric_waves_prefix,
)
from repro.datasets.augmentation import augment_dataset, augment_series
from repro.datasets.ucr import load_ucr_tsv

__all__ = [
    "LabeledDataset",
    "symbols_like",
    "trace_like",
    "trigonometric_waves",
    "trigonometric_waves_prefix",
    "augment_dataset",
    "augment_series",
    "load_ucr_tsv",
]
