"""Synthetic stand-in for the UCR *Trace* dataset (3-class subset).

The real Trace dataset simulates instrument readings during transients in a
nuclear power plant.  The paper selects three of its classes.  Each class has
a characteristic transient profile; instances within a class differ by the
transient onset time, amplitude, and measurement noise.  This generator
reproduces that structure with three clearly distinct transient templates of
length 275, z-normalized.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LabeledDataset
from repro.sax.normalization import zscore_normalize
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

#: Length of the series in the real UCR Trace dataset.
TRACE_LENGTH = 275


def _dip_recover_transient(length: int, onset: float, rng: np.random.Generator) -> np.ndarray:
    """Class 0: high plateau, dip to a low level at ``onset``, recovery to high."""
    t = np.linspace(0.0, 1.0, length)
    width = rng.uniform(0.2, 0.3)
    depth = rng.uniform(0.9, 1.1)
    dip = depth * np.exp(-(((t - onset - width / 2.0) / (width / 2.2)) ** 2))
    return 1.0 - dip


def _ramp_decay_transient(length: int, onset: float, rng: np.random.Generator) -> np.ndarray:
    """Class 1: flat, linear ramp up from ``onset``, then exponential decay."""
    t = np.linspace(0.0, 1.0, length)
    peak = onset + rng.uniform(0.15, 0.25)
    signal = np.zeros(length)
    rising = (t >= onset) & (t < peak)
    signal[rising] = (t[rising] - onset) / max(peak - onset, 1e-9)
    falling = t >= peak
    decay_rate = rng.uniform(6.0, 10.0)
    signal[falling] = np.exp(-decay_rate * (t[falling] - peak))
    return signal


def _oscillation_transient(length: int, onset: float, rng: np.random.Generator) -> np.ndarray:
    """Class 2: mid-level plateau, then a damped oscillation that first swings up."""
    t = np.linspace(0.0, 1.0, length)
    signal = np.full(length, 0.5)
    after = t >= onset
    frequency = rng.uniform(16.0, 22.0)
    damping = rng.uniform(3.0, 5.0)
    phase = t[after] - onset
    signal[after] = 0.5 + 0.55 * np.exp(-damping * phase) * np.sin(frequency * phase)
    return signal


_TEMPLATE_BUILDERS = [_dip_recover_transient, _ramp_decay_transient, _oscillation_transient]


def trace_like(
    n_instances: int = 900,
    length: int = TRACE_LENGTH,
    n_classes: int = 3,
    onset_low: float = 0.3,
    onset_high: float = 0.5,
    jitter_sigma: float = 0.025,
    rng: RngLike = None,
) -> LabeledDataset:
    """Generate a Trace-like dataset of instrument-transient-style signals.

    Parameters
    ----------
    n_instances:
        Total number of series (users), split evenly across classes.
    length:
        Series length (275 in the real dataset).
    n_classes:
        Number of classes, at most 3 (the paper uses 3).
    onset_low, onset_high:
        Range (as a fraction of the series) of the random transient onset,
        which provides the within-class time-shift variability.
    jitter_sigma:
        Standard deviation of additive measurement noise.
    rng:
        Seed or generator for reproducibility.
    """
    n_instances = check_positive_int(n_instances, "n_instances")
    length = check_positive_int(length, "length")
    n_classes = check_positive_int(n_classes, "n_classes")
    if n_classes > len(_TEMPLATE_BUILDERS):
        raise ValueError(f"n_classes must be at most {len(_TEMPLATE_BUILDERS)}, got {n_classes}")
    if not 0.0 <= onset_low <= onset_high <= 1.0:
        raise ValueError("onset range must satisfy 0 <= onset_low <= onset_high <= 1")
    generator = ensure_rng(rng)

    counts = np.full(n_classes, n_instances // n_classes, dtype=int)
    counts[: n_instances % n_classes] += 1

    series: list[np.ndarray] = []
    labels: list[int] = []
    for label, count in enumerate(counts):
        builder = _TEMPLATE_BUILDERS[label]
        for _ in range(int(count)):
            onset = generator.uniform(onset_low, onset_high)
            signal = builder(length, onset, generator)
            amplitude = np.exp(generator.normal(0.0, 0.1))
            noise = generator.normal(0.0, jitter_sigma, size=length)
            series.append(zscore_normalize(signal * amplitude + noise))
            labels.append(label)

    return LabeledDataset(
        series=series,
        labels=np.asarray(labels, dtype=int),
        name="trace-like",
        metadata={
            "source": "synthetic stand-in for UCR Trace (3-class subset)",
            "length": length,
            "n_classes": n_classes,
        },
    )
