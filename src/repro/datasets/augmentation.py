"""Data augmentation used to grow small seed datasets into large user populations.

The paper augments the UCR Symbols and Trace datasets to 40,000 instances
with a GAN + BiLSTM generative model.  The only property that augmentation
contributes to the evaluation is *many users whose series share the per-class
essential shape while differing in speed, amplitude, and noise*.  We reproduce
that property with three classical, dependency-free transformations:

* random smooth time warping (speed differences → "time not warping" challenge);
* random amplitude scaling (the "scaling" challenge, Fig. 2(a));
* additive Gaussian jitter (sensor noise).
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import LabeledDataset
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_time_series


def _random_warp_positions(length: int, strength: float, rng: np.random.Generator) -> np.ndarray:
    """Monotone resampling positions in [0, 1] with smooth random speed changes."""
    n_knots = 6
    knot_positions = np.linspace(0.0, 1.0, n_knots)
    knot_speeds = np.exp(rng.normal(0.0, strength, size=n_knots))
    speeds = np.interp(np.linspace(0.0, 1.0, length), knot_positions, knot_speeds)
    cumulative = np.cumsum(speeds)
    return (cumulative - cumulative[0]) / (cumulative[-1] - cumulative[0])


def augment_series(
    series,
    warp_strength: float = 0.2,
    scale_sigma: float = 0.1,
    jitter_sigma: float = 0.05,
    length: int | None = None,
    rng: RngLike = None,
) -> np.ndarray:
    """Return one augmented variant of ``series``.

    Parameters
    ----------
    series:
        The seed series.
    warp_strength:
        Log-normal sigma of the random local speed changes (0 disables warping).
    scale_sigma:
        Log-normal sigma of the global amplitude scale (0 disables scaling).
    jitter_sigma:
        Standard deviation of additive Gaussian noise (0 disables jitter).
    length:
        Output length; defaults to the input length.  Different lengths model
        the same gesture performed at different speeds.
    """
    arr = check_time_series(series)
    generator = ensure_rng(rng)
    out_length = int(length) if length is not None else arr.size
    if out_length <= 1:
        raise ValueError(f"length must be at least 2, got {out_length}")

    if warp_strength > 0:
        normalized_positions = _random_warp_positions(out_length, warp_strength, generator)
    else:
        normalized_positions = np.linspace(0.0, 1.0, out_length)
    positions = normalized_positions * (arr.size - 1)
    warped = np.interp(positions, np.arange(arr.size), arr)

    scale = np.exp(generator.normal(0.0, scale_sigma)) if scale_sigma > 0 else 1.0
    jitter = generator.normal(0.0, jitter_sigma, size=out_length) if jitter_sigma > 0 else 0.0
    return warped * scale + jitter


def augment_dataset(
    dataset: LabeledDataset,
    n_instances: int,
    warp_strength: float = 0.2,
    scale_sigma: float = 0.1,
    jitter_sigma: float = 0.05,
    length: int | None = None,
    rng: RngLike = None,
) -> LabeledDataset:
    """Grow ``dataset`` to ``n_instances`` by sampling augmented variants.

    Instances are drawn with balanced class proportions: each class receives
    ``n_instances / n_classes`` variants (±1 for rounding), each generated from
    a uniformly chosen seed instance of that class.
    """
    if n_instances <= 0:
        raise ValueError(f"n_instances must be positive, got {n_instances}")
    generator = ensure_rng(rng)
    classes = dataset.classes
    per_class = np.full(classes.size, n_instances // classes.size, dtype=int)
    per_class[: n_instances % classes.size] += 1

    new_series: list[np.ndarray] = []
    new_labels: list[int] = []
    for label, count in zip(classes, per_class):
        seeds = [s for s, y in zip(dataset.series, dataset.labels) if y == label]
        for _ in range(int(count)):
            seed = seeds[int(generator.integers(0, len(seeds)))]
            new_series.append(
                augment_series(
                    seed,
                    warp_strength=warp_strength,
                    scale_sigma=scale_sigma,
                    jitter_sigma=jitter_sigma,
                    length=length,
                    rng=generator,
                )
            )
            new_labels.append(int(label))

    return LabeledDataset(
        series=new_series,
        labels=np.asarray(new_labels, dtype=int),
        name=f"{dataset.name}[augmented x{n_instances}]",
        metadata={**dataset.metadata, "augmented": True, "seed_instances": len(dataset)},
    )
