"""The ``task="shapelet"`` workload behind ``ExperimentSpec.run``.

Execution splits into two stages with very different distribution needs:

1. **Private extraction** — the expensive, privacy-relevant part — runs
   through whatever execution backend the caller picked, exactly like
   ``task="extract"`` (the same :class:`ExecutionRequest`, the same engines).
   Under one master seed every backend returns byte-identical shapes.
2. **Discovery / transform / classification** — a pure function of the
   extracted shapes, the labelled dataset, and the master seed — runs in the
   calling process.  Its generator is derived from the seed alone (never from
   backend internals), so the whole :class:`RunResult` is
   fingerprint-identical across inline/sharded/gateway/cluster, and the
   ``subprocess`` backend can forward the entire task to a child CLI.

Stage knobs ride :attr:`ExperimentSpec.options` (``n_shapelets``,
``shapelet_min_length``, ``shapelet_max_length``, ``points_per_symbol``,
``max_overlap``) so they serialize with the spec — surviving the subprocess
hop and sweeping like any other spec axis.  ``evaluation_size`` is the one
run-time option, matching the cluster/classify tasks.

Each stage is wrapped in a :func:`repro.obs.trace_span`; the distance kernels
underneath carry their own ``profile_kernel`` hooks.  A telemetry-enabled run
surfaces both in ``result.telemetry``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.api.results import TASK_EXTRACT, TASK_SHAPELET, RunResult
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError
from repro.mining.forest import RandomForestClassifier
from repro.obs import trace_span
from repro.tasks.shapelet.discovery import (
    ShapeletCandidate,
    discover_shapelets,
)
from repro.tasks.shapelet.transform import SIGMA_MIN, ShapeletTransform
from repro.utils.rng import RngLike, ensure_rng

#: Defaults of the spec-level shapelet knobs (read from ``spec.options``).
SHAPELET_DEFAULTS: dict[str, Any] = {
    "n_shapelets": 5,
    "shapelet_min_length": 2,
    "shapelet_max_length": None,
    "points_per_symbol": 8,
    "max_overlap": 0.5,
    "normalize_shapelets": False,
    "sigma_min": SIGMA_MIN,
    "forest_size": 20,
    "test_fraction": 0.3,
}


def shapelet_knobs(spec: ExperimentSpec) -> dict[str, Any]:
    """The stage parameters for ``spec``: defaults overlaid with spec.options.

    Only the shapelet keys are read; other spec options (mechanism knobs)
    pass through untouched.
    """
    knobs = dict(SHAPELET_DEFAULTS)
    for name in knobs:
        if name in spec.options:
            knobs[name] = spec.options[name]
    n_shapelets = int(knobs["n_shapelets"])
    if n_shapelets < 1:
        raise ConfigurationError(
            f"n_shapelets must be >= 1, got {n_shapelets}"
        )
    min_length = int(knobs["shapelet_min_length"])
    if min_length < 1:
        raise ConfigurationError(
            f"shapelet_min_length must be >= 1, got {min_length}"
        )
    max_length = knobs["shapelet_max_length"]
    if max_length is not None:
        max_length = int(max_length)
        if max_length < min_length:
            raise ConfigurationError(
                f"shapelet_max_length {max_length} is below "
                f"shapelet_min_length {min_length}"
            )
    knobs.update(
        n_shapelets=n_shapelets,
        shapelet_min_length=min_length,
        shapelet_max_length=max_length,
        points_per_symbol=int(knobs["points_per_symbol"]),
        max_overlap=float(knobs["max_overlap"]),
        normalize_shapelets=bool(knobs["normalize_shapelets"]),
        sigma_min=float(knobs["sigma_min"]),
        forest_size=int(knobs["forest_size"]),
        test_fraction=float(knobs["test_fraction"]),
    )
    return knobs


@dataclass
class ShapeletStageResult:
    """Outcome of the deterministic post-extraction stage."""

    shapelets: list[ShapeletCandidate] = field(default_factory=list)
    accuracy: float = 0.0
    n_candidates: int = 0
    n_train: int = 0
    n_test: int = 0
    elapsed_seconds: float = 0.0

    def metrics(self) -> dict[str, float]:
        return {
            "accuracy": float(self.accuracy),
            "n_shapelets": float(len(self.shapelets)),
            "n_candidates": float(self.n_candidates),
            "stage_seconds": float(self.elapsed_seconds),
        }

    def details(self) -> dict[str, Any]:
        return {
            "shapelets": [s.describe() for s in self.shapelets],
            "n_train": self.n_train,
            "n_test": self.n_test,
        }


def run_shapelet_stage(
    shapes: Sequence[str],
    dataset,
    spec: ExperimentSpec,
    *,
    evaluation_size: int = 500,
    rng: RngLike = None,
) -> ShapeletStageResult:
    """Discover, transform, and classify from already-extracted shapes.

    ``shapes`` are the extracted frequent shapes (symbol strings, any
    backend); ``dataset`` is the labelled dataset the public evaluation pool
    is drawn from.  Deterministic given (shapes, dataset, spec, rng): the
    generator is consumed in a fixed order (subsample → split → forest), so
    one seed yields one result no matter where the extraction ran.

    An extraction that produced no shapes (or shapes too short to window)
    degrades to ``accuracy=0.0`` with zero shapelets rather than raising —
    low-ε grid points in an accuracy-vs-ε sweep report their failure as data.
    """
    started = time.perf_counter()
    generator = ensure_rng(rng)
    knobs = shapelet_knobs(spec)
    with trace_span("shapelet.split", evaluation_size=evaluation_size):
        pool = dataset.subsample(
            min(int(evaluation_size), len(dataset)), rng=generator
        )
        train, test = pool.train_test_split(
            test_fraction=knobs["test_fraction"], rng=generator
        )
    with trace_span("shapelet.discover", n_shapes=len(shapes)):
        selected = discover_shapelets(
            [shape for shape in shapes if len(shape) >= knobs["shapelet_min_length"]],
            train.series,
            train.labels,
            spec.sax.alphabet_size,
            n_shapelets=knobs["n_shapelets"],
            min_length=knobs["shapelet_min_length"],
            max_length=knobs["shapelet_max_length"],
            points_per_symbol=knobs["points_per_symbol"],
            max_overlap=knobs["max_overlap"],
            normalize=knobs["normalize_shapelets"],
            sigma_min=knobs["sigma_min"],
        )
        n_candidates = len(selected)
    if not selected:
        return ShapeletStageResult(
            n_train=len(train),
            n_test=len(test),
            elapsed_seconds=time.perf_counter() - started,
        )
    stage = ShapeletTransform(
        shapelets=tuple(selected),
        normalize=knobs["normalize_shapelets"],
        sigma_min=knobs["sigma_min"],
    )
    with trace_span("shapelet.transform", n_shapelets=stage.n_features):
        train_features = stage.transform(train.series)
        test_features = stage.transform(test.series)
    with trace_span("shapelet.classify", forest_size=knobs["forest_size"]):
        forest = RandomForestClassifier(
            n_estimators=knobs["forest_size"], rng=generator
        )
        forest.fit(train_features, np.asarray(train.labels, dtype=int))
        accuracy = forest.score(test_features, test.labels)
    return ShapeletStageResult(
        shapelets=list(selected),
        accuracy=accuracy,
        n_candidates=n_candidates,
        n_train=len(train),
        n_test=len(test),
        elapsed_seconds=time.perf_counter() - started,
    )


def run_shapelet_task(
    spec: ExperimentSpec,
    data,
    *,
    backend: str,
    entry,
    seed: int | None,
    cache: dict | None,
    options: dict[str, Any],
) -> RunResult:
    """Execute the full shapelet workload on one registered backend.

    ``entry`` is the resolved :class:`~repro.api.executors.ExecutorEntry`;
    the extraction is dispatched through it with ``task="extract"`` request
    semantics, and the shapelet stage runs here on the returned shapes.
    """
    # Imported here: repro.api.executors imports this module lazily at
    # dispatch time, so the reverse import must also happen at call time.
    from repro.api.executors import ExecutionRequest, _coerce_population

    started = time.perf_counter()
    realized = _coerce_population(spec, data, cache)
    dataset = realized.dataset
    if dataset is None:
        raise ConfigurationError(
            "task 'shapelet' scores discovered shapelets against class "
            "labels; pass a labelled DataSpec (symbols/trace/waves/ucr) or a "
            "LabeledDataset"
        )
    realized.spec._require_concrete()
    shapelet_knobs(realized.spec)  # validate the spec-level knobs up front
    evaluation_size = int(options.get("evaluation_size", 500))
    extract_options = {
        name: value for name, value in options.items()
        if name != "evaluation_size"
    }
    from repro.api.data import DataSpec

    request = ExecutionRequest(
        spec=realized.spec,
        population=realized.population,
        seed=seed,
        data=data if isinstance(data, DataSpec) else None,
        sequences=realized.sequences,
        options={**extract_options, "task": TASK_EXTRACT},
    )
    with trace_span("shapelet.extract", backend=backend):
        extract = entry.run(request)
    stage_seed = extract.seed if extract.seed is not None else seed
    stage = run_shapelet_stage(
        extract.shapes,
        dataset,
        realized.spec,
        evaluation_size=evaluation_size,
        rng=stage_seed,
    )
    result = RunResult(
        task=TASK_SHAPELET,
        spec=realized.spec,
        backend=backend,
        seed=extract.seed if extract.seed is not None else seed,
        estimates=extract.estimates,
        estimated_length=extract.estimated_length,
        metrics={
            **extract.metrics,
            **stage.metrics(),
            "elapsed_seconds": time.perf_counter() - started,
        },
        accounting=extract.accounting,
        rounds=extract.rounds,
        timings=extract.timings,
        backend_info=extract.backend_info,
        data=extract.data,
        details={**extract.details, **stage.details()},
    )
    if realized.meta:
        for key, value in realized.meta.items():
            result.details.setdefault(key, value)
    return result
