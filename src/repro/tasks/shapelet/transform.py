"""Vectorized shapelet-transform kernels.

The scalar prototype in :mod:`repro.extensions.shapelets` compared a shapelet
against a series one window at a time in Python; profiling showed the whole
shapelet workload is this inner loop.  This module replaces it with batched
NumPy kernels:

* :func:`subsequences` — every window of a series as one ``(m, length)``
  matrix via stride tricks (a zero-copy view);
* :func:`z_normalize` — batched per-window z-normalization with an explicit
  :data:`SIGMA_MIN` floor, so near-constant windows produce finite features
  instead of dividing by ~0;
* :func:`sliding_min_distance` — one shapelet against one series, all windows
  at once;
* :func:`min_distance_matrix` — the full candidate × series min-distance
  matrix as matrix products (the Gram expansion
  ``|w - s|^2 = |w|^2 - 2 w·s + |s|^2``), which is what candidate scoring and
  the feature transform actually need;
* :class:`ShapeletTransform` — the feature stage: a fitted set of shapelets
  mapped over raw series into a ``(n_series, n_shapelets)`` feature matrix
  that the :mod:`repro.mining` estimators (forest / kmeans / kshape) consume
  directly.

Distance convention (kept bit-for-bit from the prototype): the reported value
is ``min_w ||w - s||_2 / len(s)``, and a series shorter than the shapelet is
compared against the shapelet's prefix, divided by the series length.  The
kernels accept ``normalize=True`` to compare z-normalized windows against the
z-normalized shapelet instead — the classic shape-only matching — which the
prototype's docstring promised but never implemented.

The hot kernel is wrapped in :func:`repro.obs.profile_kernel` under the name
``"shapelet.min_distance"`` — free when no profiler is installed, attributed
per-call in a telemetry-enabled run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exceptions import DataShapeError
from repro.obs import profile_kernel

#: Standard-deviation floor for z-normalization.  A window whose sample σ is
#: below this floor is treated as constant: its mean is still subtracted but
#: the divisor becomes 1.0, so the normalized window is (near-)zero instead
#: of amplified noise — zero-variance windows therefore always yield finite
#: distances.  The same convention as the ShapeletFinder reference
#: implementation, with a floor sized for z-scored series.
SIGMA_MIN = 1e-3


def subsequences(series: np.ndarray, length: int) -> np.ndarray:
    """All contiguous windows of ``series`` as one ``(m, length)`` matrix.

    A zero-copy stride-tricks view (``np.lib.stride_tricks``): row ``i`` is
    ``series[i : i + length]`` and ``m = len(series) - length + 1``.  Callers
    must treat the result as read-only.
    """
    series = np.ascontiguousarray(series, dtype=float)
    if length < 1:
        raise DataShapeError(f"window length must be >= 1, got {length}")
    if series.ndim != 1:
        raise DataShapeError(
            f"subsequences expects a 1-d series, got shape {series.shape}"
        )
    if series.size < length:
        raise DataShapeError(
            f"series of length {series.size} has no windows of length {length}"
        )
    return np.lib.stride_tricks.sliding_window_view(series, length)


def z_normalize(windows: np.ndarray, sigma_min: float = SIGMA_MIN) -> np.ndarray:
    """Z-normalize every row of ``windows`` with the σ_min floor.

    Rows with sample standard deviation below ``sigma_min`` keep divisor 1.0
    (mean is still removed), so constant and near-constant windows map to the
    zero vector rather than to ±inf/NaN.
    """
    windows = np.atleast_2d(np.asarray(windows, dtype=float))
    std = np.std(windows, axis=1)
    std = np.where(std < sigma_min, 1.0, std)
    return (windows - np.mean(windows, axis=1, keepdims=True)) / std[:, None]


def _prepare_shapelet(values, normalize: bool, sigma_min: float) -> np.ndarray:
    shapelet = np.asarray(values, dtype=float).ravel()
    if shapelet.size == 0:
        raise DataShapeError("a shapelet must have at least one value")
    if normalize:
        shapelet = z_normalize(shapelet, sigma_min)[0]
    return shapelet


def _prefix_distance(
    series: np.ndarray, shapelet: np.ndarray, normalize: bool, sigma_min: float
) -> float:
    """The short-series path: whole series vs. the shapelet's prefix."""
    prefix = shapelet[: series.size]
    if normalize:
        series = z_normalize(series, sigma_min)[0]
        prefix = z_normalize(prefix, sigma_min)[0]
    return float(np.linalg.norm(series - prefix) / max(series.size, 1))


def sliding_min_distance(
    series,
    shapelet_values,
    *,
    normalize: bool = False,
    sigma_min: float = SIGMA_MIN,
) -> float:
    """Minimum Euclidean distance of a shapelet over all windows of ``series``.

    Vectorized drop-in for the scalar prototype: one
    ``norm(windows - shapelet, axis=1)`` over the stride-tricks window matrix
    replaces the per-window Python loop, with identical semantics (including
    the shapelet-prefix comparison when the series is shorter than the
    shapelet, divided by the series length).  With ``normalize=True`` every
    window and the shapelet are z-normalized first, under the ``sigma_min``
    floor (see :func:`z_normalize`).
    """
    series = np.asarray(series, dtype=float).ravel()
    shapelet = _prepare_shapelet(
        shapelet_values, normalize=False, sigma_min=sigma_min
    )
    length = shapelet.size
    if series.size < length:
        return _prefix_distance(series, shapelet, normalize, sigma_min)
    with profile_kernel("shapelet.min_distance"):
        windows = subsequences(series, length)
        if normalize:
            windows = z_normalize(windows, sigma_min)
            shapelet = z_normalize(shapelet, sigma_min)[0]
        distances = np.linalg.norm(windows - shapelet, axis=1)
        return float(distances.min() / length)


def _grouped_min_distances(
    series: np.ndarray,
    shapelets: np.ndarray,
    length: int,
    normalize: bool,
    sigma_min: float,
) -> np.ndarray:
    """Min distance of every length-``length`` shapelet to one series.

    ``shapelets`` is a ``(k, length)`` stack; the candidate × window distance
    matrix is expanded as ``|s|^2 - 2 s·wᵀ + |w|^2`` — two BLAS-shaped matrix
    ops instead of ``k·m`` Python-level norm calls.
    """
    windows = subsequences(series, length)
    if normalize:
        windows = z_normalize(windows, sigma_min)
        shapelets = z_normalize(shapelets, sigma_min)
    gram = shapelets @ windows.T                                   # (k, m)
    squared = (
        np.sum(shapelets * shapelets, axis=1)[:, None]
        - 2.0 * gram
        + np.sum(windows * windows, axis=1)[None, :]
    )
    # The expansion can go a hair negative for exact matches; clamp before
    # the square root so perfect hits report 0.0, not NaN.
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared.min(axis=1)) / length


def min_distance_matrix(
    series_list: Sequence,
    shapelets: Sequence,
    *,
    normalize: bool = False,
    sigma_min: float = SIGMA_MIN,
) -> np.ndarray:
    """The full ``(n_series, n_shapelets)`` min-distance feature matrix.

    Column ``j`` holds :func:`sliding_min_distance` of shapelet ``j`` to every
    series — but computed batched: shapelets are grouped by length, and each
    (series, length) group is one candidate × window matrix product.  Series
    may have different lengths (each gets its own window matrix); shapelets
    may too (each length group is processed together).
    """
    prepared = [
        _prepare_shapelet(values, normalize=False, sigma_min=sigma_min)
        for values in shapelets
    ]
    features = np.zeros((len(series_list), len(prepared)), dtype=float)
    if not prepared or not len(series_list):
        return features
    by_length: dict[int, list[int]] = {}
    for column, shapelet in enumerate(prepared):
        by_length.setdefault(shapelet.size, []).append(column)
    groups = {
        length: (
            np.vstack([prepared[column] for column in columns]),
            np.asarray(columns, dtype=int),
        )
        for length, columns in by_length.items()
    }
    with profile_kernel("shapelet.min_distance"):
        for row, series in enumerate(series_list):
            series = np.asarray(series, dtype=float).ravel()
            for length, (stack, columns) in groups.items():
                if series.size < length:
                    features[row, columns] = [
                        _prefix_distance(
                            series, prepared[column], normalize, sigma_min
                        )
                        for column in columns
                    ]
                else:
                    features[row, columns] = _grouped_min_distances(
                        series, stack, length, normalize, sigma_min
                    )
    return features


def _shapelet_values(shapelet) -> np.ndarray:
    """The numeric values of a shapelet given as an array or a richer object."""
    values = getattr(shapelet, "values", shapelet)
    return np.asarray(values, dtype=float).ravel()


@dataclass(frozen=True)
class ShapeletTransform:
    """The shapelet-transform feature stage.

    Holds a fitted set of shapelets (plain arrays, or any objects with a
    ``.values`` attribute such as :class:`repro.tasks.shapelet.discovery.
    ShapeletCandidate`) and maps raw series onto their min-distance feature
    vectors.  The resulting equal-width feature matrix feeds the
    :mod:`repro.mining` estimators directly: rows are samples, columns are
    shapelet distances.
    """

    shapelets: tuple
    normalize: bool = False
    sigma_min: float = SIGMA_MIN

    def __post_init__(self) -> None:
        values = tuple(
            tuple(_shapelet_values(shapelet)) for shapelet in self.shapelets
        )
        if not values:
            raise DataShapeError("ShapeletTransform needs at least one shapelet")
        object.__setattr__(self, "shapelets", values)

    @property
    def n_features(self) -> int:
        return len(self.shapelets)

    def transform(self, series_list: Sequence) -> np.ndarray:
        """The ``(n_series, n_shapelets)`` feature matrix of ``series_list``."""
        return min_distance_matrix(
            series_list,
            [np.asarray(values) for values in self.shapelets],
            normalize=self.normalize,
            sigma_min=self.sigma_min,
        )

    __call__ = transform
